//! Dynamic churn: sensors keep joining (recharged batteries) and leaving
//! (depleted batteries) while the cluster structure self-reconfigures via
//! `node-move-in` / `node-move-out`, and a broadcast is run after every
//! burst of churn to show the structure stays sound.
//!
//! This is the paper's motivating scenario (Section 1): "a power-trained
//! sensor node withdraws its connection from its network when its battery
//! voltage is low and comes back to the network when it is recharged".
//!
//! Run with: `cargo run --release --example dynamic_churn`

use dsnet::geom::rng::{derive_seed, rng_from_seed};
use dsnet::geom::Point2;
use dsnet::graph::NodeId;
use dsnet::{NetworkBuilder, Protocol};
use rand::Rng as _;

fn main() {
    let mut network = NetworkBuilder::paper(200, 99)
        .build()
        .expect("build network");
    network.check();
    println!("initial network: {} nodes", network.len());

    let mut rng = rng_from_seed(derive_seed(99, 0xC0DE));
    let mut joined = 0u32;
    let mut left = 0u32;

    for epoch in 1..=10 {
        // A few nodes power down...
        for _ in 0..4 {
            let candidates: Vec<NodeId> = network.net().tree().nodes().collect();
            let victim = candidates[rng.random_range(0..candidates.len())];
            match network.leave(victim) {
                Ok(report) => {
                    left += 1;
                    if !report.rehomed.is_empty() {
                        println!(
                            "  epoch {epoch}: {victim} left, re-homed {} stranded nodes in {} accounted rounds",
                            report.rehomed.len(),
                            report.cost.total()
                        );
                    }
                }
                Err(_) => { /* root, or a cut vertex: the paper assumes those stay */ }
            }
        }
        // ...and a few power up near random survivors.
        for _ in 0..4 {
            let anchors: Vec<NodeId> = network.net().tree().nodes().collect();
            let a = network.position(anchors[rng.random_range(0..anchors.len())]);
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let r = 0.5 * rng.random_range(0.2f64..0.9);
            let p = Point2::new(a.x + r * theta.cos(), a.y + r * theta.sin());
            if network.join(p, &[]).is_ok() {
                joined += 1;
            }
        }

        // The structure must stay sound and broadcastable after every epoch.
        network.check();
        let out = network.broadcast(Protocol::ImprovedCff);
        assert!(
            out.completed(),
            "broadcast failed after churn epoch {epoch}"
        );
        println!(
            "epoch {epoch}: {} nodes, broadcast {} rounds ({}/{} delivered)",
            network.len(),
            out.rounds,
            out.delivered,
            out.targets
        );
    }

    // Finally, the sink itself powers down (the paper's deferred case):
    // the structure re-roots at a survivor and keeps broadcasting.
    match network.leave_sink() {
        Ok(report) => {
            network.check();
            let out = network.broadcast(Protocol::ImprovedCff);
            assert!(out.completed());
            println!(
                "\nsink {} departed; new sink {}, rebuilt in {} accounted rounds, broadcast still {}/{}",
                report.old_root, report.new_root, report.rounds, out.delivered, out.targets
            );
        }
        Err(e) => println!("\nsink could not leave ({e}) — refusal keeps the structure intact"),
    }

    println!(
        "\nchurn summary: {joined} joins, {left} departures — structure stayed valid throughout"
    );
}
