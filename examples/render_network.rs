//! Render a deployed network's cluster structure to SVG — heads, gateways,
//! members, the backbone tree and the radio links, in the style of the
//! paper's Figure 1.
//!
//! Run with: `cargo run --release --example render_network`
//! (writes `network.svg` into the working directory)

use dsnet::viz::{render_svg, VizOptions};
use dsnet::NetworkBuilder;

fn main() {
    let network = NetworkBuilder::paper(250, 2007)
        .build()
        .expect("build network");
    let s = network.stats();
    println!(
        "rendering {} nodes: {} heads, {} gateways, {} members, backbone height {}",
        s.nodes, s.heads, s.gateways, s.members, s.backbone_height
    );
    let svg = render_svg(&network, &VizOptions::default());
    std::fs::write("network.svg", &svg).expect("write network.svg");
    println!("wrote network.svg ({} bytes)", svg.len());
}
