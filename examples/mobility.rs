//! Mobile sensors: every node drifts across the field under a
//! random-waypoint trajectory while the cluster structure is maintained
//! *incrementally* — the topology differ turns each epoch of motion into a
//! minimal stream of edge appear/disappear events, and the maintenance
//! driver translates those into `node-move-out` / `node-move-in`
//! reconfigurations of the live CNet(G). The paper's invariants are
//! re-checked after every epoch, and broadcasts run mid-motion to show the
//! structure stays collision-free throughout.
//!
//! Run with: `cargo run --release --example mobility`

use dsnet::geom::{Deployment, DeploymentConfig};
use dsnet::mobility::{MobileNetwork, MobilityConfig, RandomWaypoint, WaypointParams};

fn main() {
    // 150 nodes on the paper's 10×10-unit field, then set them all in
    // motion: trip speeds of 0.03–0.12 units per epoch with a short pause
    // at every waypoint.
    let deployment = Deployment::generate(DeploymentConfig::paper_field(10.0, 150, 2007));
    let model = RandomWaypoint::new(
        deployment.positions.clone(),
        deployment.config.region,
        WaypointParams {
            v_min: 0.03,
            v_max: 0.12,
            pause_epochs: 2,
        },
        0xB0B1,
    );
    let mut network =
        MobileNetwork::new(&deployment, Box::new(model)).expect("deployments arrive connected");
    println!(
        "initial network: {} nodes, {} backbone",
        network.len(),
        network.net().backbone_nodes().len()
    );

    let cfg = MobilityConfig {
        check_invariants: true,
        broadcast_every: 10, // probe the structure with a CFF broadcast
        ..MobilityConfig::default()
    };
    let report = network
        .run(100, &cfg)
        .expect("maintenance preserves the paper's invariants");

    for e in report.epochs.iter().filter(|e| e.broadcast.is_some()) {
        let b = e.broadcast.as_ref().unwrap();
        println!(
            "epoch {:>3}: {:>2} moved, +{} -{} edges, {} reconfigs ({} re-homed), \
             slot churn {:>2}, backbone {:>2} — broadcast {}/{} in {} rounds",
            e.epoch,
            e.moved,
            e.edges_appeared,
            e.edges_disappeared,
            e.reconfigs,
            e.rehomed,
            e.slot_churn,
            e.backbone,
            b.delivered,
            b.targets,
            b.rounds
        );
        assert!(b.completed(), "mid-motion broadcast must cover everyone");
    }

    println!(
        "\n100 epochs: {} edge events, {} reconfigurations, {} nodes re-homed, \
         {} maintenance rounds, total slot churn {}",
        report.total_edge_events(),
        report.total_reconfigs(),
        report.total_rehomed(),
        report.total_maintenance_rounds(),
        report.total_slot_churn()
    );
    println!(
        "mean backbone size {:.1}; mean mid-motion broadcast {:.1} rounds",
        report.mean_backbone(),
        report.mean_broadcast_rounds().unwrap_or(0.0)
    );
    println!(
        "final structure: {} nodes, invariants checked every epoch — never rebuilt from scratch",
        network.len()
    );
}
