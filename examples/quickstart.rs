//! Quickstart: build a paper-configuration sensor network, inspect its
//! cluster structure, and compare the paper's improved CFF broadcast with
//! the DFO baseline of reference \[19\].
//!
//! Run with: `cargo run --release --example quickstart`

use dsnet::{NetworkBuilder, Protocol};

fn main() {
    // 300 nodes on the 10×10-unit field (1 unit = 100 m, 50 m radio range),
    // deployed incrementally connected — the paper's dynamic regime.
    let network = NetworkBuilder::paper(300, 2007)
        .build()
        .expect("build network");
    network.check();

    let s = network.stats();
    println!("network: {} nodes, {} edges", s.nodes, s.edges);
    println!(
        "clusters: {} heads, {} gateways, {} members",
        s.heads, s.gateways, s.members
    );
    println!(
        "backbone: {} nodes, height {} (CNet height {})",
        s.backbone_size, s.backbone_height, s.cnet_height
    );
    println!(
        "degrees/slots: D = {}, d = {}, Δ = {}, δ = {}",
        s.max_degree, s.backbone_max_degree, s.delta_l, s.delta_b
    );

    println!("\nbroadcast from the sink:");
    for (name, protocol) in [
        ("improved CFF (Algorithm 2)", Protocol::ImprovedCff),
        ("basic CFF (Algorithm 1)", Protocol::BasicCff),
        ("DFO baseline [19]", Protocol::Dfo),
    ] {
        let out = network.broadcast(protocol);
        println!(
            "  {name:28} {:4} rounds, delivered {}/{}, max awake {:4} rounds, bound {}",
            out.rounds,
            out.delivered,
            out.targets,
            out.max_awake(),
            out.bound
        );
        assert!(out.completed());
    }
}
