//! Round-by-round walkthrough of Algorithm 2 on a small network, printed
//! from the radio engine's event trace — shows the two TDM phases, the
//! per-depth windows and the collision-free deliveries exactly as the
//! paper describes them.
//!
//! Run with: `cargo run --release --example trace_walkthrough`

use dsnet::cluster::NodeStatus;
use dsnet::protocols::improved::{Cff2Program, Cff2Schedule, Participation};
use dsnet::protocols::knowledge::{build_knowledge, Session};
use dsnet::radio::{Engine, EngineConfig, TraceEvent};
use dsnet::NetworkBuilder;

fn main() {
    let network = NetworkBuilder::paper(40, 12)
        .build()
        .expect("build network");
    let net = network.net();
    let k = build_knowledge(net);
    println!(
        "network: {} nodes, backbone {} (height {}), δ = {}, Δ = {}\n",
        k.nodes, k.backbone_size, k.bt_height, k.delta_b, k.delta_l
    );

    let session = Session::new(&k, net.root(), 1);
    let sched = Cff2Schedule::new(&k, &session);
    println!(
        "schedule: phase 1 = rounds 1..={} ({} windows of δ={}), phase 2 = rounds {}..={}\n",
        sched.p2_start,
        k.bt_height,
        k.delta_b,
        sched.p2_start + 1,
        sched.end_round
    );

    let mut engine = Engine::new(
        net.graph(),
        EngineConfig {
            max_rounds: sched.end_round + 4,
            record_trace: true,
            channels: 1,
        },
        |u| {
            Cff2Program::new(
                &k,
                &session,
                sched,
                u,
                (u == net.root()).then_some(0),
                Participation::FULL,
            )
        },
    );
    let out = engine.run();

    let mut last_round = 0;
    for ev in engine.trace().events() {
        if ev.round() != last_round {
            last_round = ev.round();
            let phase = if last_round <= sched.p2_start {
                "phase 1"
            } else {
                "phase 2"
            };
            println!("--- round {last_round} ({phase}) ---");
        }
        match ev {
            TraceEvent::Transmit { node, .. } => {
                let status = net.status(*node);
                let role = match status {
                    NodeStatus::ClusterHead => "head",
                    NodeStatus::Gateway => "gateway",
                    NodeStatus::PureMember => "member",
                };
                println!(
                    "  {node} ({role}, depth {}) transmits",
                    net.tree().depth(*node)
                );
            }
            TraceEvent::Deliver { from, to, .. } => {
                println!("    -> {to} receives from {from}");
            }
            TraceEvent::Collision {
                node, transmitters, ..
            } => {
                println!("    xx {node} hears {transmitters} transmitters collide (harmless: its unique slot is elsewhere)");
            }
            TraceEvent::NodeDeath { node, .. } => println!("  !! {node} died"),
            TraceEvent::NodeRevive { node, .. } => println!("  ++ {node} revived"),
            TraceEvent::LinkDrop { from, to, .. } => {
                println!("    ~~ channel loss: {from} -> {to} dropped");
            }
        }
    }

    println!(
        "\nbroadcast complete in {} rounds ({} deliveries, {} collision events — every node still served by its unique slot)",
        out.rounds,
        engine.trace().delivery_count(),
        engine.trace().collision_count()
    );
}
