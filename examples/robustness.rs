//! Robustness under fail-stop crashes (Section 3.3): kill an increasing
//! number of backbone nodes at round 1 and watch DFO's token tour freeze
//! while collision-free flooding keeps covering every reachable node.
//!
//! Run with: `cargo run --release --example robustness`

use dsnet::geom::rng::{derive_seed, rng_from_seed};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::RunConfig;
use dsnet::{NetworkBuilder, Protocol};
use rand::seq::SliceRandom as _;

fn main() {
    let network = NetworkBuilder::paper(350, 55)
        .build()
        .expect("build network");
    println!(
        "network: {} nodes, backbone {} nodes\n",
        network.len(),
        network.stats().backbone_size
    );

    println!(
        "{:>9}  {:>14}  {:>14}",
        "failures", "CFF delivery", "DFO delivery"
    );
    for f in [0usize, 1, 2, 4, 8, 16] {
        let mut victims: Vec<NodeId> = network
            .net()
            .backbone_nodes()
            .into_iter()
            .filter(|&u| u != network.sink())
            .collect();
        let mut rng = rng_from_seed(derive_seed(55, f as u64));
        victims.shuffle(&mut rng);
        victims.truncate(f);

        let mut cfg = RunConfig::default();
        for &v in &victims {
            cfg.failures.kill_node(v, 1);
        }
        let cff = network.broadcast_from(Protocol::ImprovedCff, network.sink(), &cfg);
        let dfo = network.broadcast_from(Protocol::Dfo, network.sink(), &cfg);
        println!(
            "{:>9}  {:>13.1}%  {:>13.1}%",
            f,
            100.0 * cff.delivery_ratio(),
            100.0 * dfo.delivery_ratio()
        );
        assert!(
            cff.delivered >= dfo.delivered,
            "flooding must never cover less than the token tour"
        );
        if f == 0 {
            assert!(cff.completed() && dfo.completed());
        }
    }
    println!(
        "\nDFO stalls at the first dead token-holder; CFF only loses what is physically cut off."
    );
}
