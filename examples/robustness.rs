//! Robustness under failures, three ways:
//!
//! 1. Fail-stop crashes (Section 3.3): kill an increasing number of
//!    backbone nodes at round 1 and watch DFO's token tour freeze while
//!    collision-free flooding keeps covering every reachable node.
//! 2. Lossy channels: sweep per-link drop probability and compare basic
//!    CFF (one shot per hop) against the bounded-retry reliable CFF.
//! 3. Detection-and-repair: crash a backbone node silently, run the
//!    repair protocol, and broadcast on the healed structure.
//!
//! Run with: `cargo run --release --example robustness`

use dsnet::cluster::repair::RepairConfig;
use dsnet::geom::rng::{derive_seed, rng_from_seed};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::RunConfig;
use dsnet::radio::LossModel;
use dsnet::{NetworkBuilder, Protocol};
use rand::seq::SliceRandom as _;

fn main() {
    let network = NetworkBuilder::paper(350, 55)
        .build()
        .expect("build network");
    println!(
        "network: {} nodes, backbone {} nodes\n",
        network.len(),
        network.stats().backbone_size
    );

    println!(
        "{:>9}  {:>14}  {:>14}",
        "failures", "CFF delivery", "DFO delivery"
    );
    for f in [0usize, 1, 2, 4, 8, 16] {
        let mut victims: Vec<NodeId> = network
            .net()
            .backbone_nodes()
            .into_iter()
            .filter(|&u| u != network.sink())
            .collect();
        let mut rng = rng_from_seed(derive_seed(55, f as u64));
        victims.shuffle(&mut rng);
        victims.truncate(f);

        let mut cfg = RunConfig::default();
        for &v in &victims {
            cfg.failures.kill_node(v, 1);
        }
        let cff = network.broadcast_from(Protocol::ImprovedCff, network.sink(), &cfg);
        let dfo = network.broadcast_from(Protocol::Dfo, network.sink(), &cfg);
        println!(
            "{:>9}  {:>13.1}%  {:>13.1}%",
            f,
            100.0 * cff.delivery_ratio(),
            100.0 * dfo.delivery_ratio()
        );
        assert!(
            cff.delivered >= dfo.delivered,
            "flooding must never cover less than the token tour"
        );
        if f == 0 {
            assert!(cff.completed() && dfo.completed());
        }
    }
    println!(
        "\nDFO stalls at the first dead token-holder; CFF only loses what is physically cut off."
    );

    // ----- lossy channels: basic vs bounded-retry reliable CFF ------------
    println!(
        "\n{:>9}  {:>14}  {:>14}",
        "loss", "CFF1 delivery", "RCFF delivery"
    );
    for loss in [0.0, 0.05, 0.10, 0.20] {
        let cfg = RunConfig {
            loss: LossModel::from_probability(loss, derive_seed(55, (loss * 100.0) as u64)),
            max_retries: 4,
            ..RunConfig::default()
        };
        let basic = network.broadcast_from(Protocol::BasicCff, network.sink(), &cfg);
        let reliable = network.broadcast_from(Protocol::ReliableCff, network.sink(), &cfg);
        println!(
            "{:>8.0}%  {:>13.1}%  {:>13.1}%",
            100.0 * loss,
            100.0 * basic.delivery_ratio(),
            100.0 * reliable.delivery_ratio()
        );
        assert!(
            reliable.delivered >= basic.delivered,
            "retries must never cover less than one-shot flooding"
        );
    }
    println!("a single drop silences a whole CFF subtree; NACK epochs win it back.");

    // ----- silent crash + detection-and-repair ----------------------------
    let mut healing = NetworkBuilder::paper(350, 55).build().expect("build");
    let victim = healing
        .net()
        .backbone_nodes()
        .into_iter()
        .find(|&u| u != healing.sink())
        .expect("a non-root backbone node");
    let report = healing
        .repair_crash(victim, &RepairConfig::default())
        .expect("repairable crash");
    healing.check();
    let after = healing.broadcast(Protocol::ImprovedCff);
    println!(
        "\nrepair: {victim} crashed silently; detected in {} rounds, repaired in {} \
         ({} orphans re-homed, {} lost), then broadcast covered {}/{} survivors.",
        report.detection_rounds,
        report.repair_rounds(),
        report.rehomed.len(),
        report.lost.len(),
        after.delivered,
        after.targets
    );
    assert!(
        after.completed(),
        "healed network must cover every survivor"
    );
}
