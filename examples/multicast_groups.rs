//! Multicast over MCNet(G): three overlapping sensor groups (temperature,
//! vibration, acoustic) receive targeted dissemination; sub-trees without
//! group members stay asleep.
//!
//! Run with: `cargo run --release --example multicast_groups`

use dsnet::protocols::multicast::relay_count;
use dsnet::protocols::runner::{run_multicast_reliable, RunConfig};
use dsnet::{GroupPlan, NetworkBuilder, Protocol};

const GROUP_NAMES: [&str; 3] = ["temperature", "vibration", "acoustic"];

fn main() {
    // 250 nodes; each independently joins each of the three groups with
    // probability 8%.
    let network = NetworkBuilder::paper(250, 31)
        .groups(GroupPlan {
            groups: 3,
            membership: 0.08,
        })
        .build()
        .expect("build network");
    network.check();

    let broadcast = network.broadcast(Protocol::ImprovedCff);
    let bcast_work = broadcast.energy.total_listen + broadcast.energy.total_tx;
    println!(
        "full broadcast: {} rounds, {}/{} delivered, {} total radio-on rounds\n",
        broadcast.rounds, broadcast.delivered, broadcast.targets, bcast_work
    );

    for g in 0..3u16 {
        let members = network.mcnet().group_members(g);
        let relays = relay_count(network.mcnet(), g);
        // The paper's multicast reuses the broadcast slots; pruning can cost
        // the odd delivery (reported honestly below). The session-slot
        // variant re-assigns slots over the participants and is exact.
        let paper = network.multicast(g);
        let reliable =
            run_multicast_reliable(network.mcnet(), network.sink(), g, &RunConfig::default());
        let work = paper.energy.total_listen + paper.energy.total_tx;
        println!(
            "multicast '{}': {} members, {} relays — paper {} rounds {}/{}, reliable {} rounds {}/{}, {} radio-on rounds ({:.0}% of broadcast)",
            GROUP_NAMES[g as usize],
            members.len(),
            relays,
            paper.rounds,
            paper.delivered,
            paper.targets,
            reliable.rounds,
            reliable.delivered,
            reliable.targets,
            work,
            100.0 * work as f64 / bcast_work as f64
        );
        assert!(paper.delivery_ratio() >= 0.9, "paper multicast collapsed");
        assert!(reliable.completed(), "session slots guarantee delivery");
        assert!(
            work <= bcast_work,
            "pruning must not cost more than broadcasting"
        );
    }

    // A group nobody joined: the session is free.
    let empty = network.multicast(9);
    assert_eq!(empty.targets, 0);
    println!(
        "\nmulticast to an empty group: {} targets, instant completion",
        empty.targets
    );
}
