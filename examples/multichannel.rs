//! Multi-channel broadcast (Section 3.3 / Theorem 1(3)): with k radio
//! channels the TDM windows shrink by a factor k — slot s transmits in
//! round ⌈s/k⌉ on channel (s−1) mod k — so both latency and awake time
//! drop as channels are added.
//!
//! Run with: `cargo run --release --example multichannel`

use dsnet::protocols::runner::{run_improved, RunConfig};
use dsnet::NetworkBuilder;

fn main() {
    let network = NetworkBuilder::paper(400, 77)
        .build()
        .expect("build network");
    let s = network.stats();
    println!(
        "network: {} nodes, δ = {}, Δ = {}, backbone height {}\n",
        s.nodes, s.delta_b, s.delta_l, s.backbone_height
    );

    println!(
        "{:>3}  {:>7}  {:>10}  {:>9}  {:>9}",
        "k", "rounds", "max awake", "bound", "delivered"
    );
    let mut previous_rounds = u64::MAX;
    for k in [1u8, 2, 4, 8] {
        let cfg = RunConfig {
            channels: k,
            ..Default::default()
        };
        let out = run_improved(network.net(), network.sink(), &cfg);
        println!(
            "{:>3}  {:>7}  {:>10}  {:>9}  {:>6}/{}",
            k,
            out.rounds,
            out.max_awake(),
            out.bound,
            out.delivered,
            out.targets
        );
        assert!(out.completed(), "k={k} lost nodes");
        assert!(
            out.rounds <= previous_rounds,
            "more channels must not be slower"
        );
        previous_rounds = out.rounds;
    }
    println!("\nTheorem 1(3): rounds and awake time divide by k — confirmed above.");
}
