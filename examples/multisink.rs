//! Multi-sink operation (end of Section 2): several cluster-nets over the
//! same physical network, rooted at different sinks, so that when one
//! structure's backbone is damaged the others keep the broadcast alive.
//!
//! Run with: `cargo run --release --example multisink`

use dsnet::geom::rng::{derive_seed, rng_from_seed};
use dsnet::graph::NodeId;
use dsnet::protocols::runner::RunConfig;
use dsnet::{MultiNet, NetworkBuilder};
use rand::seq::SliceRandom as _;

fn main() {
    let network = NetworkBuilder::paper(300, 321)
        .build()
        .expect("build network");
    // Sinks: the original plus the two nodes farthest from it.
    let origin = network.position(network.sink());
    let mut far: Vec<NodeId> = network
        .net()
        .tree()
        .nodes()
        .filter(|&u| u != network.sink())
        .collect();
    far.sort_by(|&a, &b| {
        network
            .position(b)
            .dist_sq(origin)
            .total_cmp(&network.position(a).dist_sq(origin))
    });
    let sinks = vec![network.sink(), far[0], far[1]];
    let multi = MultiNet::from_network(&network, &sinks);
    println!(
        "three cluster-nets over one deployment, sinks: {:?}\n",
        multi.sinks()
    );

    for f in [0usize, 4, 8, 12] {
        // Damage the primary structure's backbone.
        let primary = &multi.structures()[0];
        let mut victims: Vec<NodeId> = primary
            .backbone_nodes()
            .into_iter()
            .filter(|&u| !sinks.contains(&u))
            .collect();
        let mut rng = rng_from_seed(derive_seed(321, f as u64));
        victims.shuffle(&mut rng);
        victims.truncate(f);
        let mut cfg = RunConfig::default();
        for &v in &victims {
            cfg.failures.kill_node(v, 1);
        }

        let single = multi.structures()[0].clone();
        let single_out = dsnet::protocols::runner::run_improved(&single, single.root(), &cfg);
        let multi_out = multi.broadcast_failover(&cfg);
        println!(
            "{f:2} failures: single sink {:5.1}%  |  failover ({} attempts, {} rounds) {:5.1}%",
            100.0 * single_out.delivery_ratio(),
            multi_out.attempts.len(),
            multi_out.total_rounds,
            100.0 * multi_out.delivery_ratio()
        );
        assert!(multi_out.delivered >= single_out.delivered);
    }
    println!("\nA second sink buys back the coverage a damaged primary backbone loses.");
}
