//! Property-based tests of the cluster architecture: arbitrary growth
//! histories must keep every Definition-1/Property-1 invariant and both
//! slot modes sound, and the incremental slot maintenance must stay within
//! the Lemma-3 bounds.

use dsnet_cluster::invariants;
use dsnet_cluster::slots::validate::{
    assign_flood_slots, validate_condition1, validate_condition2,
};
use dsnet_cluster::{ClusterNet, NodeStatus, ParentRule, SlotMode};
use dsnet_graph::{degree, NodeId};
use proptest::prelude::*;

/// Grow a network where node i+1 hears up to 3 earlier nodes.
fn grow(picks: &[(u16, u16, u16)], rule: ParentRule, mode: SlotMode) -> ClusterNet {
    let mut net = ClusterNet::new(rule, mode);
    net.move_in(&[]).unwrap();
    for (i, &(a, b, c)) in picks.iter().enumerate() {
        let existing = (i + 1) as u32;
        let mut nbrs: Vec<NodeId> = [a, b, c]
            .iter()
            .map(|&x| NodeId(x as u32 % existing))
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        net.move_in(&nbrs).unwrap();
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn growth_invariants_hold_in_both_modes(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        for mode in [SlotMode::Strict, SlotMode::PaperFaithful] {
            let net = grow(&picks, ParentRule::LowestId, mode);
            invariants::check_growth(&net)
                .map_err(|v| TestCaseError::fail(format!("{mode:?}: {v:?}")))?;
        }
    }

    #[test]
    fn slot_bounds_of_lemma3(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..80),
    ) {
        let net = grow(&picks, ParentRule::LowestId, SlotMode::Strict);
        let g = net.graph();
        let big_d = degree::max_degree(g) as u32;
        let small_d = degree::induced_max_degree(g, &net.backbone_nodes()) as u32;
        prop_assert!(net.delta_b() <= small_d * (small_d + 1) / 2 + 1);
        prop_assert!(net.delta_l() <= big_d * (big_d + 1) / 2 + 1);
    }

    #[test]
    fn flood_slots_always_satisfy_condition1(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        let net = grow(&picks, ParentRule::LowestId, SlotMode::Strict);
        let view = net.view();
        let (slots, delta) = assign_flood_slots(&view);
        let violations = validate_condition1(&view, &slots);
        prop_assert!(violations.is_empty(), "{violations:?}");
        // Condition-1 slots respect the same quadratic style bound on the
        // full graph degree.
        let big_d = degree::max_degree(net.graph()) as u32;
        prop_assert!(delta <= big_d * (big_d + 1) / 2 + 1);
    }

    #[test]
    fn statuses_match_definition1_locally(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..60),
    ) {
        let net = grow(&picks, ParentRule::HighestDegree, SlotMode::Strict);
        let tree = net.tree();
        for u in tree.nodes() {
            match net.status(u) {
                NodeStatus::PureMember => {
                    prop_assert!(tree.is_leaf(u));
                    prop_assert_eq!(
                        net.status(tree.parent(u).unwrap()),
                        NodeStatus::ClusterHead
                    );
                }
                NodeStatus::Gateway => {
                    prop_assert_eq!(tree.depth(u) % 2, 1);
                }
                NodeStatus::ClusterHead => {
                    prop_assert_eq!(tree.depth(u) % 2, 0);
                }
            }
        }
    }

    #[test]
    fn move_out_every_possible_node_keeps_soundness(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 3..25),
        victims in prop::collection::vec(any::<u16>(), 1..6),
    ) {
        let mut net = grow(&picks, ParentRule::LowestId, SlotMode::Strict);
        for &v in &victims {
            let nodes: Vec<NodeId> = net.tree().nodes().collect();
            if nodes.len() <= 2 {
                break;
            }
            let victim = nodes[v as usize % nodes.len()];
            let _ = net.move_out(victim); // refusals are fine
            invariants::check_core(&net)
                .map_err(|errs| TestCaseError::fail(format!("{errs:?}")))?;
            let violations = validate_condition2(&net.view(), net.slots(), net.mode());
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn move_in_costs_respect_theorem2_shape(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..50),
    ) {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for (i, &(a, b, c)) in picks.iter().enumerate() {
            let existing = (i + 1) as u32;
            let mut nbrs: Vec<NodeId> = [a, b, c]
                .iter()
                .map(|&x| NodeId(x as u32 % existing))
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            let d_new = nbrs.len() as u64;
            let report = net.move_in(&nbrs).unwrap();
            // Theorem 2: discovery O(d_new); slot updates ≤ a handful of
            // Procedure-1 calls, each ≤ 1 + deg; propagation 2h.
            let g = net.graph();
            let big_d = dsnet_graph::degree::max_degree(g) as u64;
            prop_assert_eq!(report.cost.discovery, d_new + 1);
            prop_assert!(report.cost.slot_update <= 6 * (big_d + 1),
                "slot update {} vs D={}", report.cost.slot_update, big_d);
            prop_assert_eq!(report.cost.propagation, 2 * net.height() as u64);
        }
    }
}

mod session_props {
    use super::grow;
    use dsnet_cluster::slots::session::{assign_session_slots, validate_session};
    use dsnet_cluster::{ParentRule, SlotMode};
    use dsnet_graph::NodeId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        /// Session slots must satisfy the session-level Condition 2 for
        /// *any* ancestor-closed transmitter set: membership mask → targets,
        /// relays = strict ancestors of targets (the MCNet shape).
        #[test]
        fn session_slots_sound_for_random_participation(
            picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 3..50),
            member_mod in 2u16..7,
        ) {
            let net = grow(&picks, ParentRule::LowestId, SlotMode::Strict);
            let tree = net.tree();
            let target = |u: NodeId| u.0.is_multiple_of(member_mod as u32);
            let relay = |u: NodeId| {
                tree.subtree_nodes(u).iter().any(|&d| d != u && target(d))
            };
            let rx = |u: NodeId| target(u) || relay(u);
            let view = net.view();
            let slots = assign_session_slots(&view, net.mode(), &relay, &rx);
            let violations = validate_session(&view, &slots, net.mode(), &relay, &rx);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        /// The full-participation session must be exactly as sound as a
        /// broadcast schedule.
        #[test]
        fn full_session_is_always_sound(
            picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..50),
        ) {
            let net = grow(&picks, ParentRule::LowestId, SlotMode::Strict);
            let all = |_u: NodeId| true;
            let view = net.view();
            let slots = assign_session_slots(&view, net.mode(), &all, &all);
            let violations = validate_session(&view, &slots, net.mode(), &all, &all);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }
}
