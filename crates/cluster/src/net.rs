//! CNet(G): the cluster-net of Definition 1 and the `node-move-in`
//! operation of Section 5.1.
//!
//! [`ClusterNet`] bundles the connectivity graph `G`, the rooted spanning
//! tree CNet(G), the per-node statuses and the TDM slot table, and keeps
//! all four consistent under churn. `G` is owned by the structure so the
//! two can never drift apart.
//!
//! The move-in rules (Definition 1): a joining node `new` with attached
//! neighbours `U` picks its parent `w` and statuses as
//!
//! 1. `U` contains cluster-heads → `w` = one of them, `new` becomes a
//!    pure-member of `w`'s cluster;
//! 2. else `U` contains gateways → `w` = one of them, `new` becomes the
//!    head of a fresh cluster;
//! 3. else (`U` is all pure-members) → `w` = one of them, `w` is
//!    *promoted* to gateway and `new` becomes the head of a fresh cluster.
//!
//! After the structural step, Algorithm 3 (`UpdateTimeSlot`) repairs the
//! slot table so Time-Slot Condition 2 keeps holding; the cost of every
//! Procedure-1 invocation is accounted per Lemma 2/3 and Theorem 2.

use crate::costs::MoveInCost;
use crate::slots::assign::{
    calculate_b_slot, calculate_l_slot, condition_b_holds, condition_l_holds,
};
use crate::slots::view::NetView;
use crate::slots::{SlotMode, SlotTable};
use crate::status::NodeStatus;
use dsnet_graph::{Graph, NodeId, RootedTree};
use std::fmt;

/// Tie-break rule for choosing the parent among eligible neighbours.
/// (The paper leaves this to the application, naming energy level as one
/// example criterion; we provide deterministic structural rules.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParentRule {
    /// Smallest node id — fully deterministic, the default.
    #[default]
    LowestId,
    /// Highest current degree in `G` (ties by smallest id). Tends to
    /// produce fewer, larger clusters.
    HighestDegree,
}

/// Errors from [`ClusterNet::move_in`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveInError {
    /// The very first node must be inserted with an empty neighbour list.
    FirstNodeTakesNoNeighbors,
    /// A non-first node needs at least one attached neighbour.
    NoAttachedNeighbor,
    /// A listed neighbour is not a live node of `G`.
    UnknownNeighbor(NodeId),
}

impl fmt::Display for MoveInError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveInError::FirstNodeTakesNoNeighbors => {
                write!(f, "the first node must be inserted with no neighbours")
            }
            MoveInError::NoAttachedNeighbor => {
                write!(f, "a joining node must hear at least one attached node")
            }
            MoveInError::UnknownNeighbor(n) => write!(f, "unknown neighbour {n}"),
        }
    }
}

impl std::error::Error for MoveInError {}

/// What a move-in did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveInReport {
    /// The node that joined.
    pub node: NodeId,
    /// `None` only for the root.
    pub parent: Option<NodeId>,
    /// Status assigned to the newcomer.
    pub status: NodeStatus,
    /// Set when rule 3 fired: this pure-member was promoted to gateway.
    pub promoted_gateway: Option<NodeId>,
    /// Accounted round costs (Theorem 2 terms).
    pub cost: MoveInCost,
}

/// Journal of structurally-dirty nodes as per-node last-write stamps.
///
/// Every mutation that can change a node's *knowledge* (tuple writes, slot
/// writes, and the surviving endpoints of inserted/removed `G` edges)
/// stamps the node with the current version. A consumer holding a snapshot
/// at version `v ≥ floor` recovers an over-approximation of the nodes
/// whose knowledge changed since `v` — the `T` set of the DirtyAudit
/// closure rules (DESIGN §12): everything else is reachable from `T` via
/// `L = T ∪ parent(T)`, `R = L ∪ N_G(L)`.
///
/// Stamps dedup re-recordings for free: a repair sweep that rewrites the
/// same node ten thousand times costs one slot, so the journal never
/// evicts and memory stays `O(capacity)` — 8 bytes per node ever
/// allocated, the same growth law as the graph itself. (An earlier
/// ring-buffer design wrapped within a single heavy maintenance epoch and
/// forced a full rebuild exactly when patching mattered most.) A node's
/// last write being `≤ v` implies it has no write after `v`, so yielding
/// every node stamped `> v` is exact with respect to recorded history.
///
/// Versions below `floor` are unknowable: raw structural access
/// (`graph_mut` & friends outside a bracketed operation) or a from-scratch
/// rebuild poisons the journal by raising the floor.
#[derive(Debug, Clone)]
struct MutationJournal {
    /// `stamp[i]` = version of the last recorded write to `NodeId(i)`;
    /// `0` = never recorded (version 0 predates every mutation).
    stamp: Vec<u64>,
    floor: u64,
}

impl MutationJournal {
    fn new() -> Self {
        Self {
            stamp: Vec::new(),
            floor: 0,
        }
    }

    fn record(&mut self, version: u64, u: NodeId) {
        if self.stamp.len() <= u.index() {
            self.stamp.resize(u.index() + 1, 0);
        }
        debug_assert!(self.stamp[u.index()] <= version);
        self.stamp[u.index()] = version;
    }

    fn poison(&mut self, version: u64) {
        // Stamps stay: consumers at `from ≥ floor` still read them, and
        // recording resumes monotonically past `version`.
        self.floor = version;
    }
}

/// The cluster-based structure: `G`, CNet(G), statuses and slots.
///
/// ```
/// use dsnet_cluster::{ClusterNet, NodeStatus};
/// use dsnet_graph::NodeId;
///
/// let mut net = ClusterNet::with_defaults();
/// net.move_in(&[]).unwrap();                 // the sink (a cluster head)
/// net.move_in(&[NodeId(0)]).unwrap();        // joins the head → pure member
/// let r = net.move_in(&[NodeId(1)]).unwrap();// hears only a member → rule 3
/// assert_eq!(r.status, NodeStatus::ClusterHead);
/// assert_eq!(net.status(NodeId(1)), NodeStatus::Gateway); // promoted
/// assert_eq!(net.backbone_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterNet {
    graph: Graph,
    tree: Option<RootedTree>,
    status: Vec<NodeStatus>,
    slots: SlotTable,
    rule: ParentRule,
    mode: SlotMode,
    /// Monotonic counter bumped on every structural mutation (move-in,
    /// move-out, repair, slot rewrites). Caches keyed on this value are
    /// guaranteed stale-free: equal versions imply an identical structure.
    version: u64,
    /// Version-stamped dirty-node records backing [`ClusterNet::dirty_since`].
    journal: MutationJournal,
    /// Nesting depth of bracketed structural operations. Raw mutable
    /// accessors poison the journal only at depth 0: inside a bracketed
    /// operation the op itself records its dirty set.
    op_depth: u32,
}

impl ClusterNet {
    /// An empty structure with the given parent rule and slot mode.
    pub fn new(rule: ParentRule, mode: SlotMode) -> Self {
        Self {
            graph: Graph::new(),
            tree: None,
            status: Vec::new(),
            slots: SlotTable::default(),
            rule,
            mode,
            version: 0,
            journal: MutationJournal::new(),
            op_depth: 0,
        }
    }

    /// Lowest-id parent rule, strict slot mode.
    pub fn with_defaults() -> Self {
        Self::new(ParentRule::default(), SlotMode::default())
    }

    // ----- accessors ------------------------------------------------------

    /// The connectivity graph `G` (owned by the structure).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The CNet tree. Panics while the net is empty.
    pub fn tree(&self) -> &RootedTree {
        self.tree.as_ref().expect("cluster net is empty")
    }

    /// Whether no node has joined yet.
    pub fn is_empty(&self) -> bool {
        self.tree.is_none()
    }

    /// Number of attached nodes.
    pub fn len(&self) -> usize {
        self.tree.as_ref().map_or(0, |t| t.len())
    }

    /// The root (sink) of CNet(G).
    pub fn root(&self) -> NodeId {
        self.tree().root()
    }

    /// Status of an attached node.
    pub fn status(&self, u: NodeId) -> NodeStatus {
        assert!(self.tree().contains(u), "{u} is not attached");
        self.status[u.index()]
    }

    /// The current TDM slot table.
    pub fn slots(&self) -> &SlotTable {
        &self.slots
    }

    /// The structure version: a monotonic counter bumped on every mutation
    /// of the graph, tree, statuses or slot table (churn, move-out, repair,
    /// mobility maintenance). Two reads returning the same value are
    /// guaranteed to have observed byte-identical structure, so derived
    /// artifacts (e.g. knowledge snapshots) may be cached keyed on it.
    /// Over-bumping is legal (a bump without an actual change only costs a
    /// cache miss); missing a mutation is not.
    pub fn structure_version(&self) -> u64 {
        self.version
    }

    /// Nodes whose *knowledge* may have changed since `from_version` — the
    /// `T` set of the dirty-closure rules (DESIGN §12/§17): nodes whose
    /// (depth, status, parent, slot) tuple was written, plus the surviving
    /// endpoints of every inserted or removed `G` edge. Anything else a
    /// knowledge snapshot depends on is reachable from `T` through
    /// `L = T ∪ parent(T)`, `R = L ∪ N_G(L)` plus a handful of global
    /// scalars.
    ///
    /// Returns `None` when the journal cannot answer — `from_version`
    /// predates the retention floor (a raw structural mutation or a
    /// from-scratch rebuild poisoned it) — in which case the caller must
    /// fall back to a full rebuild. The yielded set is an
    /// over-approximation (already-clean nodes are legal; duplicates are
    /// never produced) in ascending id order; ids may refer to
    /// since-removed nodes.
    pub fn dirty_since(&self, from_version: u64) -> Option<impl Iterator<Item = NodeId> + '_> {
        if from_version < self.journal.floor {
            return None;
        }
        Some(
            self.journal
                .stamp
                .iter()
                .enumerate()
                .filter(move |&(_, &v)| v > from_version)
                .map(|(i, _)| NodeId(i as u32)),
        )
    }

    /// Open a bracketed structural operation: bumps the version once so
    /// every record the op appends post-dates any snapshot taken before
    /// it, and suspends journal poisoning by the raw mutable accessors
    /// (the op records its own dirty set). Must be paired with
    /// [`ClusterNet::end_op`].
    pub(crate) fn begin_op(&mut self) {
        self.version += 1;
        self.op_depth += 1;
    }

    pub(crate) fn end_op(&mut self) {
        debug_assert!(self.op_depth > 0, "end_op without begin_op");
        self.op_depth -= 1;
    }

    /// Append a dirty-node record at the current version.
    pub(crate) fn record_dirty(&mut self, u: NodeId) {
        self.journal.record(self.version, u);
    }

    /// The interference model the slots are maintained under.
    pub fn mode(&self) -> SlotMode {
        self.mode
    }

    /// The parent tie-break rule in use.
    pub fn parent_rule(&self) -> ParentRule {
        self.rule
    }

    /// Borrowed structural view for the slot machinery and validators.
    pub fn view(&self) -> NetView<'_> {
        NetView::new(&self.graph, self.tree(), &self.status)
    }

    /// Height `h` of CNet(G).
    pub fn height(&self) -> u32 {
        self.tree().height()
    }

    /// The paper's `δ`: largest b-time-slot in use.
    pub fn delta_b(&self) -> u32 {
        self.slots.max_b()
    }

    /// The paper's `Δ`: largest l-time-slot in use.
    pub fn delta_l(&self) -> u32 {
        self.slots.max_l()
    }

    /// Attached backbone nodes (heads and gateways), sorted by id.
    pub fn backbone_nodes(&self) -> Vec<NodeId> {
        self.tree()
            .nodes()
            .filter(|&u| self.status[u.index()].in_backbone())
            .collect()
    }

    /// BT(G): the backbone as its own rooted tree (Definition 2). Backbone
    /// parents are backbone nodes, so this is simply CNet(G) restricted to
    /// heads and gateways.
    pub fn backbone_tree(&self) -> RootedTree {
        let tree = self.tree();
        let mut bt = RootedTree::new(tree.root());
        // Attach in depth order so parents precede children.
        let mut nodes = self.backbone_nodes();
        nodes.sort_by_key(|&u| tree.depth(u));
        for u in nodes {
            if u == tree.root() {
                continue;
            }
            let p = tree.parent(u).expect("non-root has a parent");
            debug_assert!(self.status[p.index()].in_backbone());
            bt.attach(u, p);
        }
        bt
    }

    /// `G(V_BT)`: the subgraph of `G` induced by the backbone nodes (ids
    /// preserved).
    pub fn backbone_graph(&self) -> Graph {
        self.graph.induced_subgraph(&self.backbone_nodes())
    }

    /// The clusters: each head with the members of its cluster (its
    /// pure-member and gateway children).
    pub fn clusters(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let tree = self.tree();
        self.tree()
            .nodes()
            .filter(|&u| self.status[u.index()] == NodeStatus::ClusterHead)
            .map(|h| (h, tree.children(h).collect()))
            .collect()
    }

    /// Counts of (heads, gateways, pure members).
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for u in self.tree().nodes() {
            match self.status[u.index()] {
                NodeStatus::ClusterHead => c.0 += 1,
                NodeStatus::Gateway => c.1 += 1,
                NodeStatus::PureMember => c.2 += 1,
            }
        }
        c
    }

    // ----- construction ---------------------------------------------------

    /// Insert a brand-new node whose radio hears `neighbors` (ids of
    /// already-inserted nodes). The first insertion must pass `&[]` and
    /// creates the root (the sink). Returns what happened.
    pub fn move_in(&mut self, neighbors: &[NodeId]) -> Result<MoveInReport, MoveInError> {
        if self.is_empty() {
            if !neighbors.is_empty() {
                return Err(MoveInError::FirstNodeTakesNoNeighbors);
            }
            let root = self.graph.add_node();
            self.version += 1;
            self.journal.record(self.version, root);
            self.ensure_status_capacity();
            self.status[root.index()] = NodeStatus::ClusterHead;
            self.tree = Some(RootedTree::new(root));
            return Ok(MoveInReport {
                node: root,
                parent: None,
                status: NodeStatus::ClusterHead,
                promoted_gateway: None,
                cost: MoveInCost::default(),
            });
        }
        if neighbors.is_empty() {
            return Err(MoveInError::NoAttachedNeighbor);
        }
        for &n in neighbors {
            if !self.graph.is_live(n) {
                return Err(MoveInError::UnknownNeighbor(n));
            }
        }
        let new = self.graph.add_node_with_neighbors(neighbors);
        self.ensure_status_capacity();
        self.move_in_existing(new)
    }

    /// Attach an existing live graph node (not currently in the tree) to
    /// the structure. Used directly by `node-move-out` when re-homing the
    /// stranded subtree, and by `move_in` after creating the node.
    pub(crate) fn move_in_existing(&mut self, new: NodeId) -> Result<MoveInReport, MoveInError> {
        debug_assert!(self.graph.is_live(new));
        debug_assert!(!self.tree().contains(new));
        // Bump up-front: callers (move_in, move-out re-homing) have already
        // mutated the graph by the time we run, and over-bumping is legal.
        self.version += 1;
        // Journal the newcomer and the surviving endpoints of its edges;
        // every tuple/slot write below lands on `new`, its parent `w`, or
        // `w`'s parent — all G-neighbours of `new` or recorded explicitly.
        self.journal.record(self.version, new);
        for i in 0..self.graph.neighbors(new).len() {
            let v = self.graph.neighbors(new)[i];
            self.journal.record(self.version, v);
        }
        self.ensure_status_capacity();

        // U: attached neighbours, i.e. nodes of the current CNet that the
        // newcomer can hear. Fold the Definition-1 parent pick into the
        // single scan — the re-homing loop of `node-move-out` calls this
        // once per stranded node, so no candidate lists are materialised.
        let tree = self.tree.as_ref().unwrap();
        let mut attached_count = 0u64;
        let mut best_head: Option<NodeId> = None;
        let mut best_gateway: Option<NodeId> = None;
        let mut best_any: Option<NodeId> = None;
        for &v in self.graph.neighbors(new) {
            if !tree.contains(v) {
                continue;
            }
            attached_count += 1;
            let fold = |slot: &mut Option<NodeId>| {
                *slot = Some(match *slot {
                    Some(cur) => self.prefer_parent(cur, v),
                    None => v,
                });
            };
            fold(&mut best_any);
            match self.status[v.index()] {
                NodeStatus::ClusterHead => fold(&mut best_head),
                NodeStatus::Gateway => fold(&mut best_gateway),
                NodeStatus::PureMember => {}
            }
        }
        let Some(any) = best_any else {
            return Err(MoveInError::NoAttachedNeighbor);
        };

        // Definition 1 status rules.
        let (w, new_status, promote_w) = if let Some(h) = best_head {
            (h, NodeStatus::PureMember, false)
        } else if let Some(g) = best_gateway {
            (g, NodeStatus::ClusterHead, false)
        } else {
            (any, NodeStatus::ClusterHead, true)
        };

        // Pre-attachment structural facts needed by Algorithm 3.
        let tree = self.tree.as_ref().unwrap();
        let w_was_cnet_leaf = tree.is_leaf(w);
        let w_was_bt_internal = {
            let view = NetView::new(&self.graph, tree, &self.status);
            view.bt_internal(w)
        };

        if promote_w {
            self.status[w.index()] = NodeStatus::Gateway;
        }
        self.status[new.index()] = new_status;
        self.tree.as_mut().unwrap().attach(new, w);
        self.slots.ensure_capacity(self.graph.capacity());

        // Algorithm 3: repair the slot table.
        let mut slot_rounds = 0u64;
        let mode = self.mode;
        {
            let tree = self.tree.as_ref().unwrap();
            let view = NetView::new(&self.graph, tree, &self.status);

            // (a) `w` turned CNet-internal: it now transmits in phase 2.
            if w_was_cnet_leaf {
                slot_rounds += calculate_l_slot(&view, &mut self.slots, mode, w).rounds;
            }
            // (b) `w` turned BT-internal: it now transmits in phase 1.
            if new_status == NodeStatus::ClusterHead && !w_was_bt_internal {
                slot_rounds += calculate_b_slot(&view, &mut self.slots, w).rounds;
            }
            // (c) rule-3 promotion: `w` is a brand-new backbone *receiver*;
            // its head parent `u` turned BT-internal and must cover it.
            if promote_w {
                let u = tree.parent(w).expect("promoted member has a head parent");
                self.journal.record(self.version, u);
                if self.slots.b(u).is_none() {
                    slot_rounds += calculate_b_slot(&view, &mut self.slots, u).rounds;
                }
                if !condition_b_holds(&view, &self.slots, w) {
                    slot_rounds += calculate_b_slot(&view, &mut self.slots, u).rounds;
                }
                debug_assert!(condition_b_holds(&view, &self.slots, w));
            }
            // (d) the newcomer's own reception (Algorithm 3's main check).
            match new_status {
                NodeStatus::ClusterHead => {
                    if !condition_b_holds(&view, &self.slots, new) {
                        slot_rounds += calculate_b_slot(&view, &mut self.slots, w).rounds;
                    }
                    debug_assert!(condition_b_holds(&view, &self.slots, new));
                }
                NodeStatus::PureMember => {
                    if !condition_l_holds(&view, &self.slots, mode, new) {
                        slot_rounds += calculate_l_slot(&view, &mut self.slots, mode, w).rounds;
                    }
                    debug_assert!(condition_l_holds(&view, &self.slots, mode, new));
                }
                NodeStatus::Gateway => unreachable!("a newcomer is never a gateway"),
            }
        }

        let cost = MoveInCost {
            discovery: attached_count + 1,
            slot_update: slot_rounds,
            propagation: 2 * self.height() as u64,
        };
        Ok(MoveInReport {
            node: new,
            parent: Some(w),
            status: new_status,
            promoted_gateway: promote_w.then_some(w),
            cost,
        })
    }

    /// The preferred of two parent candidates under the configured rule —
    /// the pairwise form of `min` (LowestId) / `max_by_key (degree, ¬id)`
    /// (HighestDegree), folded over the neighbour scan.
    fn prefer_parent(&self, cur: NodeId, cand: NodeId) -> NodeId {
        let wins = match self.rule {
            ParentRule::LowestId => cand < cur,
            ParentRule::HighestDegree => {
                (self.graph.degree(cand), std::cmp::Reverse(cand))
                    > (self.graph.degree(cur), std::cmp::Reverse(cur))
            }
        };
        if wins {
            cand
        } else {
            cur
        }
    }

    fn ensure_status_capacity(&mut self) {
        let cap = self.graph.capacity();
        if self.status.len() < cap {
            self.status.resize(cap, NodeStatus::PureMember);
        }
        self.slots.ensure_capacity(cap);
    }

    // ----- crate-internal mutators used by node-move-out -------------------

    // Every mutable accessor bumps the structure version pessimistically:
    // callers hold the returned borrow precisely because they intend to
    // mutate, and an unused bump only costs a downstream cache miss. At
    // op-depth 0 nobody is recording the dirty set, so the journal is
    // poisoned: dirty_since can no longer vouch for older versions.

    pub(crate) fn graph_mut(&mut self) -> &mut Graph {
        self.version += 1;
        if self.op_depth == 0 {
            self.journal.poison(self.version);
        }
        &mut self.graph
    }

    pub(crate) fn tree_mut(&mut self) -> &mut RootedTree {
        self.version += 1;
        if self.op_depth == 0 {
            self.journal.poison(self.version);
        }
        self.tree.as_mut().expect("cluster net is empty")
    }

    pub(crate) fn slots_mut(&mut self) -> &mut SlotTable {
        self.version += 1;
        if self.op_depth == 0 {
            self.journal.poison(self.version);
        }
        &mut self.slots
    }

    /// Split borrows for the slot machinery: immutable structure, mutable
    /// slot table.
    pub(crate) fn split_for_slots(
        &mut self,
    ) -> (&Graph, &RootedTree, &[NodeStatus], &mut SlotTable) {
        self.version += 1;
        if self.op_depth == 0 {
            self.journal.poison(self.version);
        }
        (
            &self.graph,
            self.tree.as_ref().expect("cluster net is empty"),
            &self.status,
            &mut self.slots,
        )
    }

    /// Swap in a from-scratch rebuild of the whole structure (root
    /// departure/failure). The replacement's version is forced past the
    /// old one — `*self = rebuilt` alone would regress the monotonic
    /// counter and could collide with a stale cache key — and its journal
    /// is poisoned: a rebuild dirties everything.
    pub(crate) fn replace_with_rebuilt(&mut self, mut rebuilt: ClusterNet) {
        rebuilt.version = self.version.max(rebuilt.version) + 1;
        rebuilt.journal.poison(rebuilt.version);
        rebuilt.op_depth = 0;
        *self = rebuilt;
    }

    /// Build a cluster structure **over an existing graph**, choosing the
    /// root and the attachment order freely (ids are preserved). `order`
    /// must list every live node exactly once, starting with the desired
    /// root (the sink), and every later node must have a `graph`-neighbour
    /// earlier in the order — a BFS order from the root always qualifies.
    ///
    /// This realises the paper's multi-sink remark (end of Section 2):
    /// "more than one cluster-net may be selected in the same way from
    /// different roots (sinks) so that if one cluster-net fails others can
    /// still be used" — several structures over the same `G`, one per
    /// sink.
    pub fn build_over(
        graph: Graph,
        order: &[NodeId],
        rule: ParentRule,
        mode: SlotMode,
    ) -> Result<Self, MoveInError> {
        assert_eq!(
            order.len(),
            graph.node_count(),
            "order must cover every live node"
        );
        let mut net = ClusterNet::new(rule, mode);
        net.graph = graph;
        net.ensure_status_capacity();
        let root = *order.first().expect("order is non-empty");
        assert!(net.graph.is_live(root), "root must be live");
        net.status[root.index()] = NodeStatus::ClusterHead;
        net.tree = Some(RootedTree::new(root));
        for &u in &order[1..] {
            net.move_in_existing(u)?;
        }
        Ok(net)
    }

    /// Build a net by replaying an arrival sequence: node `i` of `full`
    /// joins hearing its `full`-neighbours among nodes `0..i`. `full` must
    /// have dense ids `0..n` (no tombstones) and be *incrementally
    /// connected* (every node i > 0 has a neighbour with a smaller id).
    pub fn build_by_arrival(
        full: &Graph,
        rule: ParentRule,
        mode: SlotMode,
    ) -> Result<(Self, Vec<MoveInReport>), MoveInError> {
        assert_eq!(
            full.node_count(),
            full.capacity(),
            "arrival graph must have dense ids"
        );
        let mut net = ClusterNet::new(rule, mode);
        let mut reports = Vec::with_capacity(full.node_count());
        for i in 0..full.node_count() {
            let u = NodeId(i as u32);
            let earlier: Vec<NodeId> = full
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| v < u)
                .collect();
            reports.push(net.move_in(&earlier)?);
        }
        Ok((net, reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::validate::validate_condition2;

    #[test]
    fn first_node_becomes_root_head() {
        let mut net = ClusterNet::with_defaults();
        let r = net.move_in(&[]).unwrap();
        assert_eq!(r.node, NodeId(0));
        assert_eq!(r.status, NodeStatus::ClusterHead);
        assert_eq!(net.root(), NodeId(0));
        assert_eq!(net.len(), 1);
        assert_eq!(net.height(), 0);
    }

    #[test]
    fn first_node_rejects_neighbors() {
        let mut net = ClusterNet::with_defaults();
        assert_eq!(
            net.move_in(&[NodeId(0)]),
            Err(MoveInError::FirstNodeTakesNoNeighbors)
        );
    }

    #[test]
    fn rule1_head_neighbor_makes_member() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        let r = net.move_in(&[NodeId(0)]).unwrap();
        assert_eq!(r.status, NodeStatus::PureMember);
        assert_eq!(r.parent, Some(NodeId(0)));
        assert_eq!(r.promoted_gateway, None);
    }

    #[test]
    fn rule3_member_neighbor_promotes_gateway() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap(); // 0 head
        net.move_in(&[NodeId(0)]).unwrap(); // 1 member
                                            // 2 hears only member 1 → 1 promoted to gateway, 2 becomes head.
        let r = net.move_in(&[NodeId(1)]).unwrap();
        assert_eq!(r.status, NodeStatus::ClusterHead);
        assert_eq!(r.promoted_gateway, Some(NodeId(1)));
        assert_eq!(net.status(NodeId(1)), NodeStatus::Gateway);
        assert_eq!(net.tree().depth(NodeId(2)), 2);
    }

    #[test]
    fn rule2_gateway_neighbor_makes_head() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(1)]).unwrap(); // promotes 1
                                            // 3 hears only gateway 1 → head under 1.
        let r = net.move_in(&[NodeId(1)]).unwrap();
        assert_eq!(r.status, NodeStatus::ClusterHead);
        assert_eq!(r.parent, Some(NodeId(1)));
        assert_eq!(r.promoted_gateway, None);
    }

    #[test]
    fn head_priority_over_gateway_and_member() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap(); // 0 head
        net.move_in(&[NodeId(0)]).unwrap(); // 1 member of 0
        net.move_in(&[NodeId(1)]).unwrap(); // 2 head, 1 gateway
                                            // 3 hears head 0, gateway 1, head 2 → must join a head.
        let r = net.move_in(&[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(r.status, NodeStatus::PureMember);
        assert_eq!(r.parent, Some(NodeId(0))); // lowest-id head
    }

    #[test]
    fn highest_degree_rule_changes_pick() {
        let mut net = ClusterNet::new(ParentRule::HighestDegree, SlotMode::Strict);
        net.move_in(&[]).unwrap(); // 0 head
        net.move_in(&[NodeId(0)]).unwrap(); // 1 member
        net.move_in(&[NodeId(1)]).unwrap(); // 2 head (1 gateway)
        net.move_in(&[NodeId(2)]).unwrap(); // 3 member of 2
        net.move_in(&[NodeId(2)]).unwrap(); // 4 member of 2 → deg(2) = 3 > deg(0) = 1
        let r = net.move_in(&[NodeId(0), NodeId(2)]).unwrap();
        assert_eq!(r.parent, Some(NodeId(2)));
    }

    #[test]
    fn slots_stay_valid_during_growth() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        // A chain of member-only hops forces repeated promotions.
        for i in 1..20u32 {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        let violations = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(violations.is_empty(), "{violations:?}");
        // Chain structure: statuses alternate head/gateway with the initial
        // member absorbed; heights grow.
        assert!(net.height() >= 10);
    }

    #[test]
    fn unknown_neighbor_is_rejected() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        assert_eq!(
            net.move_in(&[NodeId(9)]),
            Err(MoveInError::UnknownNeighbor(NodeId(9)))
        );
    }

    #[test]
    fn backbone_tree_contains_heads_and_gateways() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(1)]).unwrap();
        net.move_in(&[NodeId(2)]).unwrap(); // member of head 2
        let bt = net.backbone_tree();
        assert_eq!(bt.len(), 3); // 0, 1, 2
        assert!(bt.contains(NodeId(0)) && bt.contains(NodeId(1)) && bt.contains(NodeId(2)));
        assert!(!bt.contains(NodeId(3)));
        bt.check_invariants();
        let bg = net.backbone_graph();
        assert_eq!(bg.node_count(), 3);
    }

    #[test]
    fn clusters_partition_the_nodes() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..15u32 {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        let clusters = net.clusters();
        let mut seen = std::collections::HashSet::new();
        for (h, members) in &clusters {
            assert!(seen.insert(*h));
            for m in members {
                assert!(seen.insert(*m), "{m} in two clusters");
            }
        }
        assert_eq!(seen.len(), net.len());
    }

    #[test]
    fn build_by_arrival_matches_manual_replay() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let (net, reports) =
            ClusterNet::build_by_arrival(&g, ParentRule::LowestId, SlotMode::Strict).unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(net.len(), 4);
        assert_eq!(net.graph().edge_count(), g.edge_count());
        let violations = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(violations.is_empty());
    }

    #[test]
    fn structure_version_bumps_on_every_mutation() {
        let mut net = ClusterNet::with_defaults();
        let v0 = net.structure_version();
        net.move_in(&[]).unwrap();
        let v1 = net.structure_version();
        assert!(v1 > v0, "root insertion must bump the version");
        net.move_in(&[NodeId(0)]).unwrap();
        let v2 = net.structure_version();
        assert!(v2 > v1, "move-in must bump the version");
        // Failed move-ins may or may not bump (over-bumping is legal), but
        // must never *decrease* the version.
        let _ = net.move_in(&[NodeId(9)]);
        assert!(net.structure_version() >= v2);
        // Crate-internal mutable access bumps pessimistically.
        let before = net.structure_version();
        let _ = net.slots_mut();
        assert!(net.structure_version() > before);
    }

    #[test]
    fn journal_reports_dirty_nodes_since_a_version() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        let v = net.structure_version();
        // Same version → empty dirty set.
        assert_eq!(net.dirty_since(v).unwrap().count(), 0);
        net.move_in(&[NodeId(1)]).unwrap(); // promotes 1, attaches 2
        let dirty: std::collections::BTreeSet<NodeId> = net.dirty_since(v).unwrap().collect();
        assert!(dirty.contains(&NodeId(2)), "newcomer is dirty: {dirty:?}");
        assert!(
            dirty.contains(&NodeId(1)),
            "edge endpoint is dirty: {dirty:?}"
        );
        // Move-out journals the departed node and its neighbours.
        let v2 = net.structure_version();
        net.move_in(&[NodeId(0), NodeId(2)]).unwrap(); // 3, keeps G connected
        net.move_out(NodeId(2)).unwrap();
        let dirty: std::collections::BTreeSet<NodeId> = net.dirty_since(v2).unwrap().collect();
        assert!(dirty.contains(&NodeId(2)), "{dirty:?}");
        assert!(dirty.contains(&NodeId(1)), "{dirty:?}");
    }

    #[test]
    fn raw_mutable_access_poisons_the_journal() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        let v = net.structure_version();
        assert!(net.dirty_since(v).is_some());
        let _ = net.slots_mut();
        assert!(
            net.dirty_since(v).is_none(),
            "an unbracketed raw mutation must poison older versions"
        );
        // The current (post-poison) version answers again — emptily.
        let now = net.structure_version();
        assert_eq!(net.dirty_since(now).unwrap().count(), 0);
    }

    #[test]
    fn root_rebuild_keeps_the_version_monotonic_and_poisons() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..8u32 {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            net.move_in(&nbrs).unwrap();
        }
        let v = net.structure_version();
        net.move_out_root().unwrap();
        assert!(
            net.structure_version() > v,
            "a from-scratch rebuild must never regress the version counter"
        );
        assert!(net.dirty_since(v).is_none(), "rebuild dirties everything");
    }

    #[test]
    fn status_counts_sum_to_len() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..12u32 {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        let (h, g, m) = net.status_counts();
        assert_eq!(h + g + m, net.len());
        assert!(h >= 1);
    }
}

#[cfg(test)]
mod build_over_tests {
    use super::*;
    use crate::slots::validate::validate_condition2;
    use dsnet_graph::traversal::bfs;

    fn sample_graph() -> Graph {
        // A 3x3 grid-ish graph.
        let mut g = Graph::with_nodes(9);
        for row in 0..3u32 {
            for col in 0..3u32 {
                let id = row * 3 + col;
                if col < 2 {
                    g.add_edge(NodeId(id), NodeId(id + 1));
                }
                if row < 2 {
                    g.add_edge(NodeId(id), NodeId(id + 3));
                }
            }
        }
        g
    }

    #[test]
    fn build_over_bfs_order_from_any_root() {
        let g = sample_graph();
        for root in [NodeId(0), NodeId(4), NodeId(8)] {
            let order = bfs(&g, root).order;
            let net =
                ClusterNet::build_over(g.clone(), &order, ParentRule::LowestId, SlotMode::Strict)
                    .unwrap();
            assert_eq!(net.root(), root);
            assert_eq!(net.len(), 9);
            crate::invariants::check_growth(&net).unwrap();
            let v = validate_condition2(&net.view(), net.slots(), net.mode());
            assert!(v.is_empty(), "root {root}: {v:?}");
        }
    }

    #[test]
    fn different_roots_give_different_structures_over_same_ids() {
        let g = sample_graph();
        let a = ClusterNet::build_over(
            g.clone(),
            &bfs(&g, NodeId(0)).order,
            ParentRule::LowestId,
            SlotMode::Strict,
        )
        .unwrap();
        let b = ClusterNet::build_over(
            g.clone(),
            &bfs(&g, NodeId(8)).order,
            ParentRule::LowestId,
            SlotMode::Strict,
        )
        .unwrap();
        assert_ne!(a.root(), b.root());
        // Same underlying graph, same node ids.
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
    }
}
