//! Whole-structure validation of the Time-Slot Conditions, plus the
//! one-shot slot assignment for the basic flooding broadcast (Algorithm 1).

use crate::slots::assign::{condition_b_holds, condition_l_holds, unique_run_count};
use crate::slots::view::NetView;
use crate::slots::{mex, SlotMode, SlotTable};
use dsnet_graph::NodeId;

/// A receiver whose Time-Slot Condition is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionViolation {
    /// Backbone receiver with no uniquely-slotted phase-1 transmitter.
    B(NodeId),
    /// Member leaf with no uniquely-slotted phase-2 transmitter.
    L(NodeId),
    /// A phase transmitter missing its slot entirely.
    MissingSlot(NodeId),
}

/// Check Time-Slot Condition 2 over the whole attached structure.
/// Returns every violation (empty ⇒ the TDM schedule is sound).
pub fn validate_condition2(
    view: &NetView<'_>,
    slots: &SlotTable,
    mode: SlotMode,
) -> Vec<ConditionViolation> {
    let mut out = Vec::new();
    for u in view.tree.nodes() {
        // Transmitters must carry their slots.
        if view.bt_internal(u) && slots.b(u).is_none() {
            out.push(ConditionViolation::MissingSlot(u));
        }
        if view.cnet_internal(u) && slots.l(u).is_none() {
            out.push(ConditionViolation::MissingSlot(u));
        }
        // Receivers must have a unique transmitter.
        if view.in_backbone(u) && view.tree.depth(u) >= 1 && !condition_b_holds(view, slots, u) {
            out.push(ConditionViolation::B(u));
        }
        if view.is_member_leaf(u) && !condition_l_holds(view, slots, mode, u) {
            out.push(ConditionViolation::L(u));
        }
    }
    out
}

/// One-shot slot assignment for **Algorithm 1** (basic collision-free
/// flooding over the whole CNet): every internal node gets a single
/// transmission slot such that Time-Slot Condition 1 holds — each node at
/// depth `i+1` has, among the internal depth-`i` nodes it hears, one with a
/// unique slot. Returns the per-node slot vector (indexed by node id) and
/// `Δ'`, the largest assigned slot.
pub fn assign_flood_slots(view: &NetView<'_>) -> (Vec<Option<u32>>, u32) {
    let cap = view.graph.capacity();
    let mut slot: Vec<Option<u32>> = vec![None; cap];
    // Internal nodes in (depth, id) order: deterministic, and the "last
    // writer re-checks everyone" argument makes the result valid.
    let mut internal: Vec<NodeId> = view
        .tree
        .nodes()
        .filter(|&u| view.cnet_internal(u))
        .collect();
    internal.sort_by_key(|&u| (view.tree.depth(u), u));
    let mut forbidden: Vec<u32> = Vec::new();
    let mut others: Vec<u32> = Vec::new();
    for &y in &internal {
        let depth = view.tree.depth(y);
        let receivers: Vec<NodeId> = view
            .attached_neighbors(y)
            .filter(|&v| view.tree.depth(v) == depth + 1)
            .collect();
        forbidden.clear();
        for &v in &receivers {
            others.clear();
            others.extend(
                flood_transmitters(view, v)
                    .into_iter()
                    .filter(|&t| t != y)
                    .filter_map(|t| slot[t.index()]),
            );
            others.sort_unstable();
            if unique_run_count(&others) >= 2 {
                continue;
            }
            forbidden.extend_from_slice(&others);
        }
        slot[y.index()] = Some(mex(&mut forbidden));
    }
    let max = slot.iter().flatten().copied().max().unwrap_or(0);
    (slot, max)
}

/// Internal depth-(i−1) G-neighbours of `v` — the transmitters `v` hears
/// in Algorithm 1's depth window.
pub fn flood_transmitters(view: &NetView<'_>, v: NodeId) -> Vec<NodeId> {
    let depth = view.tree.depth(v);
    if depth == 0 {
        return Vec::new();
    }
    view.attached_neighbors(v)
        .filter(|&y| view.cnet_internal(y) && view.tree.depth(y) + 1 == depth)
        .collect()
}

/// Check Time-Slot Condition 1 for the Algorithm-1 slots produced by
/// [`assign_flood_slots`].
pub fn validate_condition1(view: &NetView<'_>, slot: &[Option<u32>]) -> Vec<NodeId> {
    let mut violations = Vec::new();
    for v in view.tree.nodes() {
        if view.tree.depth(v) == 0 {
            continue;
        }
        let trans = flood_transmitters(view, v);
        if trans.is_empty() {
            violations.push(v);
            continue;
        }
        let mut vals: Vec<u32> = trans.iter().filter_map(|&t| slot[t.index()]).collect();
        vals.sort_unstable();
        if unique_run_count(&vals) == 0 {
            violations.push(v);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::NodeStatus;
    use dsnet_graph::{Graph, RootedTree};

    /// Root head 0 with members 1, 2; gateway 3 under 0 with head 4; head 4
    /// has member 5. Dense extra G edges so slots actually conflict.
    fn structure() -> (Graph, RootedTree, Vec<NodeStatus>) {
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(4), NodeId(5));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(1));
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(0));
        t.attach(NodeId(4), NodeId(3));
        t.attach(NodeId(5), NodeId(4));
        let s = vec![
            NodeStatus::ClusterHead,
            NodeStatus::PureMember,
            NodeStatus::PureMember,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
            NodeStatus::PureMember,
        ];
        (g, t, s)
    }

    #[test]
    fn validate_reports_missing_slots() {
        let (g, t, s) = structure();
        let view = NetView::new(&g, &t, &s);
        let slots = SlotTable::default();
        let v = validate_condition2(&view, &slots, SlotMode::Strict);
        // Internal nodes 0, 3, 4 all lack l-slots; BT-internal 0, 3 lack
        // b-slots; receivers also fail.
        assert!(v.contains(&ConditionViolation::MissingSlot(NodeId(0))));
        assert!(v.iter().any(|x| matches!(x, ConditionViolation::L(_))));
        assert!(v.iter().any(|x| matches!(x, ConditionViolation::B(_))));
    }

    #[test]
    fn full_assignment_validates() {
        use crate::slots::assign::{calculate_b_slot, calculate_l_slot};
        let (g, t, s) = structure();
        let view = NetView::new(&g, &t, &s);
        let mut slots = SlotTable::default();
        for u in [NodeId(0), NodeId(3)] {
            calculate_b_slot(&view, &mut slots, u);
        }
        for u in [NodeId(0), NodeId(3), NodeId(4)] {
            calculate_l_slot(&view, &mut slots, SlotMode::Strict, u);
        }
        let v = validate_condition2(&view, &slots, SlotMode::Strict);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn flood_slots_satisfy_condition1() {
        let (g, t, s) = structure();
        let view = NetView::new(&g, &t, &s);
        let (slot, max) = assign_flood_slots(&view);
        assert!(max >= 1);
        let violations = validate_condition1(&view, &slot);
        assert!(violations.is_empty(), "{violations:?}");
        // Exactly the internal nodes carry slots.
        for u in t.nodes() {
            assert_eq!(slot[u.index()].is_some(), view.cnet_internal(u), "{u}");
        }
    }

    #[test]
    fn flood_transmitters_respect_depth_windows() {
        let (g, t, s) = structure();
        let view = NetView::new(&g, &t, &s);
        // Member 1 at depth 1: internal depth-0 neighbours = {0}; node 3 is
        // internal and adjacent but at the same depth, so excluded.
        assert_eq!(flood_transmitters(&view, NodeId(1)), vec![NodeId(0)]);
        assert_eq!(flood_transmitters(&view, NodeId(4)), vec![NodeId(3)]);
        assert!(flood_transmitters(&view, NodeId(0)).is_empty());
    }
}
