//! TDM transmission time-slots (Section 4 of the paper).
//!
//! Every *internal* node of CNet(G) carries two slots:
//!
//! * **b-time-slot** — used in phase 1 of the improved broadcast
//!   (Algorithm 2), when the message floods depth-by-depth over the
//!   backbone BT(G). Only *BT-internal* nodes (backbone nodes with at
//!   least one backbone child) transmit in this phase, and each depth gets
//!   its own window of `δ` rounds, so collisions can only come from
//!   same-depth backbone transmitters.
//! * **l-time-slot** — used in phase 2, when every internal node pushes
//!   the message to the pure-member leaves in a single window of `Δ`
//!   rounds.
//!
//! Validity is **Time-Slot Condition 2**: every receiver must have, among
//! the transmitters it can hear, at least one whose slot is *unique* in
//! that set — that transmitter's round is then guaranteed collision-free
//! at this receiver.
//!
//! [`SlotMode`] selects how the phase-2 interference set is modelled:
//! `PaperFaithful` restricts a leaf's transmitter set to internal nodes
//! one depth above it (the literal Condition 2), `Strict` extends it to
//! *all* internal G-neighbours of the leaf, which is the set that can
//! actually interfere in phase 2 because all depths share one window. See
//! DESIGN.md §4 for the discussion of this fidelity gap.

pub mod assign;
pub mod session;
pub mod validate;
pub mod view;

pub use assign::{calculate_b_slot, calculate_l_slot, condition_b_holds, condition_l_holds};
pub use view::NetView;

use dsnet_graph::NodeId;

/// Which of the two slot families an operation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Phase-1 backbone-flood slot.
    B,
    /// Phase-2 leaf-delivery slot.
    L,
}

/// Interference model for phase-2 (leaf delivery) slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotMode {
    /// Exactly the paper's Time-Slot Condition 2: a leaf's transmitter set
    /// is the internal nodes *one depth above it*. Cheaper slots, but
    /// phase 2 can suffer cross-depth collisions the condition does not
    /// rule out (measured by the robustness experiments).
    PaperFaithful,
    /// The leaf's transmitter set is *every* internal G-neighbour,
    /// regardless of depth — phase 2 becomes provably collision-free.
    /// Default, because the protocols are verified end-to-end against the
    /// radio simulator.
    #[default]
    Strict,
}

/// Per-node b-/l-slot storage. Slots are positive integers; `None` means
/// the node currently has no slot of that kind (it is not a transmitter of
/// that phase).
#[derive(Debug, Clone, Default)]
pub struct SlotTable {
    b: Vec<Option<u32>>,
    l: Vec<Option<u32>>,
}

impl SlotTable {
    /// An empty table sized for `cap` node ids.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            b: vec![None; cap],
            l: vec![None; cap],
        }
    }

    /// Grow the table to cover `cap` node ids.
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.b.len() < cap {
            self.b.resize(cap, None);
            self.l.resize(cap, None);
        }
    }

    /// The node's b-time-slot, if assigned.
    pub fn b(&self, u: NodeId) -> Option<u32> {
        self.b.get(u.index()).copied().flatten()
    }

    /// The node's l-time-slot, if assigned.
    pub fn l(&self, u: NodeId) -> Option<u32> {
        self.l.get(u.index()).copied().flatten()
    }

    /// The node's slot of the given kind, if assigned.
    pub fn get(&self, kind: SlotKind, u: NodeId) -> Option<u32> {
        match kind {
            SlotKind::B => self.b(u),
            SlotKind::L => self.l(u),
        }
    }

    /// Assign a slot (positive) of the given kind to `u`.
    pub fn set(&mut self, kind: SlotKind, u: NodeId, slot: u32) {
        assert!(slot >= 1, "slots are numbered from 1");
        self.ensure_capacity(u.index() + 1);
        match kind {
            SlotKind::B => self.b[u.index()] = Some(slot),
            SlotKind::L => self.l[u.index()] = Some(slot),
        }
    }

    /// Remove both slots of `u` (used when a node detaches or is demoted).
    pub fn clear(&mut self, u: NodeId) {
        if u.index() < self.b.len() {
            self.b[u.index()] = None;
            self.l[u.index()] = None;
        }
    }

    /// Remove only the given kind of slot from `u`.
    pub fn clear_kind(&mut self, kind: SlotKind, u: NodeId) {
        if u.index() < self.b.len() {
            match kind {
                SlotKind::B => self.b[u.index()] = None,
                SlotKind::L => self.l[u.index()] = None,
            }
        }
    }

    /// Largest assigned b-slot — the paper's `δ` (0 when none assigned).
    pub fn max_b(&self) -> u32 {
        self.b.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Largest assigned l-slot — the paper's `Δ` (0 when none assigned).
    pub fn max_l(&self) -> u32 {
        self.l.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Minimum positive integer not contained in `used` (the paper's
/// "select the minimum positive integer which is different from all
/// received time-slots").
///
/// `used` is caller-owned scratch: values may arrive unsorted and with
/// duplicates; the slice is sorted in place and otherwise left intact so
/// hot loops can `clear()` and refill one buffer instead of allocating a
/// set per call.
pub(crate) fn mex(used: &mut [u32]) -> u32 {
    used.sort_unstable();
    let mut candidate = 1u32;
    for &u in used.iter() {
        match u.cmp(&candidate) {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Equal => candidate += 1,
            std::cmp::Ordering::Greater => break,
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mex_of_empty_is_one() {
        assert_eq!(mex(&mut []), 1);
    }

    #[test]
    fn mex_skips_used_values() {
        assert_eq!(mex(&mut [1, 2, 4]), 3);
        assert_eq!(mex(&mut [2, 3]), 1);
        assert_eq!(mex(&mut [1, 2, 3]), 4);
    }

    #[test]
    fn mex_boundaries_dense_prefix_gaps_and_duplicates() {
        // Dense prefix: every value 1..=k used ⇒ k+1.
        assert_eq!(mex(&mut [1]), 2);
        assert_eq!(mex(&mut [1, 2, 3, 4, 5]), 6);
        // Gap right after 1.
        assert_eq!(mex(&mut [1, 3]), 2);
        // Unsorted input is sorted in place.
        assert_eq!(mex(&mut [4, 1, 2]), 3);
        // Duplicates count once.
        assert_eq!(mex(&mut [1, 1, 2, 2]), 3);
        assert_eq!(mex(&mut [2, 2]), 1);
        // Values far above the answer are ignored.
        assert_eq!(mex(&mut [1, 1000]), 2);
    }

    #[test]
    fn slot_table_roundtrip() {
        let mut t = SlotTable::default();
        t.set(SlotKind::B, NodeId(5), 3);
        t.set(SlotKind::L, NodeId(2), 7);
        assert_eq!(t.b(NodeId(5)), Some(3));
        assert_eq!(t.l(NodeId(5)), None);
        assert_eq!(t.l(NodeId(2)), Some(7));
        assert_eq!(t.max_b(), 3);
        assert_eq!(t.max_l(), 7);
        t.clear(NodeId(5));
        assert_eq!(t.b(NodeId(5)), None);
        assert_eq!(t.max_b(), 0);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn zero_slot_rejected() {
        let mut t = SlotTable::default();
        t.set(SlotKind::B, NodeId(0), 0);
    }

    #[test]
    fn clear_kind_is_selective() {
        let mut t = SlotTable::default();
        t.set(SlotKind::B, NodeId(1), 2);
        t.set(SlotKind::L, NodeId(1), 4);
        t.clear_kind(SlotKind::B, NodeId(1));
        assert_eq!(t.b(NodeId(1)), None);
        assert_eq!(t.l(NodeId(1)), Some(4));
    }

    #[test]
    fn out_of_range_reads_are_none() {
        let t = SlotTable::default();
        assert_eq!(t.b(NodeId(99)), None);
        assert_eq!(t.get(SlotKind::L, NodeId(99)), None);
    }
}
