//! Read-only structural view used by the slot machinery and validators.
//!
//! Bundles the three parallel structures (connectivity graph, CNet tree,
//! statuses) and derives the transmitter/receiver sets of Section 4:
//! `P(v)` — who receiver `v` can hear — and `C(y)` — which receivers
//! transmitter `y` can disturb. All set computations are restricted to
//! nodes currently *attached* to the tree: during a node-move-out, detached
//! nodes exist in `G` but take no part in the TDM schedule.

use crate::slots::SlotMode;
use crate::status::NodeStatus;
use dsnet_graph::{Graph, NodeId, RootedTree};

/// Borrowed view of the cluster structure.
#[derive(Clone, Copy)]
pub struct NetView<'a> {
    /// The connectivity graph `G`.
    pub graph: &'a Graph,
    /// The CNet tree.
    pub tree: &'a RootedTree,
    /// Per-node statuses, indexed by id.
    pub status: &'a [NodeStatus],
}

impl<'a> NetView<'a> {
    /// Bundle the three structures into a view.
    pub fn new(graph: &'a Graph, tree: &'a RootedTree, status: &'a [NodeStatus]) -> Self {
        Self {
            graph,
            tree,
            status,
        }
    }

    /// Node is attached to the cluster structure.
    pub fn attached(&self, u: NodeId) -> bool {
        self.tree.contains(u)
    }

    /// Status of an attached node.
    pub fn status(&self, u: NodeId) -> NodeStatus {
        debug_assert!(self.attached(u));
        self.status[u.index()]
    }

    /// Backbone membership (head or gateway).
    pub fn in_backbone(&self, u: NodeId) -> bool {
        self.attached(u) && self.status(u).in_backbone()
    }

    /// BT-internal: a backbone node with at least one backbone child —
    /// the transmitters of the phase-1 backbone flood.
    pub fn bt_internal(&self, u: NodeId) -> bool {
        self.in_backbone(u) && self.tree.children(u).any(|c| self.status(c).in_backbone())
    }

    /// CNet-internal: any node with children — the transmitters of the
    /// phase-2 leaf delivery.
    pub fn cnet_internal(&self, u: NodeId) -> bool {
        self.attached(u) && self.tree.is_internal(u)
    }

    /// A pure-member leaf — the receivers of phase 2.
    pub fn is_member_leaf(&self, u: NodeId) -> bool {
        self.attached(u) && self.status(u) == NodeStatus::PureMember
    }

    /// Attached G-neighbours of `u`.
    pub fn attached_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(u)
            .iter()
            .copied()
            .filter(move |&v| self.attached(v))
    }

    /// `P_b(v)`: phase-1 transmitters audible at backbone receiver `v` —
    /// BT-internal G-neighbours exactly one depth above `v`.
    pub fn p_b(&self, v: NodeId) -> Vec<NodeId> {
        self.p_b_iter(v).collect()
    }

    /// Iterator form of [`NetView::p_b`] — no allocation, for the hot
    /// maintenance paths. (A receiver at depth 0 has no depth `-1`
    /// neighbours, so the iterator is naturally empty at the root.)
    pub fn p_b_iter(self, v: NodeId) -> impl Iterator<Item = NodeId> + Clone + 'a {
        debug_assert!(self.in_backbone(v));
        let depth = self.tree.depth(v);
        self.graph.neighbors(v).iter().copied().filter(move |&y| {
            self.attached(y) && self.bt_internal(y) && self.tree.depth(y) + 1 == depth
        })
    }

    /// `C_b(y)`: backbone receivers transmitter `y` can disturb in
    /// phase 1 — backbone G-neighbours exactly one depth below `y`.
    pub fn c_b(&self, y: NodeId) -> Vec<NodeId> {
        self.c_b_iter(y).collect()
    }

    /// Iterator form of [`NetView::c_b`].
    pub fn c_b_iter(self, y: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        let depth = self.tree.depth(y);
        self.graph.neighbors(y).iter().copied().filter(move |&v| {
            self.attached(v) && self.in_backbone(v) && self.tree.depth(v) == depth + 1
        })
    }

    /// `P_l(v)`: phase-2 transmitters audible at member leaf `v`.
    /// `PaperFaithful`: internal G-neighbours one depth above.
    /// `Strict`: every internal G-neighbour (any depth) — all of them
    /// really do transmit in the shared phase-2 window.
    pub fn p_l(&self, v: NodeId, mode: SlotMode) -> Vec<NodeId> {
        self.p_l_iter(v, mode).collect()
    }

    /// Iterator form of [`NetView::p_l`].
    pub fn p_l_iter(self, v: NodeId, mode: SlotMode) -> impl Iterator<Item = NodeId> + Clone + 'a {
        debug_assert!(self.is_member_leaf(v));
        let depth = self.tree.depth(v);
        self.graph.neighbors(v).iter().copied().filter(move |&y| {
            self.attached(y)
                && self.cnet_internal(y)
                && match mode {
                    SlotMode::PaperFaithful => self.tree.depth(y) + 1 == depth,
                    SlotMode::Strict => true,
                }
        })
    }

    /// `C_l(y)`: member leaves transmitter `y` can disturb in phase 2.
    pub fn c_l(&self, y: NodeId, mode: SlotMode) -> Vec<NodeId> {
        self.c_l_iter(y, mode).collect()
    }

    /// Iterator form of [`NetView::c_l`].
    pub fn c_l_iter(self, y: NodeId, mode: SlotMode) -> impl Iterator<Item = NodeId> + 'a {
        let depth = self.tree.depth(y);
        self.graph.neighbors(y).iter().copied().filter(move |&v| {
            self.attached(v)
                && self.is_member_leaf(v)
                && match mode {
                    SlotMode::PaperFaithful => self.tree.depth(v) == depth + 1,
                    SlotMode::Strict => true,
                }
        })
    }

    /// All attached backbone nodes.
    pub fn backbone_nodes(&self) -> Vec<NodeId> {
        self.tree
            .nodes()
            .filter(|&u| self.status(u).in_backbone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built structure:
    /// graph: 0-1, 1-2, 0-3, 2-3 (extra G edge), 1-4
    /// tree:  0 (head) -> 1 (gateway) -> 2 (head); 0 -> 3 (member); 2 -> 4?
    /// Keep simple: 0 root head; 1 gateway child of 0; 2 head child of 1;
    /// 3 member child of 0; G also has 2-3 and 1-3.
    fn build() -> (Graph, RootedTree, Vec<NodeStatus>) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(1), NodeId(3));
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(1));
        t.attach(NodeId(3), NodeId(0));
        let status = vec![
            NodeStatus::ClusterHead,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
            NodeStatus::PureMember,
        ];
        (g, t, status)
    }

    #[test]
    fn bt_internal_requires_backbone_child() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        assert!(v.bt_internal(NodeId(0))); // root has gateway child 1
        assert!(v.bt_internal(NodeId(1))); // gateway has head child 2
        assert!(!v.bt_internal(NodeId(2))); // head 2 is a BT leaf
        assert!(!v.bt_internal(NodeId(3))); // member
    }

    #[test]
    fn p_b_and_c_b_are_duals() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        // Receiver 1 at depth 1: hears BT-internal neighbours at depth 0 = {0}.
        assert_eq!(v.p_b(NodeId(1)), vec![NodeId(0)]);
        // Receiver 2 at depth 2: hears {1}.
        assert_eq!(v.p_b(NodeId(2)), vec![NodeId(1)]);
        // Transmitter 0 disturbs backbone receivers at depth 1 = {1}.
        assert_eq!(v.c_b(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(v.c_b(NodeId(1)), vec![NodeId(2)]);
    }

    #[test]
    fn p_l_mode_difference() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        // Member 3 at depth 1. Internal G-neighbours: 0 (depth 0), 1 (depth 1),
        // 2? node 2 is a leaf in the tree → not internal.
        assert_eq!(v.p_l(NodeId(3), SlotMode::PaperFaithful), vec![NodeId(0)]);
        assert_eq!(
            v.p_l(NodeId(3), SlotMode::Strict),
            vec![NodeId(0), NodeId(1)]
        );
    }

    #[test]
    fn c_l_mode_difference() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        assert_eq!(v.c_l(NodeId(0), SlotMode::PaperFaithful), vec![NodeId(3)]);
        // Node 1 is internal and G-adjacent to member 3 (same depth):
        assert_eq!(
            v.c_l(NodeId(1), SlotMode::PaperFaithful),
            Vec::<NodeId>::new()
        );
        assert_eq!(v.c_l(NodeId(1), SlotMode::Strict), vec![NodeId(3)]);
    }

    #[test]
    fn root_p_b_is_empty() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        assert!(v.p_b(NodeId(0)).is_empty());
    }

    #[test]
    fn backbone_nodes_excludes_members() {
        let (g, t, s) = build();
        let v = NetView::new(&g, &t, &s);
        assert_eq!(v.backbone_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn detached_nodes_are_invisible() {
        let (g, mut t, s) = build();
        t.detach_subtree(NodeId(1)); // removes 1 and 2
        let v = NetView::new(&g, &t, &s);
        assert!(!v.attached(NodeId(1)));
        assert!(!v.bt_internal(NodeId(0))); // lost its only backbone child
        assert_eq!(v.backbone_nodes(), vec![NodeId(0)]);
        // Member 3 no longer hears node 1 in strict mode.
        assert_eq!(v.p_l(NodeId(3), SlotMode::Strict), vec![NodeId(0)]);
    }
}
