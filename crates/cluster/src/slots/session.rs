//! Session-specific slot assignment for pruned (multicast) sessions.
//!
//! The paper's multicast reuses the broadcast time-slots and simply mutes
//! the transmitters whose subtree contains no group member. Muting
//! transmitters can *break* Time-Slot Condition 2: a receiver whose only
//! uniquely-slotted neighbour went quiet may now face two same-slot
//! relays and lose the round — a rare but real delivery gap the test
//! suite demonstrates.
//!
//! This module provides the repair the paper's machinery suggests but
//! never spells out: re-run the greedy slot assignment **restricted to
//! the session's participants**. The session initiator (the root owns all
//! the needed knowledge) computes b-/l-slots such that every listening
//! participant has a uniquely-slotted *participating* transmitter, at the
//! same `d(d+1)/2+1` / `D(D+1)/2+1` worst case. Because sessions involve
//! fewer transmitters, the session `δ`/`Δ` are usually *smaller* than the
//! broadcast ones, so reliable multicast is also faster.

use crate::slots::view::NetView;
use crate::slots::{mex, SlotKind, SlotMode, SlotTable};
use dsnet_graph::NodeId;

/// Assign session slots. `tx(u)` — node forwards in this session;
/// `rx(u)` — node must receive. Returns a fresh slot table populated only
/// for participating transmitters.
pub fn assign_session_slots(
    view: &NetView<'_>,
    mode: SlotMode,
    tx: &dyn Fn(NodeId) -> bool,
    rx: &dyn Fn(NodeId) -> bool,
) -> SlotTable {
    let cap = view.graph.capacity();
    let mut slots = SlotTable::with_capacity(cap);

    // Phase-1 (backbone) slots: BT-internal participants, by (depth, id).
    let mut b_transmitters: Vec<NodeId> = view
        .tree
        .nodes()
        .filter(|&u| view.bt_internal(u) && tx(u))
        .collect();
    b_transmitters.sort_by_key(|&u| (view.tree.depth(u), u));
    for &y in &b_transmitters {
        let receivers: Vec<NodeId> = view
            .c_b(y)
            .into_iter()
            .filter(|&v| rx(v) || tx(v))
            .collect();
        let slot = pick_slot(&receivers, &slots, SlotKind::B, y, |v| {
            view.p_b(v).into_iter().filter(|&t| tx(t)).collect()
        });
        slots.set(SlotKind::B, y, slot);
    }

    // Phase-2 (leaf) slots: CNet-internal participants.
    let mut l_transmitters: Vec<NodeId> = view
        .tree
        .nodes()
        .filter(|&u| view.cnet_internal(u) && tx(u))
        .collect();
    l_transmitters.sort_by_key(|&u| (view.tree.depth(u), u));
    for &y in &l_transmitters {
        let receivers: Vec<NodeId> = view.c_l(y, mode).into_iter().filter(|&v| rx(v)).collect();
        let slot = pick_slot(&receivers, &slots, SlotKind::L, y, |v| {
            view.p_l(v, mode).into_iter().filter(|&t| tx(t)).collect()
        });
        slots.set(SlotKind::L, y, slot);
    }

    slots
}

/// Procedure-1 core restricted to the session: `y` avoids every slot a
/// not-yet-doubly-protected receiver can hear.
fn pick_slot(
    receivers: &[NodeId],
    slots: &SlotTable,
    kind: SlotKind,
    y: NodeId,
    transmitters_of: impl Fn(NodeId) -> Vec<NodeId>,
) -> u32 {
    let mut forbidden: Vec<u32> = Vec::new();
    let mut others: Vec<u32> = Vec::new();
    for &v in receivers {
        others.clear();
        others.extend(
            transmitters_of(v)
                .into_iter()
                .filter(|&t| t != y)
                .filter_map(|t| slots.get(kind, t)),
        );
        others.sort_unstable();
        if crate::slots::assign::unique_run_count(&others) >= 2 {
            continue;
        }
        forbidden.extend_from_slice(&others);
    }
    mex(&mut forbidden)
}

/// Session-level Time-Slot Condition 2: every rx participant has a
/// uniquely-slotted participating transmitter in range. Returns the
/// violating receivers (empty ⇒ the session schedule is sound).
pub fn validate_session(
    view: &NetView<'_>,
    slots: &SlotTable,
    mode: SlotMode,
    tx: &dyn Fn(NodeId) -> bool,
    rx: &dyn Fn(NodeId) -> bool,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for v in view.tree.nodes() {
        // Backbone receivers (phase 1): anything that must hold the message
        // and is not the root.
        if view.in_backbone(v) && view.tree.depth(v) >= 1 && (rx(v) || tx(v)) {
            let p: Vec<Option<u32>> = view
                .p_b(v)
                .into_iter()
                .filter(|&t| tx(t))
                .map(|t| slots.b(t))
                .collect();
            if !has_unique(&p) {
                out.push(v);
            }
        }
        // Member receivers (phase 2).
        if view.is_member_leaf(v) && rx(v) {
            let p: Vec<Option<u32>> = view
                .p_l(v, mode)
                .into_iter()
                .filter(|&t| tx(t))
                .map(|t| slots.l(t))
                .collect();
            if !has_unique(&p) {
                out.push(v);
            }
        }
    }
    out
}

fn has_unique(slots: &[Option<u32>]) -> bool {
    let mut counts: std::collections::BTreeMap<u32, u32> = Default::default();
    for s in slots.iter().flatten() {
        *counts.entry(*s).or_insert(0) += 1;
    }
    counts.values().any(|&c| c == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ClusterNet;
    use dsnet_graph::NodeId;

    fn grow(picks: &[(u32, u32, u32)]) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for (i, &(a, b, c)) in picks.iter().enumerate() {
            let existing = (i + 1) as u32;
            let mut nbrs = vec![
                NodeId(a % existing),
                NodeId(b % existing),
                NodeId(c % existing),
            ];
            nbrs.sort_unstable();
            nbrs.dedup();
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn full_session_equals_broadcast_validity() {
        let net = grow(&[
            (0, 0, 0),
            (1, 0, 1),
            (2, 1, 0),
            (3, 2, 1),
            (4, 3, 2),
            (5, 1, 2),
        ]);
        let view = net.view();
        let all = |_u: NodeId| true;
        let slots = assign_session_slots(&view, net.mode(), &all, &all);
        let violations = validate_session(&view, &slots, net.mode(), &all, &all);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pruned_session_is_sound_for_participants() {
        let net = grow(&[
            (0, 0, 0),
            (1, 0, 1),
            (2, 1, 0),
            (3, 2, 1),
            (4, 3, 2),
            (5, 1, 2),
            (6, 4, 3),
            (7, 5, 2),
            (8, 6, 1),
        ]);
        let view = net.view();
        // Participants: even ids receive, ancestors of even ids forward.
        let rx = |u: NodeId| u.0.is_multiple_of(2);
        let tree = net.tree();
        let tx = |u: NodeId| {
            tree.subtree_nodes(u)
                .iter()
                .any(|&d| d != u && d.0.is_multiple_of(2))
        };
        let slots = assign_session_slots(&view, net.mode(), &tx, &rx);
        let violations = validate_session(&view, &slots, net.mode(), &tx, &rx);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn session_deltas_never_exceed_broadcast_deltas_plus_bound() {
        let net = grow(&[(0, 0, 0), (1, 1, 0), (2, 0, 1), (3, 3, 2), (4, 2, 3)]);
        let view = net.view();
        let all = |_u: NodeId| true;
        let slots = assign_session_slots(&view, net.mode(), &all, &all);
        // The greedy session assignment obeys the same Lemma-3 bound.
        let g = net.graph();
        let big_d = dsnet_graph::degree::max_degree(g) as u32;
        assert!(slots.max_l() <= big_d * (big_d + 1) / 2 + 1);
    }
}
