//! Procedure 1 (CalculateB/LTimeSlot) and the Time-Slot Condition checks.
//!
//! The paper's incremental slot calculation for a node `y` works in three
//! distributed steps (Procedure 1):
//!
//! 1. `y` asks each receiver `v ∈ C(y)` for input (1 round + |C(y)| reply
//!    rounds — Lemma 2(1));
//! 2. `v` replies with the distinct slot values of `P(v) \ {y}` *unless*
//!    `P(v) \ {y}` already contains two values that are each unique — in
//!    that case any choice `y` makes leaves at least one of them unique,
//!    so `v` is unconditionally safe and stays silent;
//! 3. `y` adopts the minimum positive integer different from everything
//!    reported.
//!
//! The result: after the update, every receiver in `C(y)` still has a
//! transmitter with a unique slot (Lemma 2's correctness argument), and
//! `y`'s slot respects the `d(d+1)/2 + 1` / `D(D+1)/2 + 1` bounds of
//! Lemma 2(3).

use crate::costs::SlotCalcCost;
use crate::slots::view::NetView;
use crate::slots::{mex, SlotKind, SlotMode, SlotTable};
use dsnet_graph::NodeId;

/// Number of slot values that occur exactly once in the *sorted* scratch
/// (runs of length 1).
pub(crate) fn unique_run_count(sorted: &[u32]) -> usize {
    let mut unique = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i == 1 {
            unique += 1;
        }
        i = j;
    }
    unique
}

/// Core of Procedure 1, shared by both slot kinds: collect the forbidden
/// values over `receivers`, where each receiver `v` contributes the slots
/// of `transmitters(v) \ {y}` unless two of those are already unique.
fn procedure1<I: Iterator<Item = NodeId>>(
    y: NodeId,
    receivers: impl Iterator<Item = NodeId>,
    slots: &SlotTable,
    kind: SlotKind,
    transmitters_of: impl Fn(NodeId) -> I,
) -> (u32, SlotCalcCost) {
    let mut forbidden: Vec<u32> = Vec::new();
    let mut others: Vec<u32> = Vec::new();
    let mut consulted = 0usize;
    for v in receivers {
        consulted += 1;
        others.clear();
        others.extend(
            transmitters_of(v)
                .filter(|&t| t != y)
                .filter_map(|t| slots.get(kind, t)),
        );
        others.sort_unstable();
        if unique_run_count(&others) >= 2 {
            // `v` is safe regardless of y's choice: y can collide with at
            // most one of the two unique transmitters.
            continue;
        }
        // Duplicates are fine: `mex` dedups while scanning.
        forbidden.extend_from_slice(&others);
    }
    (mex(&mut forbidden), SlotCalcCost::new(consulted))
}

/// Recompute `y`'s b-time-slot (Procedure CalculateBTimeSlot).
pub fn calculate_b_slot(view: &NetView<'_>, slots: &mut SlotTable, y: NodeId) -> SlotCalcCost {
    let (slot, cost) = procedure1(y, view.c_b_iter(y), slots, SlotKind::B, |v| {
        view.p_b_iter(v)
    });
    slots.set(SlotKind::B, y, slot);
    cost
}

/// Recompute `y`'s l-time-slot (Procedure CalculateLTimeSlot).
pub fn calculate_l_slot(
    view: &NetView<'_>,
    slots: &mut SlotTable,
    mode: SlotMode,
    y: NodeId,
) -> SlotCalcCost {
    let (slot, cost) = procedure1(y, view.c_l_iter(y, mode), slots, SlotKind::L, |v| {
        view.p_l_iter(v, mode)
    });
    slots.set(SlotKind::L, y, slot);
    cost
}

/// Whether some slot value occurs exactly once among the transmitters
/// yielded by `iter`. Transmitters without a slot never transmit in this
/// phase; they cannot rescue the receiver but also cannot collide.
///
/// Returns `(any_transmitter, has_unique)`. The transmitter sets audible
/// at one receiver are tiny (bounded by the local degree), so the
/// quadratic pair scan beats collecting and sorting a scratch vector —
/// the condition checks run once per affected receiver per
/// reconfiguration in the mobility repair loop.
fn unique_slot_scan<I>(iter: I, slots: &SlotTable, kind: SlotKind) -> (bool, bool)
where
    I: Iterator<Item = NodeId> + Clone,
{
    let mut any = false;
    for t in iter.clone() {
        any = true;
        let Some(s) = slots.get(kind, t) else {
            continue;
        };
        let duplicated = iter
            .clone()
            .any(|t2| t2 != t && slots.get(kind, t2) == Some(s));
        if !duplicated {
            return (true, true);
        }
    }
    (any, false)
}

/// Time-Slot Condition 2, b-side, at backbone receiver `v` (depth ≥ 1):
/// some phase-1 transmitter audible at `v` has a unique b-slot.
pub fn condition_b_holds(view: &NetView<'_>, slots: &SlotTable, v: NodeId) -> bool {
    let (any, unique) = unique_slot_scan(view.p_b_iter(v), slots, SlotKind::B);
    if !any {
        // No audible phase-1 transmitter: only legal for the root.
        return view.tree.depth(v) == 0;
    }
    unique
}

/// Time-Slot Condition 2, l-side, at member leaf `v`.
pub fn condition_l_holds(view: &NetView<'_>, slots: &SlotTable, mode: SlotMode, v: NodeId) -> bool {
    let (any, unique) = unique_slot_scan(view.p_l_iter(v, mode), slots, SlotKind::L);
    any && unique
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::NodeStatus;
    use dsnet_graph::{Graph, RootedTree};

    /// Backbone chain 0(head)-1(gw)-2(head)-3(gw)-4(head) where the extra G
    /// edge 1-4 makes node 4 hear both 1 and 3 in phase 1... except 1 is at
    /// depth 1 and 4 at depth 4, so only depth-3 transmitters matter for 4.
    fn chain() -> (Graph, RootedTree, Vec<NodeStatus>) {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g.add_edge(NodeId(1), NodeId(4));
        let mut t = RootedTree::new(NodeId(0));
        for i in 1..5u32 {
            t.attach(NodeId(i), NodeId(i - 1));
        }
        let status = vec![
            NodeStatus::ClusterHead,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
        ];
        (g, t, status)
    }

    #[test]
    fn single_transmitter_receivers_are_trivially_safe() {
        let (g, t, s) = chain();
        let view = NetView::new(&g, &t, &s);
        let mut slots = SlotTable::default();
        let mut total = 0;
        // Assign b-slots to the BT-internal nodes 0..=3 in depth order.
        for i in 0..4u32 {
            total += calculate_b_slot(&view, &mut slots, NodeId(i)).rounds;
        }
        assert!(total >= 4);
        // Each receiver hears exactly one same-depth transmitter → safe.
        for i in 1..5u32 {
            assert!(condition_b_holds(&view, &slots, NodeId(i)), "node {i}");
        }
        // With no conflicts everyone gets slot 1.
        for i in 0..4u32 {
            assert_eq!(slots.b(NodeId(i)), Some(1));
        }
    }

    #[test]
    fn conflicting_transmitters_get_distinct_slots() {
        // Two heads 1 and 2 both children of root 0 (a degenerate structure
        // used only to exercise the procedure): both are BT-internal,
        // receiver 3 (gateway, depth 2) hears both.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(1));
        let s = vec![
            NodeStatus::ClusterHead,
            NodeStatus::Gateway,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
        ];
        let view = NetView::new(&g, &t, &s);
        let mut slots = SlotTable::default();
        calculate_b_slot(&view, &mut slots, NodeId(1));
        calculate_b_slot(&view, &mut slots, NodeId(2));
        // Node 2's procedure sees node 1's slot through shared receiver 3
        // and avoids it.
        assert_ne!(slots.b(NodeId(1)), slots.b(NodeId(2)));
        assert!(condition_b_holds(&view, &slots, NodeId(3)));
    }

    #[test]
    fn procedure_skips_receivers_with_two_uniques() {
        // Receiver v hears y plus transmitters with slots {1, 2} (both
        // unique): y may pick anything, including 1, and v stays safe.
        // Build: root 0, gateways 1,2,3 children of 0 — receiver 4 (head,
        // depth 2) hears 1, 2 and 3.
        let mut g = Graph::with_nodes(5);
        for i in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(i));
            g.add_edge(NodeId(i), NodeId(4));
        }
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(0));
        t.attach(NodeId(4), NodeId(1));
        let s = vec![
            NodeStatus::ClusterHead,
            NodeStatus::Gateway,
            NodeStatus::Gateway,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
        ];
        let mut slots = SlotTable::default();
        // Hand-assign unique slots 1 and 2 to transmitters 2 and 3. Only
        // node 1 is BT-internal (it has head child 4)... adjust: give 2 and
        // 3 the child 4? No — fake it by setting slots directly; p_b(4)
        // only contains BT-internal nodes, so attach heads under 2 and 3.
        let mut t2 = t.clone();
        let mut g2 = g.clone();
        let n5 = g2.add_node_with_neighbors(&[NodeId(2)]);
        let n6 = g2.add_node_with_neighbors(&[NodeId(3)]);
        t2.attach(n5, NodeId(2));
        t2.attach(n6, NodeId(3));
        let mut s2 = s.clone();
        s2.push(NodeStatus::ClusterHead);
        s2.push(NodeStatus::ClusterHead);
        let view2 = NetView::new(&g2, &t2, &s2);
        slots.set(SlotKind::B, NodeId(2), 1);
        slots.set(SlotKind::B, NodeId(3), 2);
        let cost = calculate_b_slot(&view2, &mut slots, NodeId(1));
        // Receiver 4 had two uniques → stays silent → y picks mex(∅) = 1.
        assert_eq!(slots.b(NodeId(1)), Some(1));
        assert!(condition_b_holds(&view2, &slots, NodeId(4)));
        assert_eq!(cost.consulted, 1); // C_b(1) = {4}
    }

    #[test]
    fn l_slot_strict_mode_consults_cross_depth_leaves() {
        // Root 0 (head) with member 1; gateway 2 under 0; head 3 under 2
        // with member 4; extra G edge 3-1 (member 1 at depth 1 hears head 3
        // at depth 2 — only in strict mode).
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(3), NodeId(1));
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(2));
        t.attach(NodeId(4), NodeId(3));
        let s = vec![
            NodeStatus::ClusterHead,
            NodeStatus::PureMember,
            NodeStatus::Gateway,
            NodeStatus::ClusterHead,
            NodeStatus::PureMember,
        ];
        let view = NetView::new(&g, &t, &s);

        let mut strict = SlotTable::default();
        calculate_l_slot(&view, &mut strict, SlotMode::Strict, NodeId(0));
        let c3 = view.c_l(NodeId(3), SlotMode::Strict);
        assert!(c3.contains(&NodeId(1)) && c3.contains(&NodeId(4)));
        calculate_l_slot(&view, &mut strict, SlotMode::Strict, NodeId(3));
        // Member 1 hears 0 (depth 0) and 3 (depth 2): strict assignment
        // keeps a unique slot available.
        assert!(condition_l_holds(
            &view,
            &strict,
            SlotMode::Strict,
            NodeId(1)
        ));
        assert!(condition_l_holds(
            &view,
            &strict,
            SlotMode::Strict,
            NodeId(4)
        ));

        // Paper mode ignores the cross-depth neighbour entirely.
        let paper_c3 = view.c_l(NodeId(3), SlotMode::PaperFaithful);
        assert_eq!(paper_c3, vec![NodeId(4)]);
    }
}
