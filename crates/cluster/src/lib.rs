#![warn(missing_docs)]

//! The paper's reconfigurable cluster-based network architecture.
//!
//! This crate implements Sections 2, 4 and 5 of the paper:
//!
//! * [`ClusterNet`] — the cluster-net **CNet(G)** of Definition 1: a rooted
//!   spanning tree over the connectivity graph in which every node is a
//!   *cluster-head*, a *gateway* or a *pure-member*, together with the
//!   backbone tree **BT(G)** (Definition 2) induced by heads and gateways.
//! * `node-move-in` / `node-move-out` (Section 5) — the two topological
//!   management operations that keep the structure self-constructing and
//!   self-reconfiguring under churn, with round-cost accounting matching
//!   Theorems 2 and 3.
//! * [`slots`] — the incremental TDM time-slot machinery of Section 4:
//!   every internal node carries a *b-time-slot* (backbone flooding phase)
//!   and an *l-time-slot* (leaf delivery phase), maintained by Algorithm 3
//!   and Procedure 1 so that Time-Slot Condition 2 always holds, with the
//!   paper's `d(d+1)/2+1` / `D(D+1)/2+1` bounds.
//! * [`McNet`] — the multicast overlay **MCNet(G)** of Section 3.4:
//!   per-node group-lists and relay-lists maintained under churn.
//! * [`repair`] — failure detection-and-repair: crashed (not cooperating)
//!   nodes are detected by slot silence within a bounded number of TDM
//!   frames and evicted with the move-out machinery, tolerating the
//!   disconnecting crashes the paper's operations refuse.
//! * [`invariants`] — executable checkers for Property 1 and the
//!   structural invariants of Definition 1, used heavily by the test
//!   suite.

pub mod costs;
pub mod invariants;
pub mod mcnet;
pub mod move_out;
pub mod net;
pub mod repair;
pub mod slots;
pub mod status;

pub use costs::{MoveInCost, MoveOutCost, SlotCalcCost};
pub use mcnet::{GroupId, McNet};
pub use move_out::{MoveOutError, MoveOutReport, RootMoveOutReport};
pub use net::{ClusterNet, MoveInError, MoveInReport, ParentRule};
pub use repair::{RepairConfig, RepairError, RepairReport};
pub use slots::{SlotKind, SlotMode, SlotTable};
pub use status::NodeStatus;
