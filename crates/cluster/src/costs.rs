//! Round-cost accounting for the reconfiguration operations.
//!
//! The paper's maintenance algorithms are distributed; this reproduction
//! executes them as centralized structure updates but *accounts* the rounds
//! each distributed step would take, using the paper's own cost model
//! (Lemma 2, Lemma 3, Theorems 2 and 3), so the reconfiguration experiments
//! can compare measured costs against the stated bounds.

/// Cost of one invocation of Procedure 1 (CalculateB/LTimeSlot): one round
/// for the request plus one per queried child in `C(y)` (Lemma 2(1)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCalcCost {
    /// Rounds: `1 + |C(y)|`.
    pub rounds: u64,
    /// How many receivers were consulted.
    pub consulted: u64,
}

impl SlotCalcCost {
    /// Cost of a calculation that consulted `consulted` receivers.
    pub fn new(consulted: usize) -> Self {
        Self {
            rounds: 1 + consulted as u64,
            consulted: consulted as u64,
        }
    }
}

/// Cost breakdown of a node-move-in (Theorem 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveInCost {
    /// Neighbour-discovery rounds: `O(d_new)` expected in \[19\]; we account
    /// the deterministic `d_new + 1` round handshake.
    pub discovery: u64,
    /// Rounds spent recalculating b-/l-time-slots (Algorithm 3, ≤ 2d+D).
    pub slot_update: u64,
    /// Rounds propagating the largest updated b-slot and the new height to
    /// the root (2h in the paper).
    pub propagation: u64,
}

impl MoveInCost {
    /// Total accounted rounds of this move-in.
    pub fn total(&self) -> u64 {
        self.discovery + self.slot_update + self.propagation
    }
}

/// Cost breakdown of a node-move-out (Theorem 3: `O(h + |T|·D²)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveOutCost {
    /// Step 0(i): height notification to the root (≤ h rounds).
    pub height_notify: u64,
    /// Step 0(ii): the Euler tour over `T` with per-node slot repairs.
    pub detach_repair: u64,
    /// Steps 1–2: re-inserting the `|T| − 1` stranded nodes via move-in.
    pub reinsert: u64,
    /// Step 3: reporting the largest revised b-slot back to the root.
    pub final_report: u64,
    /// Number of nodes that had to be re-homed.
    pub moved_nodes: u64,
}

impl MoveOutCost {
    /// Total accounted rounds of this move-out.
    pub fn total(&self) -> u64 {
        self.height_notify + self.detach_repair + self.reinsert + self.final_report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_calc_cost_formula() {
        let c = SlotCalcCost::new(5);
        assert_eq!(c.rounds, 6);
        assert_eq!(c.consulted, 5);
        assert_eq!(SlotCalcCost::new(0).rounds, 1);
    }

    #[test]
    fn move_in_total_sums_parts() {
        let c = MoveInCost {
            discovery: 3,
            slot_update: 7,
            propagation: 4,
        };
        assert_eq!(c.total(), 14);
    }

    #[test]
    fn move_out_total_sums_parts() {
        let c = MoveOutCost {
            height_notify: 2,
            detach_repair: 5,
            reinsert: 9,
            final_report: 2,
            moved_nodes: 3,
        };
        assert_eq!(c.total(), 18);
    }
}
