//! Failure detection-and-repair: the self-healing layer over CNet(G).
//!
//! The paper's maintenance operations assume a *cooperative* departure:
//! `node-move-out` is initiated by the leaving node itself. A crashed
//! node announces nothing — its neighbours must first *notice* the
//! silence, then run the eviction on its behalf. This module adds that
//! missing half:
//!
//! * **Detection** — every attached node transmits in its own slot at
//!   least once per TDM frame of `δ + Δ` rounds (BT-internal nodes in
//!   their b-slot, CNet-internal nodes in their l-slot, leaves in the
//!   per-frame report sub-slot of their parent's window). A neighbour
//!   that stays silent for [`RepairConfig::detection_frames`] consecutive
//!   frames is declared dead, so detection costs at most
//!   `detection_frames · (δ + Δ)` rounds — a bound, not an expectation,
//!   because the schedule is TDM, not contention-based.
//! * **Eviction + re-attachment** — the surviving neighbours replay the
//!   `node-move-out` machinery *about* the dead node: its stranded
//!   subtree is detached, Time-Slot Condition 2 is re-established at
//!   every receiver that lost a transmitter, and the orphans re-attach
//!   via `node-move-in` with incremental slot reassignment. Unlike
//!   [`ClusterNet::move_out`], repair must tolerate a crash that
//!   *disconnects* `G`: survivors that can no longer reach the sink are
//!   reported as [`RepairReport::lost`] and dropped from the structure
//!   (physically they may be alive, but no protocol can serve them).
//! * **Root failure** — the one case the paper defers entirely. The
//!   survivors of the sink's component rebuild from the lowest-id node,
//!   an O(n) re-initialisation mirroring [`ClusterNet::move_out_root`].
//!
//! Everything is deterministic, and [`crate::invariants::check_core`]
//! holds after every repair — that is what the tests below pin down.

use crate::costs::MoveOutCost;
use crate::mcnet::McNet;
use crate::net::ClusterNet;
use dsnet_graph::{components, traversal, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Tuning of the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// Consecutive silent TDM frames before neighbours declare a node
    /// dead. One frame risks false positives from a single lost packet;
    /// the default of 2 trades one extra frame of latency for immunity to
    /// any single-frame loss.
    pub detection_frames: u64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            detection_frames: 2,
        }
    }
}

/// Errors from [`ClusterNet::repair_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// The reported node is not part of the structure.
    NotAttached(NodeId),
    /// The failed node was the only node; nothing is left to repair.
    LastNode,
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::NotAttached(n) => write!(f, "{n} is not attached to the structure"),
            RepairError::LastNode => write!(f, "the failed node was the last node"),
        }
    }
}

impl std::error::Error for RepairError {}

/// What a detection-and-repair cycle did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The crashed node that was evicted.
    pub failed: NodeId,
    /// Worst-case rounds until the neighbours declared it dead:
    /// `detection_frames · (δ + Δ)` at the pre-failure slot extents.
    pub detection_rounds: u64,
    /// Nodes stranded by the crash (the failed node's subtree, minus it).
    pub orphaned: usize,
    /// Orphans successfully re-attached, in re-homing order.
    pub rehomed: Vec<NodeId>,
    /// Survivors on the far side of a cut vertex: alive but unreachable
    /// from the sink, hence dropped from the structure.
    pub lost: Vec<NodeId>,
    /// Surviving attached nodes whose b- or l-slot changed — the slot
    /// churn the repair inflicted on the TDM schedule.
    pub slot_churn: usize,
    /// Accounted eviction rounds, in `node-move-out` terms (Theorem 3).
    pub cost: MoveOutCost,
}

impl RepairReport {
    /// Accounted rounds of the eviction/re-attachment itself.
    pub fn repair_rounds(&self) -> u64 {
        self.cost.total()
    }

    /// Time-to-repair: silence detection plus eviction/re-attachment.
    pub fn total_rounds(&self) -> u64 {
        self.detection_rounds + self.repair_rounds()
    }
}

impl ClusterNet {
    /// Rounds in one heartbeat frame of the current TDM schedule.
    fn frame_rounds(&self) -> u64 {
        ((self.delta_b() + self.delta_l()) as u64).max(1)
    }

    /// Detect-and-evict a crashed node, re-homing its orphans.
    ///
    /// Works for any attached node, including cut vertices (unreachable
    /// survivors become [`RepairReport::lost`]) and the root (the sink's
    /// component rebuilds from its lowest-id survivor). The structure
    /// satisfies every invariant of [`crate::invariants::check_core`]
    /// afterwards.
    pub fn repair_failure(
        &mut self,
        failed: NodeId,
        config: &RepairConfig,
    ) -> Result<RepairReport, RepairError> {
        if self.is_empty() || !self.tree().contains(failed) {
            return Err(RepairError::NotAttached(failed));
        }
        if self.len() == 1 {
            return Err(RepairError::LastNode);
        }
        let detection_rounds = config.detection_frames * self.frame_rounds();
        let before: BTreeMap<NodeId, (Option<u32>, Option<u32>)> = self
            .tree()
            .nodes()
            .map(|u| (u, (self.slots().b(u), self.slots().l(u))))
            .collect();

        let mut report = if failed == self.root() {
            self.repair_root_failure(failed)
        } else {
            self.repair_nonroot_failure(failed)
        };
        report.detection_rounds = detection_rounds;
        report.slot_churn = self
            .tree()
            .nodes()
            .filter(|&u| {
                before
                    .get(&u)
                    .is_some_and(|&old| old != (self.slots().b(u), self.slots().l(u)))
            })
            .count();
        Ok(report)
    }

    /// Non-root crash: the `node-move-out` flow, made crash-tolerant.
    fn repair_nonroot_failure(&mut self, failed: NodeId) -> RepairReport {
        // Bracket the eviction: the raw mutators must not poison the
        // journal — every dirty node is recorded here or by the re-homing
        // move-ins.
        self.begin_op();
        let mut cost = MoveOutCost {
            height_notify: self.tree().depth(failed) as u64,
            ..MoveOutCost::default()
        };
        let parent = self.tree().parent(failed).expect("non-root has a parent");
        self.record_dirty(parent);

        // Detach T; forget its slots; drop the dead node from G.
        let t_nodes = self.tree_mut().detach_subtree(failed);
        for &x in &t_nodes {
            self.slots_mut().clear(x);
            self.record_dirty(x);
        }
        let failed_neighbors = self.graph_mut().remove_node(failed);
        // Surviving endpoints of the dead node's edges: unrecoverable from
        // `failed` later, so they must enter the journal explicitly.
        for &v in &failed_neighbors {
            self.record_dirty(v);
        }
        let orphaned = t_nodes.len() - 1;

        // Survivors cut off from the sink cannot be served by any
        // protocol: drop them. They are necessarily inside T — every
        // other node's tree path to the root avoids `failed`, and tree
        // edges are graph edges, so the root's side stays connected.
        let root_side: BTreeSet<NodeId> = components::component_of(self.graph(), self.root())
            .into_iter()
            .collect();
        let lost: Vec<NodeId> = t_nodes
            .iter()
            .copied()
            .filter(|&x| x != failed && !root_side.contains(&x))
            .collect();
        let mut lost_neighbors: BTreeSet<NodeId> = BTreeSet::new();
        for &x in &lost {
            self.record_dirty(x);
            for v in self.graph_mut().remove_node(x) {
                lost_neighbors.insert(v);
            }
        }
        for &v in &lost_neighbors {
            self.record_dirty(v);
        }

        // The parent may have lost its transmitter roles.
        {
            let view = self.view();
            let demote_b = !view.bt_internal(parent);
            let demote_l = !view.cnet_internal(parent);
            if demote_b {
                self.slots_mut()
                    .clear_kind(crate::slots::SlotKind::B, parent);
            }
            if demote_l {
                self.slots_mut()
                    .clear_kind(crate::slots::SlotKind::L, parent);
            }
        }

        // Repair sweep over every receiver that could hear a vanished
        // transmitter, exactly as in move-out Step 0(ii).
        let mut affected: BTreeSet<NodeId> = lost_neighbors;
        for &x in &t_nodes {
            if x == failed || lost.contains(&x) {
                continue;
            }
            for &v in self.graph().neighbors(x) {
                affected.insert(v);
            }
        }
        for &v in &failed_neighbors {
            affected.insert(v);
        }
        for &v in self.graph().neighbors(parent) {
            affected.insert(v);
        }
        cost.detach_repair += t_nodes.len() as u64;
        for v in affected {
            cost.detach_repair += self.repair_receiver(v);
        }

        // Re-home the reachable orphans frontier-first.
        let mut stranded: BTreeSet<NodeId> = t_nodes
            .iter()
            .copied()
            .filter(|&x| x != failed && !lost.contains(&x))
            .collect();
        let mut rehomed = Vec::with_capacity(stranded.len());
        while !stranded.is_empty() {
            let next = stranded
                .iter()
                .copied()
                .find(|&x| {
                    self.graph()
                        .neighbors(x)
                        .iter()
                        .any(|&v| self.tree().contains(v))
                })
                .expect("every reachable orphan eventually borders the structure");
            stranded.remove(&next);
            let rep = self
                .move_in_existing(next)
                .expect("orphan has an attached neighbour");
            cost.reinsert += rep.cost.discovery + rep.cost.slot_update;
            rehomed.push(next);
        }
        cost.moved_nodes = rehomed.len() as u64;
        cost.final_report = self.height() as u64;
        self.end_op();

        RepairReport {
            failed,
            detection_rounds: 0, // filled by the caller
            orphaned,
            rehomed,
            lost,
            slot_churn: 0, // filled by the caller
            cost,
        }
    }

    /// The sink crashed: its component rebuilds from the lowest-id
    /// survivor; any other component is lost wholesale.
    fn repair_root_failure(&mut self, failed: NodeId) -> RepairReport {
        let orphaned = self.len() - 1;
        let mut graph = self.graph().clone();
        graph.remove_node(failed);
        let comps = components::components(&graph);
        // Keep the largest component; break ties towards the lowest id so
        // the choice is deterministic.
        let keep = comps
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| (c.len(), std::cmp::Reverse(c.iter().min().copied())))
            .map(|(i, _)| i)
            .expect("a repairable net has survivors");
        let mut lost: Vec<NodeId> = Vec::new();
        for (i, comp) in comps.iter().enumerate() {
            if i != keep {
                lost.extend(comp.iter().copied());
            }
        }
        lost.sort_unstable();
        for &x in &lost {
            graph.remove_node(x);
        }
        let new_root = comps[keep]
            .iter()
            .copied()
            .min()
            .expect("components are non-empty");
        let order = traversal::bfs(&graph, new_root).order;
        let rehomed: Vec<NodeId> = order[1..].to_vec();
        let rebuilt = ClusterNet::build_over(graph, &order, self.parent_rule(), self.mode())
            .expect("BFS order over a connected component always attaches");
        let cost = MoveOutCost {
            // A from-scratch rebuild: every survivor re-attaches once.
            reinsert: rebuilt.len() as u64,
            moved_nodes: rehomed.len() as u64,
            final_report: rebuilt.height() as u64,
            ..MoveOutCost::default()
        };
        self.replace_with_rebuilt(rebuilt);
        RepairReport {
            failed,
            detection_rounds: 0, // filled by the caller
            orphaned,
            rehomed,
            lost,
            slot_churn: 0, // filled by the caller
            cost,
        }
    }
}

impl McNet {
    /// Detect-and-evict a crashed node with relay-list maintenance:
    /// non-root crashes update the relay counts incrementally (subtract
    /// the stranded subtree, re-add each re-homed orphan along its new
    /// root path); a root crash recomputes them against the rebuilt tree.
    pub fn repair_failure(
        &mut self,
        failed: NodeId,
        config: &RepairConfig,
    ) -> Result<RepairReport, RepairError> {
        if self.net().is_empty() || !self.net().tree().contains(failed) {
            return Err(RepairError::NotAttached(failed));
        }
        if failed == self.net().root() {
            let report = self.net_mut().repair_failure(failed, config)?;
            self.clear_groups_of(failed);
            for &x in &report.lost {
                self.clear_groups_of(x);
            }
            self.refresh_relay();
            return Ok(report);
        }
        // Subtract every subtree node's groups from the former ancestors;
        // subtree-internal relay state is rebuilt on re-homing.
        let subtree = self.net().tree().subtree_nodes(failed);
        let ancestors: Vec<NodeId> = self.net().tree().path_to_root(failed)[1..].to_vec();
        for &x in &subtree {
            self.subtract_groups(x, &ancestors);
        }
        for &x in &subtree {
            self.clear_relay_of(x);
        }
        let report = self.net_mut().repair_failure(failed, config)?;
        self.clear_groups_of(failed);
        for &x in &report.lost {
            self.clear_groups_of(x);
        }
        for &x in &report.rehomed {
            self.readd_to_ancestors(x);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants;
    use crate::slots::validate::validate_condition2;

    /// Chain 0-1-2-...-(n-1) with shortcut edges every `skip` nodes.
    fn chain_net(n: u32, skip: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= skip {
                nbrs.push(NodeId(i - skip));
            }
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    fn assert_sound(net: &ClusterNet) {
        invariants::check_core(net).unwrap();
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn leaf_crash_repairs_trivially() {
        let mut net = chain_net(6, 2);
        let rep = net
            .repair_failure(NodeId(5), &RepairConfig::default())
            .unwrap();
        assert_eq!(rep.failed, NodeId(5));
        assert_eq!(rep.orphaned, 0);
        assert!(rep.rehomed.is_empty() && rep.lost.is_empty());
        assert_eq!(net.len(), 5);
        assert_sound(&net);
    }

    #[test]
    fn interior_crash_rehomes_all_orphans() {
        let mut net = chain_net(10, 2);
        let rep = net
            .repair_failure(NodeId(4), &RepairConfig::default())
            .unwrap();
        assert!(rep.orphaned > 0);
        assert_eq!(rep.rehomed.len(), rep.orphaned);
        assert!(rep.lost.is_empty());
        assert_eq!(net.len(), 9);
        assert!(!net.graph().is_live(NodeId(4)));
        assert_sound(&net);
    }

    #[test]
    fn cut_vertex_crash_loses_the_far_side() {
        // Pure chain: node 2 is a cut vertex; 3 and 4 end up unreachable.
        let mut net = chain_net(5, u32::MAX);
        let rep = net
            .repair_failure(NodeId(2), &RepairConfig::default())
            .unwrap();
        assert_eq!(rep.lost, vec![NodeId(3), NodeId(4)]);
        assert_eq!(rep.orphaned, 2);
        assert!(rep.rehomed.is_empty());
        assert_eq!(net.len(), 2);
        assert!(!net.graph().is_live(NodeId(3)));
        assert_sound(&net);
    }

    #[test]
    fn root_crash_rebuilds_from_a_survivor() {
        let mut net = chain_net(10, 2);
        let rep = net
            .repair_failure(NodeId(0), &RepairConfig::default())
            .unwrap();
        assert_eq!(rep.failed, NodeId(0));
        assert_eq!(rep.orphaned, 9);
        assert_eq!(rep.rehomed.len() + 1, net.len());
        assert_ne!(net.root(), NodeId(0));
        assert!(!net.graph().is_live(NodeId(0)));
        assert_sound(&net);
    }

    #[test]
    fn root_crash_on_a_star_keeps_one_leaf() {
        // Star: the hub is the root; its crash shatters G into singleton
        // leaves. The largest-component rule keeps exactly one (lowest id).
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        let rep = net
            .repair_failure(NodeId(0), &RepairConfig::default())
            .unwrap();
        assert_eq!(net.len(), 1);
        assert_eq!(net.root(), NodeId(1));
        assert_eq!(rep.lost, vec![NodeId(2), NodeId(3)]);
        invariants::check_core(&net).unwrap();
    }

    #[test]
    fn detection_bound_scales_with_frames_and_slots() {
        let net = chain_net(14, 2);
        let frame = (net.delta_b() + net.delta_l()) as u64;
        assert!(frame >= 1);
        let mut a = net.clone();
        let mut b = net.clone();
        let r1 = a
            .repair_failure(
                NodeId(7),
                &RepairConfig {
                    detection_frames: 1,
                },
            )
            .unwrap();
        let r3 = b
            .repair_failure(
                NodeId(7),
                &RepairConfig {
                    detection_frames: 3,
                },
            )
            .unwrap();
        assert_eq!(r1.detection_rounds, frame);
        assert_eq!(r3.detection_rounds, 3 * frame);
        assert_eq!(r3.total_rounds() - r3.detection_rounds, r3.repair_rounds());
    }

    #[test]
    fn slot_churn_counts_only_changed_survivors() {
        let mut net = chain_net(12, 2);
        let survivors = net.len() - 1;
        let rep = net
            .repair_failure(NodeId(4), &RepairConfig::default())
            .unwrap();
        assert!(rep.slot_churn <= survivors, "{}", rep.slot_churn);
    }

    #[test]
    fn repeated_crashes_keep_the_structure_sound() {
        let mut net = chain_net(20, 3);
        for victim in [3u32, 11, 0, 7, 15] {
            let id = NodeId(victim);
            if !net.graph().is_live(id) || !net.tree().contains(id) {
                continue;
            }
            net.repair_failure(id, &RepairConfig::default()).unwrap();
            assert_sound(&net);
        }
        assert!(net.len() >= 10);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut net = chain_net(4, 2);
        assert_eq!(
            net.repair_failure(NodeId(9), &RepairConfig::default()),
            Err(RepairError::NotAttached(NodeId(9)))
        );
        net.repair_failure(NodeId(3), &RepairConfig::default())
            .unwrap();
        assert_eq!(
            net.repair_failure(NodeId(3), &RepairConfig::default()),
            Err(RepairError::NotAttached(NodeId(3)))
        );
    }

    #[test]
    fn last_node_cannot_be_repaired_away() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        assert_eq!(
            net.repair_failure(NodeId(0), &RepairConfig::default()),
            Err(RepairError::LastNode)
        );
    }

    #[test]
    fn mcnet_repair_keeps_relay_lists_consistent() {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[0]).unwrap();
        for i in 1..14u32 {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            mc.move_in(&nbrs, &[(i % 3) as crate::GroupId]).unwrap();
        }
        mc.repair_failure(NodeId(6), &RepairConfig::default())
            .unwrap();
        mc.check_relay_consistency().unwrap();
        // Root crash path recomputes from scratch.
        let old_root = mc.net().root();
        mc.repair_failure(old_root, &RepairConfig::default())
            .unwrap();
        mc.check_relay_consistency().unwrap();
        assert_ne!(mc.net().root(), old_root);
    }

    #[test]
    fn mcnet_repair_drops_groups_of_lost_nodes() {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[0]).unwrap();
        for i in 1..5u32 {
            mc.move_in(&[NodeId(i - 1)], &[7]).unwrap(); // pure chain
        }
        // Node 2 is a cut vertex: 3 and 4 get lost.
        let rep = mc
            .repair_failure(NodeId(2), &RepairConfig::default())
            .unwrap();
        assert_eq!(rep.lost, vec![NodeId(3), NodeId(4)]);
        mc.check_relay_consistency().unwrap();
        assert!(!mc.group_members(7).contains(&NodeId(3)));
        assert!(!mc.group_members(7).contains(&NodeId(4)));
    }
}
