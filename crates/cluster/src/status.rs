//! Node statuses of Definition 1.

use std::fmt;

/// The role a node plays in CNet(G).
///
/// Invariants maintained by the move-in rules (checked by
/// [`crate::invariants`]):
/// * the root is a cluster-head;
/// * cluster-heads sit at even tree depths, gateways at odd depths;
/// * pure-members are always leaves and their parent is always a head;
/// * no two cluster-heads are adjacent in `G` (Property 1(2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Head of a cluster: connected to every other member of its cluster.
    ClusterHead,
    /// Relay between two adjacent clusters: member of its parent head's
    /// cluster, parent of one or more heads.
    Gateway,
    /// Ordinary cluster member; always a leaf of CNet(G).
    PureMember,
}

impl NodeStatus {
    /// Whether this node belongs to the backbone BT(G).
    pub fn in_backbone(self) -> bool {
        !matches!(self, NodeStatus::PureMember)
    }
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeStatus::ClusterHead => "head",
            NodeStatus::Gateway => "gateway",
            NodeStatus::PureMember => "member",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_membership() {
        assert!(NodeStatus::ClusterHead.in_backbone());
        assert!(NodeStatus::Gateway.in_backbone());
        assert!(!NodeStatus::PureMember.in_backbone());
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeStatus::ClusterHead.to_string(), "head");
        assert_eq!(NodeStatus::Gateway.to_string(), "gateway");
        assert_eq!(NodeStatus::PureMember.to_string(), "member");
    }
}
