//! Executable structural invariants of the cluster architecture.
//!
//! [`check_core`] verifies everything Definition 1 and Property 1 promise
//! *under arbitrary churn* (growth and move-outs):
//!
//! 1. the tree spans exactly the live nodes of `G`, and every tree edge is
//!    a `G` edge (CNet(G) is a spanning tree of `G`);
//! 2. the root is a cluster-head; heads sit at even depths, gateways at
//!    odd depths;
//! 3. pure-members are leaves; a member's parent is a head; a gateway's
//!    parent is a head; a non-root head's parent is a gateway; a
//!    gateway's children are heads;
//! 4. no `G` edge joins two cluster-heads (Property 1(2));
//! 5. the clusters (each head with its children) partition the nodes;
//! 6. the backbone is a connected subtree containing the root;
//! 7. Time-Slot Condition 2 holds and every transmitter carries its slot;
//! 8. the slot bounds of Lemma 3: `δ ≤ d(d+1)/2 + 1`, `Δ ≤ D(D+1)/2 + 1`.
//!
//! [`check_growth`] adds the pure-growth extras that a history of
//! move-outs may legitimately break (every gateway still parents a head,
//! so `|BT| ≤ 2·#clusters − 1` — Property 1(1)).

pub mod incremental;
#[cfg(test)]
mod incremental_props;

pub use incremental::DirtyAudit;

use crate::net::ClusterNet;
use crate::slots::validate::validate_condition2;
use crate::status::NodeStatus;
use dsnet_graph::{degree, NodeId};

/// A violated invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant names and fields are the documentation
pub enum Violation {
    /// The tree does not span exactly the live graph nodes.
    SpanMismatch {
        tree_nodes: usize,
        graph_nodes: usize,
    },
    /// A CNet parent link with no corresponding `G` edge.
    TreeEdgeNotInGraph { child: NodeId, parent: NodeId },
    /// The root is not a cluster-head.
    RootNotHead(NodeId),
    /// A head at odd depth or a gateway at even depth.
    DepthParity {
        node: NodeId,
        status: NodeStatus,
        depth: u32,
    },
    /// A pure-member with children.
    MemberNotLeaf(NodeId),
    /// A node whose parent's status breaks Definition 1.
    BadParentStatus { node: NodeId, parent: NodeId },
    /// A node whose child's status breaks Definition 1.
    BadChildStatus { node: NodeId, child: NodeId },
    /// Two cluster-heads adjacent in `G` (Property 1(2)).
    HeadsAdjacent(NodeId, NodeId),
    /// A Time-Slot Condition 2 violation (stringified detail).
    SlotCondition(String),
    /// A slot value above its Lemma-3 bound.
    SlotBound {
        kind: &'static str,
        max: u32,
        bound: u32,
    },
    /// Growth-only: a gateway with no head child.
    GatewayWithoutHeadChild(NodeId),
    /// Growth-only: `|BT| > 2·#clusters − 1` (Property 1(1)).
    BackboneTooLarge { backbone: usize, clusters: usize },
}

/// Churn-safe invariants. Returns `Ok(())` or the full violation list.
pub fn check_core(net: &ClusterNet) -> Result<(), Vec<Violation>> {
    let mut v = Vec::new();
    if net.is_empty() {
        return Ok(());
    }
    let tree = net.tree();
    let g = net.graph();

    // (1) spanning tree of G.
    if tree.len() != g.node_count() {
        v.push(Violation::SpanMismatch {
            tree_nodes: tree.len(),
            graph_nodes: g.node_count(),
        });
    }
    for u in tree.nodes() {
        if let Some(p) = tree.parent(u) {
            if !g.has_edge(u, p) {
                v.push(Violation::TreeEdgeNotInGraph {
                    child: u,
                    parent: p,
                });
            }
        }
    }

    // (2) root status and depth parity.
    if net.status(tree.root()) != NodeStatus::ClusterHead {
        v.push(Violation::RootNotHead(tree.root()));
    }
    for u in tree.nodes() {
        let depth = tree.depth(u);
        match net.status(u) {
            NodeStatus::ClusterHead if depth % 2 != 0 => v.push(Violation::DepthParity {
                node: u,
                status: NodeStatus::ClusterHead,
                depth,
            }),
            NodeStatus::Gateway if depth % 2 != 1 => v.push(Violation::DepthParity {
                node: u,
                status: NodeStatus::Gateway,
                depth,
            }),
            _ => {}
        }
    }

    // (3) local status rules.
    for u in tree.nodes() {
        match net.status(u) {
            NodeStatus::PureMember => {
                if !tree.is_leaf(u) {
                    v.push(Violation::MemberNotLeaf(u));
                }
                let p = tree.parent(u).expect("member has a parent");
                if net.status(p) != NodeStatus::ClusterHead {
                    v.push(Violation::BadParentStatus { node: u, parent: p });
                }
            }
            NodeStatus::Gateway => {
                let p = tree.parent(u).expect("gateway has a parent");
                if net.status(p) != NodeStatus::ClusterHead {
                    v.push(Violation::BadParentStatus { node: u, parent: p });
                }
                for c in tree.children(u) {
                    if net.status(c) != NodeStatus::ClusterHead {
                        v.push(Violation::BadChildStatus { node: u, child: c });
                    }
                }
            }
            NodeStatus::ClusterHead => {
                if let Some(p) = tree.parent(u) {
                    if net.status(p) != NodeStatus::Gateway {
                        v.push(Violation::BadParentStatus { node: u, parent: p });
                    }
                }
                for c in tree.children(u) {
                    if net.status(c) == NodeStatus::ClusterHead {
                        v.push(Violation::BadChildStatus { node: u, child: c });
                    }
                }
            }
        }
    }

    // (4) Property 1(2): heads are independent in G.
    for (a, b) in g.edges() {
        if net.status(a) == NodeStatus::ClusterHead && net.status(b) == NodeStatus::ClusterHead {
            v.push(Violation::HeadsAdjacent(a, b));
        }
    }

    // (7) TDM soundness.
    for violation in validate_condition2(&net.view(), net.slots(), net.mode()) {
        v.push(Violation::SlotCondition(format!("{violation:?}")));
    }

    // (8) Lemma 3 bounds.
    let big_d = degree::max_degree(g) as u32;
    let small_d = degree::induced_max_degree(g, &net.backbone_nodes()) as u32;
    let b_bound = small_d * (small_d + 1) / 2 + 1;
    let l_bound = big_d * (big_d + 1) / 2 + 1;
    if net.delta_b() > b_bound {
        v.push(Violation::SlotBound {
            kind: "b",
            max: net.delta_b(),
            bound: b_bound,
        });
    }
    if net.delta_l() > l_bound {
        v.push(Violation::SlotBound {
            kind: "l",
            max: net.delta_l(),
            bound: l_bound,
        });
    }

    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

/// Extra invariants that hold for pure-growth histories (no move-outs):
/// every gateway has at least one head child, which yields Property 1(1)'s
/// `|BT(G)| ≤ 2·#clusters − 1`.
pub fn check_growth(net: &ClusterNet) -> Result<(), Vec<Violation>> {
    check_core(net)?;
    let mut v = Vec::new();
    if net.is_empty() {
        return Ok(());
    }
    let tree = net.tree();
    for u in tree.nodes() {
        if net.status(u) == NodeStatus::Gateway
            && !tree
                .children(u)
                .any(|c| net.status(c) == NodeStatus::ClusterHead)
        {
            v.push(Violation::GatewayWithoutHeadChild(u));
        }
    }
    let (heads, gateways, _members) = net.status_counts();
    let backbone = heads + gateways;
    if backbone > 2 * heads.saturating_sub(1) + 1 {
        v.push(Violation::BackboneTooLarge {
            backbone,
            clusters: heads,
        });
    }
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::ClusterNet;

    fn grow_chain(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    #[test]
    fn empty_net_is_valid() {
        let net = ClusterNet::with_defaults();
        assert!(check_core(&net).is_ok());
        assert!(check_growth(&net).is_ok());
    }

    #[test]
    fn grown_chain_satisfies_everything() {
        let net = grow_chain(25);
        check_core(&net).unwrap();
        check_growth(&net).unwrap();
    }

    #[test]
    fn dense_growth_satisfies_everything() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..30u32 {
            // Each node hears up to three predecessors.
            let nbrs: Vec<NodeId> = (i.saturating_sub(3)..i).map(NodeId).collect();
            net.move_in(&nbrs).unwrap();
        }
        check_core(&net).unwrap();
        check_growth(&net).unwrap();
    }

    #[test]
    fn backbone_bound_matches_property_1() {
        let net = grow_chain(40);
        let (heads, gateways, _m) = net.status_counts();
        // |BT| = heads + gateways ≤ 2·heads − 1.
        assert!(heads + gateways < 2 * heads);
    }
}
