//! Dirty-scoped incremental auditing of the cluster invariants.
//!
//! [`check_core`](super::check_core) sweeps the whole network: every node,
//! every `G` edge, and a full [`validate_condition2`] pass. Under mobility
//! that sweep runs once per epoch even though a typical epoch reconfigures
//! a handful of nodes, which makes maintenance cost scale with the network
//! instead of the change. [`DirtyAudit`] re-verifies exactly the same
//! predicates, but only where they could have changed.
//!
//! # The dirty-set contract
//!
//! The caller passes the set `T` of *dirty* nodes. `T` must contain
//!
//! 1. every live node whose recorded tuple `(status, parent, depth,
//!    b-slot, l-slot)` changed since the state that was last known good,
//!    and
//! 2. the surviving endpoints of every `G` edge inserted or removed —
//!    for a removed node, all of its former neighbours; for an inserted
//!    node, the node itself and its neighbours.
//!
//! The mobility driver satisfies both by construction: (1) falls out of a
//! double-buffered per-node state snapshot, (2) out of the explicit
//! neighbour lists it already computes around every `move_out`/`move_in`.
//!
//! # The closure rule
//!
//! From `T` the audit derives two scopes:
//!
//! * the **local scope** `L = T ∪ parent(T)` (tree parents), over which
//!   it re-runs the per-node Definition-1 checks — depth parity,
//!   member-is-leaf, parent/child status pairs, parent-edge-in-`G`,
//!   heads-independence of incident edges, and the missing-slot checks;
//! * the **receiver scope** `R = L ∪ N_G(L)` (the closed `G`
//!   neighbourhood), over which it re-runs the Time-Slot Condition 2
//!   receiver checks.
//!
//! Why this closes over everything Condition 2 can see: a receiver `v`'s
//! check depends only on `v`'s own tuple, `v`'s neighbour set, and the
//! status/depth/slot of each neighbour `y` (whether `y` transmits, and
//! with which slot). Any change to `v`'s tuple or edges puts `v ∈ T`;
//! any change to `y`'s tuple or slot puts `y ∈ T ⊆ L` and hence
//! `v ∈ N_G(L)`. The one indirect case is a transmitter-set flip that
//! leaves `y`'s own tuple untouched: `bt_internal(y)`/`cnet_internal(y)`
//! depend on `y`'s *children*, so a child's status or parent change (the
//! child is in `T`) can silently flip `y`. That is exactly why `L` takes
//! the tree-parent closure: the flipped `y` is `parent(t)` for some
//! `t ∈ T`, so its receivers are inside `N_G(L)`. Depth cascades (a
//! re-homed subtree shifting whole depth frontiers) need no extra
//! closure because depth is part of the recorded tuple — every shifted
//! node is in `T` already.
//!
//! A handful of O(1)/O(n)-cheap global facts (span count, root status,
//! the Lemma-3 slot bounds) are re-checked unconditionally; they need no
//! scoping to be fast and keep the audit's verdict aligned with
//! `check_core` even for pathologies outside any neighbourhood argument.
//!
//! The audit never allocates on the steady path: scope lists, membership
//! markers, and slot scratch persist inside the `DirtyAudit` value.

use crate::net::ClusterNet;
use crate::slots::view::NetView;
use crate::slots::{SlotMode, SlotTable};
use crate::status::NodeStatus;
use dsnet_graph::NodeId;

use super::Violation;

/// Reusable incremental auditor. Create once, call
/// [`audit`](DirtyAudit::audit) every epoch; internal scratch is retained
/// and grows to the graph capacity high-water mark.
#[derive(Debug, Default)]
pub struct DirtyAudit {
    /// Scope-membership marker, indexed by node id.
    seen: Vec<bool>,
    /// The audit scope: first `local_len` entries form `L`, the rest the
    /// neighbourhood frontier of `R`.
    scope: Vec<NodeId>,
    /// Backbone-membership marker for the induced-degree bound.
    backbone: Vec<bool>,
    /// Slot-value scratch for the uniqueness checks.
    slot_vals: Vec<u32>,
}

impl DirtyAudit {
    /// A fresh auditor with empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-verify the `check_core` invariants assuming only nodes in
    /// `dirty` (plus the closure described in the module docs) may have
    /// changed since the last known-good state. `dirty` may contain dead
    /// or detached ids (they are skipped) and duplicates.
    ///
    /// Returns the audited scope size `|R|` on success.
    pub fn audit(&mut self, net: &ClusterNet, dirty: &[NodeId]) -> Result<usize, Vec<Violation>> {
        let mut v = Vec::new();
        if net.is_empty() {
            return Ok(0);
        }
        let tree = net.tree();
        let g = net.graph();
        let view = net.view();
        let slots = net.slots();
        let mode = net.mode();

        self.seen.resize(g.capacity().max(self.seen.len()), false);
        self.scope.clear();

        // --- Unconditional cheap global checks -------------------------
        if tree.len() != g.node_count() {
            v.push(Violation::SpanMismatch {
                tree_nodes: tree.len(),
                graph_nodes: g.node_count(),
            });
        }
        if net.status(tree.root()) != NodeStatus::ClusterHead {
            v.push(Violation::RootNotHead(tree.root()));
        }
        self.check_slot_bounds(net, &mut v);

        // --- Local scope L = T ∪ parent(T) ----------------------------
        for &u in dirty {
            if u.index() >= self.seen.len() || !g.is_live(u) || !tree.contains(u) {
                continue;
            }
            if !self.seen[u.index()] {
                self.seen[u.index()] = true;
                self.scope.push(u);
            }
            if let Some(p) = tree.parent(u) {
                if !self.seen[p.index()] {
                    self.seen[p.index()] = true;
                    self.scope.push(p);
                }
            }
        }
        let local_len = self.scope.len();

        // Per-node Definition-1 / Property-1 checks over L.
        for i in 0..local_len {
            let u = self.scope[i];
            check_local(&view, u, &mut v);
        }

        // --- Receiver scope R = L ∪ N_G(L) ----------------------------
        for i in 0..local_len {
            let u = self.scope[i];
            for j in 0..g.neighbors(u).len() {
                let w = g.neighbors(u)[j];
                if !self.seen[w.index()] && tree.contains(w) {
                    self.seen[w.index()] = true;
                    self.scope.push(w);
                }
            }
        }
        for i in 0..self.scope.len() {
            let u = self.scope[i];
            check_receiver(&view, slots, mode, u, &mut self.slot_vals, &mut v);
        }

        // Reset markers for the next call.
        let scope_len = self.scope.len();
        for i in 0..scope_len {
            let u = self.scope[i];
            self.seen[u.index()] = false;
        }

        if v.is_empty() {
            Ok(scope_len)
        } else {
            Err(v)
        }
    }

    /// Lemma-3 slot bounds, computed without allocating: a full-degree
    /// scan and an induced-degree scan over a reusable backbone marker.
    fn check_slot_bounds(&mut self, net: &ClusterNet, v: &mut Vec<Violation>) {
        let g = net.graph();
        let view = net.view();
        self.backbone
            .resize(g.capacity().max(self.backbone.len()), false);

        let mut big_d = 0usize;
        for u in g.nodes() {
            big_d = big_d.max(g.neighbors(u).len());
        }
        for u in net.tree().nodes() {
            if view.in_backbone(u) {
                self.backbone[u.index()] = true;
            }
        }
        let mut small_d = 0usize;
        for u in net.tree().nodes() {
            if !self.backbone[u.index()] {
                continue;
            }
            let deg = g
                .neighbors(u)
                .iter()
                .filter(|&&w| self.backbone[w.index()])
                .count();
            small_d = small_d.max(deg);
        }
        for u in net.tree().nodes() {
            self.backbone[u.index()] = false;
        }

        let big_d = big_d as u32;
        let small_d = small_d as u32;
        let b_bound = small_d * (small_d + 1) / 2 + 1;
        let l_bound = big_d * (big_d + 1) / 2 + 1;
        if net.delta_b() > b_bound {
            v.push(Violation::SlotBound {
                kind: "b",
                max: net.delta_b(),
                bound: b_bound,
            });
        }
        if net.delta_l() > l_bound {
            v.push(Violation::SlotBound {
                kind: "l",
                max: net.delta_l(),
                bound: l_bound,
            });
        }
    }
}

/// The per-node structural checks of `check_core` items (1)–(4), scoped
/// to one node: parent-edge-in-G, depth parity, local status rules, and
/// heads-independence of the edges incident to `u`.
fn check_local(view: &NetView<'_>, u: NodeId, v: &mut Vec<Violation>) {
    let tree = view.tree;
    let g = view.graph;
    if let Some(p) = tree.parent(u) {
        if !g.has_edge(u, p) {
            v.push(Violation::TreeEdgeNotInGraph {
                child: u,
                parent: p,
            });
        }
    }
    let depth = tree.depth(u);
    match view.status(u) {
        NodeStatus::ClusterHead if !depth.is_multiple_of(2) => v.push(Violation::DepthParity {
            node: u,
            status: NodeStatus::ClusterHead,
            depth,
        }),
        NodeStatus::Gateway if depth.is_multiple_of(2) => v.push(Violation::DepthParity {
            node: u,
            status: NodeStatus::Gateway,
            depth,
        }),
        _ => {}
    }
    match view.status(u) {
        NodeStatus::PureMember => {
            if !tree.is_leaf(u) {
                v.push(Violation::MemberNotLeaf(u));
            }
            if let Some(p) = tree.parent(u) {
                if view.status(p) != NodeStatus::ClusterHead {
                    v.push(Violation::BadParentStatus { node: u, parent: p });
                }
            }
        }
        NodeStatus::Gateway => {
            if let Some(p) = tree.parent(u) {
                if view.status(p) != NodeStatus::ClusterHead {
                    v.push(Violation::BadParentStatus { node: u, parent: p });
                }
            }
            for c in tree.children(u) {
                if view.status(c) != NodeStatus::ClusterHead {
                    v.push(Violation::BadChildStatus { node: u, child: c });
                }
            }
        }
        NodeStatus::ClusterHead => {
            if let Some(p) = tree.parent(u) {
                if view.status(p) != NodeStatus::Gateway {
                    v.push(Violation::BadParentStatus { node: u, parent: p });
                }
            }
            for c in tree.children(u) {
                if view.status(c) == NodeStatus::ClusterHead {
                    v.push(Violation::BadChildStatus { node: u, child: c });
                }
            }
        }
    }
    // Property 1(2) on incident edges: a head-head edge has at least one
    // endpoint whose status changed, so scanning edges at L-nodes covers
    // every edge `check_core` could newly flag.
    if view.status(u) == NodeStatus::ClusterHead {
        for &w in g.neighbors(u) {
            if view.attached(w) && view.status(w) == NodeStatus::ClusterHead {
                let (a, b) = if u < w { (u, w) } else { (w, u) };
                v.push(Violation::HeadsAdjacent(a, b));
            }
        }
    }
}

/// The Time-Slot Condition 2 checks of `check_core` item (7), scoped to
/// one node, allocation-free: `slot_vals` is the reusable scratch. The
/// predicates mirror `validate_condition2` exactly — missing transmitter
/// slots, the b-condition at backbone receivers, and the l-condition at
/// member leaves.
fn check_receiver(
    view: &NetView<'_>,
    slots: &SlotTable,
    mode: SlotMode,
    u: NodeId,
    slot_vals: &mut Vec<u32>,
    v: &mut Vec<Violation>,
) {
    let tree = view.tree;
    if view.bt_internal(u) && slots.b(u).is_none() {
        v.push(Violation::SlotCondition(format!(
            "{:?}",
            crate::slots::validate::ConditionViolation::MissingSlot(u)
        )));
    }
    if view.cnet_internal(u) && slots.l(u).is_none() {
        v.push(Violation::SlotCondition(format!(
            "{:?}",
            crate::slots::validate::ConditionViolation::MissingSlot(u)
        )));
    }
    let depth = tree.depth(u);
    if view.in_backbone(u) && depth >= 1 {
        slot_vals.clear();
        let mut transmitters = 0usize;
        for y in view.attached_neighbors(u) {
            if view.bt_internal(y) && tree.depth(y) + 1 == depth {
                transmitters += 1;
                if let Some(s) = slots.b(y) {
                    slot_vals.push(s);
                }
            }
        }
        slot_vals.sort_unstable();
        if transmitters == 0 || crate::slots::assign::unique_run_count(slot_vals) == 0 {
            v.push(Violation::SlotCondition(format!(
                "{:?}",
                crate::slots::validate::ConditionViolation::B(u)
            )));
        }
    }
    if view.is_member_leaf(u) {
        slot_vals.clear();
        let mut transmitters = 0usize;
        for y in view.attached_neighbors(u) {
            let in_window = match mode {
                SlotMode::PaperFaithful => tree.depth(y) + 1 == depth,
                SlotMode::Strict => true,
            };
            if view.cnet_internal(y) && in_window {
                transmitters += 1;
                if let Some(s) = slots.l(y) {
                    slot_vals.push(s);
                }
            }
        }
        slot_vals.sort_unstable();
        if transmitters == 0 || crate::slots::assign::unique_run_count(slot_vals) == 0 {
            v.push(Violation::SlotCondition(format!(
                "{:?}",
                crate::slots::validate::ConditionViolation::L(u)
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::check_core;
    use super::*;
    use crate::net::ClusterNet;

    fn grow(picks: &[(u32, u32, u32)]) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for (i, &(a, b, c)) in picks.iter().enumerate() {
            let existing = (i + 1) as u32;
            let mut nbrs = vec![
                NodeId(a % existing),
                NodeId(b % existing),
                NodeId(c % existing),
            ];
            nbrs.sort_unstable();
            nbrs.dedup();
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn empty_net_and_empty_dirty_set_pass() {
        let net = ClusterNet::with_defaults();
        let mut audit = DirtyAudit::new();
        assert!(audit.audit(&net, &[]).is_ok());
        let net = grow(&[(0, 0, 0), (1, 0, 1), (2, 1, 0)]);
        assert!(audit.audit(&net, &[]).is_ok());
    }

    #[test]
    fn full_dirty_set_agrees_with_check_core_on_sound_nets() {
        let net = grow(&[(0, 0, 0), (1, 0, 1), (2, 1, 0), (3, 2, 1), (4, 3, 2)]);
        check_core(&net).unwrap();
        let all: Vec<NodeId> = net.tree().nodes().collect();
        let mut audit = DirtyAudit::new();
        audit.audit(&net, &all).unwrap();
    }

    #[test]
    fn dead_and_duplicate_dirty_ids_are_tolerated() {
        let net = grow(&[(0, 0, 0), (1, 0, 1)]);
        let mut audit = DirtyAudit::new();
        audit
            .audit(&net, &[NodeId(1), NodeId(1), NodeId(400)])
            .unwrap();
    }

    #[test]
    fn scratch_is_reusable_across_structures() {
        let mut audit = DirtyAudit::new();
        for n in [3usize, 8, 5] {
            let picks: Vec<(u32, u32, u32)> = (0..n as u32).map(|i| (i, i / 2, 0)).collect();
            let net = grow(&picks);
            let all: Vec<NodeId> = net.tree().nodes().collect();
            audit.audit(&net, &all).unwrap();
            // Markers were reset: a second pass sees clean scratch.
            audit.audit(&net, &all).unwrap();
        }
    }
}
