//! Property tests pinning [`DirtyAudit`](super::DirtyAudit) to the full
//! oracle (`check_core` + `validate_condition2`).
//!
//! Three angles:
//!
//! 1. over random grow/shrink histories, with dirty sets built exactly
//!    the way the mobility driver builds them (per-node tuple diff plus
//!    edge-event endpoints), the audit accepts iff the oracle accepts;
//! 2. under seeded fault injection — a corrupted slot value, a dropped
//!    slot, or a re-homed parent link — the audit with a contract-shaped
//!    dirty set fails exactly when the oracle fails;
//! 3. the same corruption with an *empty* dirty set stays invisible,
//!    demonstrating that the audit really is scoped (and hence that the
//!    dirty-set contract is load-bearing, not decorative).
//!
//! This module lives in-crate (not `tests/`) because the fault injector
//! needs the `pub(crate)` `tree_mut`/`slots_mut` escape hatches.

use proptest::prelude::*;

use super::{check_core, DirtyAudit};
use crate::net::ClusterNet;
use crate::slots::validate::validate_condition2;
use crate::slots::SlotKind;
use crate::status::NodeStatus;
use dsnet_graph::NodeId;

/// The per-node record the mobility driver double-buffers: any change to
/// it obliges membership in the dirty set.
type Tuple = (NodeStatus, Option<NodeId>, u32, Option<u32>, Option<u32>);

fn snapshot(net: &ClusterNet) -> Vec<Option<Tuple>> {
    let cap = net.graph().capacity();
    (0..cap as u32)
        .map(|i| {
            let u = NodeId(i);
            if net.graph().is_live(u) && net.tree().contains(u) {
                Some((
                    net.status(u),
                    net.tree().parent(u),
                    net.tree().depth(u),
                    net.slots().b(u),
                    net.slots().l(u),
                ))
            } else {
                None
            }
        })
        .collect()
}

/// Nodes whose tuple changed between two snapshots.
fn diff_dirty(before: &[Option<Tuple>], after: &[Option<Tuple>]) -> Vec<NodeId> {
    let len = before.len().max(after.len());
    (0..len)
        .filter(|&i| before.get(i).unwrap_or(&None) != after.get(i).unwrap_or(&None))
        .map(|i| NodeId(i as u32))
        .collect()
}

fn oracle_clean(net: &ClusterNet) -> bool {
    check_core(net).is_ok() && validate_condition2(&net.view(), net.slots(), net.mode()).is_empty()
}

/// Grow a network where node i+1 hears up to 3 earlier nodes.
fn grow(picks: &[(u16, u16, u16)]) -> ClusterNet {
    let mut net = ClusterNet::with_defaults();
    net.move_in(&[]).unwrap();
    for (i, &(a, b, c)) in picks.iter().enumerate() {
        let existing = (i + 1) as u32;
        let mut nbrs: Vec<NodeId> = [a, b, c]
            .iter()
            .map(|&x| NodeId(x as u32 % existing))
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        net.move_in(&nbrs).unwrap();
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Driver-style dirty sets over random churn: after every mutation,
    /// the reused audit must agree with the full oracle. Sound mutations
    /// keep both clean, so this primarily forbids false positives — from
    /// stale scratch, from under-closure, from mis-scoped receiver
    /// checks — across arbitrary interleavings of growth and move-outs.
    #[test]
    fn audit_agrees_with_oracle_over_churn_histories(
        steps in prop::collection::vec(
            (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()), 2..40),
    ) {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        let mut audit = DirtyAudit::new();
        let mut before = snapshot(&net);
        for &(a, b, c, op) in &steps {
            let mut dirty: Vec<NodeId>;
            let nodes: Vec<NodeId> = net.tree().nodes().collect();
            if op % 4 == 0 && nodes.len() > 2 {
                let victim = nodes[a as usize % nodes.len()];
                let nbrs: Vec<NodeId> = net.graph().neighbors(victim).to_vec();
                let removed = net.move_out(victim).is_ok(); // refusals are fine
                let after = snapshot(&net);
                dirty = diff_dirty(&before, &after);
                if removed {
                    // Surviving endpoints of every removed G edge.
                    dirty.extend(nbrs);
                }
                before = after;
            } else {
                let mut nbrs: Vec<NodeId> = [a, b, c]
                    .iter()
                    .map(|&x| nodes[x as usize % nodes.len()])
                    .collect();
                nbrs.sort_unstable();
                nbrs.dedup();
                let report = net.move_in(&nbrs).unwrap();
                let after = snapshot(&net);
                dirty = diff_dirty(&before, &after);
                // Endpoints of every inserted G edge.
                dirty.push(report.node);
                dirty.extend(nbrs);
                before = after;
            }
            let verdict = audit.audit(&net, &dirty);
            let clean = oracle_clean(&net);
            prop_assert_eq!(
                verdict.is_ok(), clean,
                "audit {:?} vs oracle clean={} (dirty {:?})", verdict, clean, dirty
            );
        }
    }

    /// Seeded fault injection with a contract-shaped dirty set: corrupt
    /// one slot value, drop one slot, or re-home one leaf, pass the
    /// tuple-diff dirty set (plus the *old* parent for a re-homing, whose
    /// transmitter role can silently flip), and the audit must fail
    /// exactly when the oracle does — corruptions that happen to be
    /// harmless (a fabricated slot on a non-transmitter, a still-unique
    /// slot value) must stay accepted by both.
    #[test]
    fn injected_faults_inside_dirty_scope_match_oracle(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 4..40),
        sel in any::<u16>(),
        kind in 0u8..4,
    ) {
        let mut net = grow(&picks);
        let before = snapshot(&net);
        let nodes: Vec<NodeId> = net.tree().nodes().collect();
        let mut dirty: Vec<NodeId> = Vec::new();
        match kind {
            0 | 1 => {
                // Corrupt (or fabricate) one slot value.
                let k = if kind == 0 { SlotKind::B } else { SlotKind::L };
                let w = nodes[sel as usize % nodes.len()];
                let old = net.slots().get(k, w);
                net.slots_mut().set(k, w, old.map_or(1, |s| s + 1));
            }
            2 => {
                // Drop both slots of one node.
                let w = nodes[sel as usize % nodes.len()];
                net.slots_mut().clear(w);
            }
            _ => {
                // Re-home one non-root leaf under an arbitrary node,
                // bypassing move-out/move-in entirely.
                let tree = net.tree();
                let leaves: Vec<NodeId> = tree
                    .nodes()
                    .filter(|&u| tree.is_leaf(u) && u != tree.root())
                    .collect();
                let u = leaves[sel as usize % leaves.len()];
                let old_parent = tree.parent(u).unwrap();
                let others: Vec<NodeId> =
                    tree.nodes().filter(|&q| q != u).collect();
                let q = others[(sel / 7) as usize % others.len()];
                let tree = net.tree_mut();
                tree.detach_leaf(u);
                tree.attach(u, q);
                dirty.push(old_parent);
            }
        }
        dirty.extend(diff_dirty(&before, &snapshot(&net)));
        let mut audit = DirtyAudit::new();
        let verdict = audit.audit(&net, &dirty);
        let clean = oracle_clean(&net);
        prop_assert_eq!(
            verdict.is_ok(), clean,
            "kind={} audit {:?} vs oracle clean={} (dirty {:?})",
            kind, verdict, clean, dirty
        );
    }

    /// The negative control: the same class of corruption with an empty
    /// dirty set is invisible to the audit (only the cheap global facts
    /// run, and dropping a slot cannot move the Lemma-3 maxima up), while
    /// re-auditing with the corrupted node declared dirty recovers exact
    /// agreement with the oracle. Scoping is real, and so is the
    /// contract.
    #[test]
    fn corruption_outside_dirty_scope_is_skipped(
        picks in prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 6..40),
        sel in any::<u16>(),
    ) {
        let mut net = grow(&picks);
        let nodes: Vec<NodeId> = net.tree().nodes().collect();
        let w = nodes[sel as usize % nodes.len()];
        net.slots_mut().clear(w);

        let mut audit = DirtyAudit::new();
        let blind = audit.audit(&net, &[]);
        prop_assert!(blind.is_ok(), "unscoped corruption leaked: {blind:?}");

        let scoped = audit.audit(&net, &[w]);
        let clean = oracle_clean(&net);
        prop_assert_eq!(
            scoped.is_ok(), clean,
            "audit {:?} vs oracle clean={}", scoped, clean
        );
    }
}
