//! MCNet(G): the multicast overlay of Section 3.4.
//!
//! MCNet(G) is CNet(G) with two extra per-node lists:
//!
//! * **group-list** — the multicast groups the node itself belongs to;
//! * **relay-list** — the groups that appear somewhere in the node's
//!   *descendants* (so an internal node must relay a group-`g` multicast
//!   iff `g` is in its relay-list).
//!
//! The relay-lists are maintained incrementally: a join adds the
//! newcomer's groups along its root path; a move-out subtracts the whole
//! stranded subtree's group counts from the departed node's former
//! ancestors and re-adds each node's groups along its new root path as it
//! is re-homed. Counts (not booleans) are kept so removal is exact.

use crate::move_out::{MoveOutError, MoveOutReport};
use crate::net::{ClusterNet, MoveInError, MoveInReport};
use dsnet_graph::NodeId;
use std::collections::BTreeMap;

/// Identity of a multicast group.
pub type GroupId = u16;

/// CNet(G) plus multicast group/relay state.
#[derive(Debug, Clone)]
pub struct McNet {
    net: ClusterNet,
    /// Groups each node belongs to.
    groups: Vec<Vec<GroupId>>,
    /// For each node, per-group count of descendants in that group.
    relay: Vec<BTreeMap<GroupId, u32>>,
}

impl McNet {
    /// Wrap an (empty) cluster structure for group-aware growth.
    pub fn new(net: ClusterNet) -> Self {
        assert!(
            net.is_empty(),
            "wrap an empty ClusterNet and grow through McNet"
        );
        Self {
            net,
            groups: Vec::new(),
            relay: Vec::new(),
        }
    }

    /// An empty MCNet with the default parent rule and slot mode.
    pub fn with_defaults() -> Self {
        Self::new(ClusterNet::with_defaults())
    }

    /// The underlying cluster structure.
    pub fn net(&self) -> &ClusterNet {
        &self.net
    }

    fn ensure_capacity(&mut self) {
        let cap = self.net.graph().capacity();
        if self.groups.len() < cap {
            self.groups.resize(cap, Vec::new());
            self.relay.resize(cap, BTreeMap::new());
        }
    }

    /// The node's own group-list.
    pub fn group_list(&self, u: NodeId) -> &[GroupId] {
        &self.groups[u.index()]
    }

    /// The node's relay-list: groups present among its descendants.
    pub fn relay_list(&self, u: NodeId) -> Vec<GroupId> {
        self.relay[u.index()]
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&g, _)| g)
            .collect()
    }

    /// Whether an internal node must forward a group-`g` message.
    pub fn should_relay(&self, u: NodeId, g: GroupId) -> bool {
        self.relay[u.index()].get(&g).copied().unwrap_or(0) > 0
    }

    /// Whether the node itself wants group-`g` messages.
    pub fn is_target(&self, u: NodeId, g: GroupId) -> bool {
        self.groups[u.index()].contains(&g)
    }

    /// All members of group `g`, sorted.
    pub fn group_members(&self, g: GroupId) -> Vec<NodeId> {
        self.net
            .tree()
            .nodes()
            .filter(|u| self.groups[u.index()].contains(&g))
            .collect()
    }

    /// Join with the given group memberships (deduplicated).
    pub fn move_in(
        &mut self,
        neighbors: &[NodeId],
        groups: &[GroupId],
    ) -> Result<MoveInReport, MoveInError> {
        let report = self.net.move_in(neighbors)?;
        self.ensure_capacity();
        let mut gs = groups.to_vec();
        gs.sort_unstable();
        gs.dedup();
        self.groups[report.node.index()] = gs;
        self.add_to_ancestors(report.node);
        Ok(report)
    }

    /// Change a node's group memberships in place, updating ancestors.
    pub fn set_groups(&mut self, u: NodeId, groups: &[GroupId]) {
        assert!(self.net.tree().contains(u), "{u} is not attached");
        self.remove_from_ancestors(u);
        let mut gs = groups.to_vec();
        gs.sort_unstable();
        gs.dedup();
        self.groups[u.index()] = gs;
        self.add_to_ancestors(u);
    }

    /// Node departure with relay-list maintenance.
    pub fn move_out(&mut self, lev: NodeId) -> Result<MoveOutReport, MoveOutError> {
        self.net.can_move_out(lev)?;
        Ok(self.move_out_previewed(lev))
    }

    /// [`McNet::move_out`] for callers that already ran
    /// [`ClusterNet::can_move_out`] on `lev` against the current graph —
    /// skips the duplicate connectivity sweep (a full traversal) that
    /// dominates the per-reconfiguration cost in the mobility driver.
    /// Calling it without a successful preview panics mid-operation.
    pub fn move_out_previewed(&mut self, lev: NodeId) -> MoveOutReport {
        debug_assert!(self.net.can_move_out(lev).is_ok());
        // Subtract every subtree node's groups from lev's former ancestors
        // and clear subtree-internal relay state. A fully group-free
        // subtree (broadcast-only traffic) has nothing to subtract.
        let subtree = self.net.tree().subtree_nodes(lev);
        if subtree.iter().any(|&x| !self.groups[x.index()].is_empty()) {
            let ancestors: Vec<NodeId> = self.net.tree().path_to_root(lev)[1..].to_vec();
            for &x in &subtree {
                let gs = self.groups[x.index()].clone();
                for &a in &ancestors {
                    for &g in &gs {
                        decrement(&mut self.relay[a.index()], g);
                    }
                }
            }
        }
        // Relay entries of subtree nodes are rebuilt from scratch below.
        for &x in &subtree {
            self.relay[x.index()].clear();
        }
        // Intra-subtree ancestor relationships also vanish with the detach;
        // rebuilding happens via add_to_ancestors per rehomed node.
        let report = self.net.move_out_previewed(lev);
        self.groups[lev.index()].clear();
        for &x in &report.rehomed {
            self.add_to_ancestors(x);
        }
        report
    }

    /// The sink itself departs: the underlying structure is rebuilt from a
    /// surviving node (see [`ClusterNet::move_out_root`]) and every
    /// relay-list is recomputed against the new tree. Group memberships of
    /// the survivors are preserved; the old root's are dropped.
    pub fn move_out_root(
        &mut self,
    ) -> Result<crate::move_out::RootMoveOutReport, crate::move_out::MoveOutError> {
        let report = self.net.move_out_root()?;
        self.groups[report.old_root.index()].clear();
        let fresh = self.recompute_relay();
        self.relay = fresh;
        Ok(report)
    }

    // ----- crate-internal hooks used by the repair module -----------------

    pub(crate) fn net_mut(&mut self) -> &mut ClusterNet {
        &mut self.net
    }

    pub(crate) fn clear_groups_of(&mut self, u: NodeId) {
        self.groups[u.index()].clear();
    }

    pub(crate) fn clear_relay_of(&mut self, u: NodeId) {
        self.relay[u.index()].clear();
    }

    pub(crate) fn subtract_groups(&mut self, u: NodeId, ancestors: &[NodeId]) {
        let gs = self.groups[u.index()].clone();
        for &a in ancestors {
            for &g in &gs {
                decrement(&mut self.relay[a.index()], g);
            }
        }
    }

    pub(crate) fn readd_to_ancestors(&mut self, u: NodeId) {
        self.add_to_ancestors(u);
    }

    pub(crate) fn refresh_relay(&mut self) {
        self.relay = self.recompute_relay();
    }

    fn add_to_ancestors(&mut self, u: NodeId) {
        // Group-free nodes (the common case in broadcast-only scenarios)
        // contribute nothing — skip the root-path walk entirely.
        if self.groups[u.index()].is_empty() {
            return;
        }
        let path = self.net.tree().path_to_root(u);
        let gs = self.groups[u.index()].clone();
        for &a in &path[1..] {
            for &g in &gs {
                *self.relay[a.index()].entry(g).or_insert(0) += 1;
            }
        }
    }

    fn remove_from_ancestors(&mut self, u: NodeId) {
        if self.groups[u.index()].is_empty() {
            return;
        }
        let path = self.net.tree().path_to_root(u);
        let gs = self.groups[u.index()].clone();
        for &a in &path[1..] {
            for &g in &gs {
                decrement(&mut self.relay[a.index()], g);
            }
        }
    }

    /// Recompute every relay-list from scratch (ground truth for tests).
    pub fn recompute_relay(&self) -> Vec<BTreeMap<GroupId, u32>> {
        let mut relay: Vec<BTreeMap<GroupId, u32>> =
            vec![BTreeMap::new(); self.net.graph().capacity()];
        for u in self.net.tree().nodes() {
            let path = self.net.tree().path_to_root(u);
            for &a in &path[1..] {
                for &g in &self.groups[u.index()] {
                    *relay[a.index()].entry(g).or_insert(0) += 1;
                }
            }
        }
        relay
    }

    /// Assert the incremental relay state matches a fresh recomputation.
    pub fn check_relay_consistency(&self) -> Result<(), String> {
        let fresh = self.recompute_relay();
        for u in self.net.tree().nodes() {
            let have: BTreeMap<GroupId, u32> = self.relay[u.index()]
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(&g, &c)| (g, c))
                .collect();
            let want: BTreeMap<GroupId, u32> =
                fresh[u.index()].iter().map(|(&g, &c)| (g, c)).collect();
            if have != want {
                return Err(format!(
                    "relay mismatch at {u}: have {have:?}, want {want:?}"
                ));
            }
        }
        Ok(())
    }
}

fn decrement(map: &mut BTreeMap<GroupId, u32>, g: GroupId) {
    if let Some(c) = map.get_mut(&g) {
        if *c <= 1 {
            map.remove(&g);
        } else {
            *c -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain with shortcuts, each node in group (id % 3).
    fn grow(n: u32) -> McNet {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[0]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            mc.move_in(&nbrs, &[(i % 3) as GroupId]).unwrap();
        }
        mc
    }

    #[test]
    fn relay_lists_reflect_descendants() {
        let mc = grow(10);
        mc.check_relay_consistency().unwrap();
        let root = mc.net().root();
        // Root relays every group that exists below it.
        let rl = mc.relay_list(root);
        assert!(rl.contains(&1) && rl.contains(&2));
        // A leaf relays nothing.
        let leaf = mc
            .net()
            .tree()
            .nodes()
            .find(|&u| mc.net().tree().is_leaf(u))
            .unwrap();
        assert!(mc.relay_list(leaf).is_empty());
    }

    #[test]
    fn is_target_matches_group_list() {
        let mc = grow(6);
        assert!(mc.is_target(NodeId(3), 0));
        assert!(!mc.is_target(NodeId(3), 1));
        assert_eq!(mc.group_members(0), vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn set_groups_updates_ancestors() {
        let mut mc = grow(8);
        let leaf = NodeId(7);
        mc.set_groups(leaf, &[9]);
        mc.check_relay_consistency().unwrap();
        assert!(mc.should_relay(mc.net().root(), 9));
        mc.set_groups(leaf, &[]);
        mc.check_relay_consistency().unwrap();
        assert!(!mc.should_relay(mc.net().root(), 9));
    }

    #[test]
    fn move_out_keeps_relay_consistent() {
        let mut mc = grow(14);
        mc.move_out(NodeId(5)).unwrap();
        mc.check_relay_consistency().unwrap();
        mc.move_out(NodeId(9)).unwrap();
        mc.check_relay_consistency().unwrap();
        // Group membership of the departed nodes is gone.
        assert!(!mc.group_members(2).contains(&NodeId(5)));
    }

    #[test]
    fn duplicate_groups_are_deduped() {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[4, 4, 4]).unwrap();
        assert_eq!(mc.group_list(NodeId(0)), &[4]);
    }

    #[test]
    fn root_departure_keeps_relay_lists_consistent() {
        let mut mc = grow(12);
        let report = mc.move_out_root().unwrap();
        assert!(!mc.net().graph().is_live(report.old_root));
        mc.check_relay_consistency().unwrap();
        // Groups of survivors persist.
        assert!(!mc.group_members(1).is_empty());
    }

    #[test]
    fn move_in_after_move_out_stays_consistent() {
        let mut mc = grow(10);
        mc.move_out(NodeId(4)).unwrap();
        mc.move_in(&[NodeId(2), NodeId(3)], &[7]).unwrap();
        mc.check_relay_consistency().unwrap();
        assert!(mc.should_relay(mc.net().root(), 7) || mc.is_target(mc.net().root(), 7));
    }
}
