//! `node-move-out` (Section 5.2): a node leaves and its stranded subtree
//! is folded back into the remaining structure.
//!
//! When `lev` withdraws, CNet(G) splits into the subtree `T` rooted at
//! `lev` and the remainder `H`. The operation:
//!
//! * **Step 0** — `lev` notifies the root (height bookkeeping, ≤ h rounds)
//!   and an Euler tour over `T` lets the `H`-side neighbours of every
//!   `T` node drop it from their transmitter sets and repair their
//!   time slots where Time-Slot Condition 2 broke;
//! * **Steps 1–2** — the `|T| − 1` stranded nodes are re-homed into `H`
//!   one at a time with `node-move-in`, in an order that guarantees each
//!   node can already hear the structure (the paper walks an Euler tour
//!   from a node of `T` with an edge into `H`; we use the equivalent
//!   frontier order that provably exists whenever `G − lev` is connected);
//! * **Step 3** — the largest revised b-slot travels back to the root.
//!
//! Total cost `O(h + |T|·D²)` (Theorem 3), accounted in [`MoveOutCost`].
//!
//! The paper defers the root's own departure to its full version;
//! [`ClusterNet::move_out_root`] supplies that missing case here as a
//! full O(n) re-initialisation from a surviving sink (regular
//! [`ClusterNet::move_out`] still refuses the root with
//! [`MoveOutError::RootMoveOut`]).

use crate::costs::MoveOutCost;
use crate::net::ClusterNet;
use crate::slots::assign::{
    calculate_b_slot, calculate_l_slot, condition_b_holds, condition_l_holds,
};
use crate::slots::view::NetView;
use dsnet_graph::{components, NodeId};
use std::fmt;

/// Errors from [`ClusterNet::move_out`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveOutError {
    /// The node is not part of the structure.
    NotAttached(NodeId),
    /// The paper's operation assumes the root (sink) stays.
    RootMoveOut,
    /// Removing the node would disconnect `G`; the paper assumes the
    /// remaining graph is connected.
    WouldDisconnect(NodeId),
}

impl fmt::Display for MoveOutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveOutError::NotAttached(n) => write!(f, "{n} is not attached to the structure"),
            MoveOutError::RootMoveOut => write!(f, "the root (sink) cannot move out"),
            MoveOutError::WouldDisconnect(n) => {
                write!(f, "removing {n} would disconnect the network")
            }
        }
    }
}

impl std::error::Error for MoveOutError {}

/// What a move-out did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutReport {
    /// The departed node.
    pub node: NodeId,
    /// Stranded subtree nodes, in the order they were re-homed.
    pub rehomed: Vec<NodeId>,
    /// Accounted round costs (Theorem 3 terms).
    pub cost: MoveOutCost,
}

impl ClusterNet {
    /// Check the preconditions of [`ClusterNet::move_out`] without
    /// mutating anything.
    pub fn can_move_out(&self, lev: NodeId) -> Result<(), MoveOutError> {
        if self.is_empty() || !self.tree().contains(lev) {
            return Err(MoveOutError::NotAttached(lev));
        }
        if lev == self.root() {
            return Err(MoveOutError::RootMoveOut);
        }
        if components::disconnects_without(self.graph(), lev) {
            return Err(MoveOutError::WouldDisconnect(lev));
        }
        Ok(())
    }

    /// Remove `lev` from the network and re-home its stranded subtree.
    pub fn move_out(&mut self, lev: NodeId) -> Result<MoveOutReport, MoveOutError> {
        self.can_move_out(lev)?;
        Ok(self.move_out_previewed(lev))
    }

    /// [`ClusterNet::move_out`] minus the precondition check, for callers
    /// that just ran [`ClusterNet::can_move_out`] themselves: the
    /// connectivity preview is a full graph sweep, and the mobility
    /// driver already previews every candidate departure, so re-checking
    /// here would triple the per-reconfiguration traversal cost.
    pub(crate) fn move_out_previewed(&mut self, lev: NodeId) -> MoveOutReport {
        debug_assert!(self.can_move_out(lev).is_ok());
        // Bracket the whole operation: the raw mutators below must not
        // poison the journal — every dirty node is recorded here or by the
        // re-homing move-ins.
        self.begin_op();
        // Step 0(i): height notification travels lev → root.
        let mut cost = MoveOutCost {
            height_notify: self.tree().depth(lev) as u64,
            ..MoveOutCost::default()
        };

        let lev_parent = self.tree().parent(lev).expect("non-root has a parent");
        self.record_dirty(lev_parent);

        // Detach T and forget its nodes' slots; remove lev from G.
        let t_nodes = self.tree_mut().detach_subtree(lev);
        for &x in &t_nodes {
            self.slots_mut().clear(x);
            self.record_dirty(x);
        }
        let lev_neighbors = self.graph_mut().remove_node(lev);
        // lev's edges vanished with it: their surviving endpoints are dirty
        // and unrecoverable from lev later (it has no neighbours any more).
        for &v in &lev_neighbors {
            self.record_dirty(v);
        }

        // The parent may have lost transmitter roles; stale slots must not
        // linger on a node that no longer transmits in that phase.
        {
            let view = self.view();
            let demote_b = !view.bt_internal(lev_parent);
            let demote_l = !view.cnet_internal(lev_parent);
            if demote_b {
                self.slots_mut()
                    .clear_kind(crate::slots::SlotKind::B, lev_parent);
            }
            if demote_l {
                self.slots_mut()
                    .clear_kind(crate::slots::SlotKind::L, lev_parent);
            }
        }

        // Step 0(ii): repair sweep over every H receiver that could hear a
        // vanished transmitter — G-neighbours of T nodes, of lev, and of
        // the possibly-demoted parent. The Euler tour itself costs |T|
        // rounds on top of the slot recalculations.
        let mut affected: Vec<NodeId> = Vec::new();
        for &x in &t_nodes {
            if x == lev {
                continue;
            }
            affected.extend_from_slice(self.graph().neighbors(x));
        }
        affected.extend_from_slice(&lev_neighbors);
        affected.extend_from_slice(self.graph().neighbors(lev_parent));
        affected.sort_unstable();
        affected.dedup();
        cost.detach_repair += t_nodes.len() as u64;
        for v in affected {
            cost.detach_repair += self.repair_receiver(v);
        }

        // Steps 1–2: re-home the stranded nodes frontier-first (lowest
        // attachable id each round, matching the former ordered-set walk).
        // Because `G − lev` is connected, some stranded node always hears
        // the attached structure.
        let mut stranded: Vec<NodeId> = t_nodes.iter().copied().filter(|&x| x != lev).collect();
        stranded.sort_unstable();
        let mut rehomed = Vec::with_capacity(stranded.len());
        while !stranded.is_empty() {
            let pos = stranded
                .iter()
                .position(|&x| {
                    self.graph()
                        .neighbors(x)
                        .iter()
                        .any(|&v| self.tree().contains(v))
                })
                .expect("connected remainder guarantees an attachable stranded node");
            let next = stranded.remove(pos);
            let rep = self
                .move_in_existing(next)
                .expect("stranded node has an attached neighbour");
            // Per the paper's optimisation, the per-node root report is
            // deferred to Step 3, so only discovery + slot repair count.
            cost.reinsert += rep.cost.discovery + rep.cost.slot_update;
            rehomed.push(next);
        }
        cost.moved_nodes = rehomed.len() as u64;

        // Step 3: the largest revised b-slot travels back to the root.
        cost.final_report = self.height() as u64;
        self.end_op();

        MoveOutReport {
            node: lev,
            rehomed,
            cost,
        }
    }

    /// Re-establish Time-Slot Condition 2 at receiver `v` after
    /// transmitters vanished, by recalculating its parent's slot if
    /// needed. Returns the rounds spent. Shared with the failure-repair
    /// sweep in [`crate::repair`].
    pub(crate) fn repair_receiver(&mut self, v: NodeId) -> u64 {
        if !self.tree().contains(v) {
            return 0;
        }
        let mode = self.mode();
        let mut rounds = 0u64;
        let needs_b = {
            let view = self.view();
            view.in_backbone(v)
                && view.tree.depth(v) >= 1
                && !condition_b_holds(&view, self.slots(), v)
        };
        if needs_b {
            let p = self
                .tree()
                .parent(v)
                .expect("backbone receiver has a parent");
            self.record_dirty(p);
            let (graph, tree, status, slots) = self.split_for_slots();
            let view = NetView::new(graph, tree, status);
            rounds += calculate_b_slot(&view, slots, p).rounds;
        }
        let needs_l = {
            let view = self.view();
            view.is_member_leaf(v) && !condition_l_holds(&view, self.slots(), mode, v)
        };
        if needs_l {
            let p = self.tree().parent(v).expect("member has a parent");
            self.record_dirty(p);
            let (graph, tree, status, slots) = self.split_for_slots();
            let view = NetView::new(graph, tree, status);
            rounds += calculate_l_slot(&view, slots, mode, p).rounds;
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{MoveInError, ParentRule};
    use crate::slots::validate::validate_condition2;
    use crate::slots::SlotMode;

    /// Chain 0-1-2-...-(n-1) with extra shortcut edges every `skip` nodes so
    /// the graph stays connected when interior nodes leave.
    fn chain_net(n: u32, skip: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= skip {
                nbrs.push(NodeId(i - skip));
            }
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn leaf_move_out_is_trivial() {
        let mut net = chain_net(5, 2);
        let last = NodeId(4);
        let rep = net.move_out(last).unwrap();
        assert_eq!(rep.node, last);
        assert!(rep.rehomed.is_empty());
        assert_eq!(net.len(), 4);
        assert!(!net.graph().is_live(last));
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn interior_move_out_rehomes_subtree() {
        let mut net = chain_net(10, 2);
        let before = net.len();
        let rep = net.move_out(NodeId(4)).unwrap();
        assert_eq!(net.len(), before - 1);
        assert!(!rep.rehomed.is_empty());
        // Every surviving node is attached and the spanning property holds.
        assert_eq!(net.tree().len(), net.graph().node_count());
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
        crate::invariants::check_core(&net).unwrap();
    }

    #[test]
    fn root_move_out_is_rejected() {
        let mut net = chain_net(4, 2);
        assert_eq!(net.move_out(NodeId(0)), Err(MoveOutError::RootMoveOut));
        assert_eq!(net.len(), 4);
    }

    #[test]
    fn disconnecting_move_out_is_rejected() {
        // Pure chain: removing an interior node disconnects.
        let mut net = chain_net(5, u32::MAX);
        assert_eq!(
            net.move_out(NodeId(2)),
            Err(MoveOutError::WouldDisconnect(NodeId(2)))
        );
        assert_eq!(net.len(), 5);
        crate::invariants::check_core(&net).unwrap();
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut net = chain_net(3, 2);
        assert_eq!(
            net.move_out(NodeId(9)),
            Err(MoveOutError::NotAttached(NodeId(9)))
        );
    }

    #[test]
    fn removed_id_is_not_reused_by_later_move_in() {
        let mut net = chain_net(6, 2);
        net.move_out(NodeId(5)).unwrap();
        let rep = net.move_in(&[NodeId(0)]).unwrap();
        assert_eq!(rep.node, NodeId(6));
    }

    #[test]
    fn repeated_churn_keeps_structure_sound() {
        let mut net = chain_net(16, 3);
        // Remove a batch of interior nodes (skipping any that would
        // disconnect), re-validating after each operation.
        for victim in [3u32, 7, 11, 5, 9] {
            let id = NodeId(victim);
            match net.move_out(id) {
                Ok(_) => {}
                Err(MoveOutError::WouldDisconnect(_)) => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
            crate::invariants::check_core(&net).unwrap();
            let v = validate_condition2(&net.view(), net.slots(), net.mode());
            assert!(v.is_empty(), "after removing {victim}: {v:?}");
        }
    }

    #[test]
    fn move_out_then_move_in_roundtrip() {
        let mut net = chain_net(8, 2);
        net.move_out(NodeId(3)).unwrap();
        // A new node arrives hearing several survivors.
        let rep = net.move_in(&[NodeId(2), NodeId(4)]).unwrap();
        assert!(net.tree().contains(rep.node));
        crate::invariants::check_core(&net).unwrap();
    }

    #[test]
    fn paper_mode_churn_also_validates_in_paper_terms() {
        let mut net = ClusterNet::new(ParentRule::LowestId, SlotMode::PaperFaithful);
        net.move_in(&[]).unwrap();
        for i in 1..12u32 {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            net.move_in(&nbrs).unwrap();
        }
        net.move_out(NodeId(6)).unwrap();
        let v = validate_condition2(&net.view(), net.slots(), SlotMode::PaperFaithful);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn move_in_existing_requires_attached_neighbor() {
        let mut net = chain_net(3, 2);
        // Simulate a stranded node: add a graph node linked only to a
        // tombstone-free but detached context is impossible via public API;
        // instead check the public error path for an isolated newcomer.
        assert_eq!(net.move_in(&[]), Err(MoveInError::NoAttachedNeighbor));
    }

    #[test]
    fn can_move_out_previews_every_error_without_mutating() {
        let net = chain_net(5, u32::MAX); // pure chain: interiors are cut vertices
        let before_len = net.len();
        assert_eq!(net.can_move_out(NodeId(0)), Err(MoveOutError::RootMoveOut));
        assert_eq!(
            net.can_move_out(NodeId(2)),
            Err(MoveOutError::WouldDisconnect(NodeId(2)))
        );
        assert_eq!(
            net.can_move_out(NodeId(42)),
            Err(MoveOutError::NotAttached(NodeId(42)))
        );
        assert_eq!(net.can_move_out(NodeId(4)), Ok(())); // chain endpoint
        assert_eq!(net.len(), before_len);
        crate::invariants::check_core(&net).unwrap();
    }

    #[test]
    fn failed_move_out_leaves_slots_intact() {
        let mut net = chain_net(6, u32::MAX);
        // Every rejected departure must leave the schedule untouched.
        for victim in [NodeId(0), NodeId(3), NodeId(99)] {
            let _ = net.move_out(victim);
            let v = validate_condition2(&net.view(), net.slots(), net.mode());
            assert!(v.is_empty(), "after rejected {victim:?}: {v:?}");
        }
        assert_eq!(net.len(), 6);
    }

    #[test]
    fn evicted_node_cannot_move_out_again() {
        use crate::repair::RepairConfig;
        let mut net = chain_net(10, 2);
        let victim = NodeId(4);
        net.repair_failure(victim, &RepairConfig::default())
            .unwrap();
        // The eviction already removed it; a later move-out is NotAttached,
        // and the slot schedule stays valid throughout.
        assert_eq!(net.move_out(victim), Err(MoveOutError::NotAttached(victim)));
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
        crate::invariants::check_core(&net).unwrap();
    }
}

/// What a root hand-over did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootMoveOutReport {
    /// The departed sink.
    pub old_root: NodeId,
    /// The node now serving as sink.
    pub new_root: NodeId,
    /// Accounted rounds: the full rebuild is a gossip-style O(n)
    /// operation (each surviving node re-attaches once).
    pub rounds: u64,
}

impl ClusterNet {
    /// The sink itself leaves — the case the paper defers to its full
    /// version. There is no sub-tree `H` to fold `T` into, so the
    /// structure is rebuilt from a fresh sink: the lowest-id surviving
    /// node becomes the new root and every node re-attaches in BFS order
    /// (equivalently: the Section-5 gossip construction re-run from the
    /// new sink). Costs O(n) accounted rounds — a full re-initialisation,
    /// which is also the best possible since every node's depth, status
    /// and slots can change.
    ///
    /// Fails if the root is the only node or if its removal disconnects
    /// `G`.
    pub fn move_out_root(&mut self) -> Result<RootMoveOutReport, MoveOutError> {
        let old_root = self.root();
        if self.len() <= 1 {
            return Err(MoveOutError::NotAttached(old_root));
        }
        if components::disconnects_without(self.graph(), old_root) {
            return Err(MoveOutError::WouldDisconnect(old_root));
        }
        let mut graph = self.graph().clone();
        graph.remove_node(old_root);
        let new_root = graph.nodes().next().expect("survivors exist");
        let order = dsnet_graph::traversal::bfs(&graph, new_root).order;
        let rebuilt = ClusterNet::build_over(graph, &order, self.parent_rule(), self.mode())
            .expect("BFS order over a connected graph always attaches");
        let rounds = rebuilt.len() as u64;
        self.replace_with_rebuilt(rebuilt);
        Ok(RootMoveOutReport {
            old_root,
            new_root,
            rounds,
        })
    }
}

#[cfg(test)]
mod root_move_out_tests {
    use super::*;
    use crate::invariants;
    use crate::slots::validate::validate_condition2;

    fn chain_net(n: u32, skip: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= skip {
                nbrs.push(NodeId(i - skip));
            }
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn root_departure_rebuilds_a_valid_structure() {
        let mut net = chain_net(12, 2);
        let report = net.move_out_root().unwrap();
        assert_eq!(report.old_root, NodeId(0));
        assert_eq!(net.root(), report.new_root);
        assert_eq!(net.len(), 11);
        assert!(!net.graph().is_live(NodeId(0)));
        invariants::check_growth(&net).unwrap();
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn disconnected_root_departure_is_refused() {
        // Pure chain: the root is an endpoint, never a cut vertex — build a
        // star instead, where the hub is the root and cuts everything.
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        assert_eq!(
            net.move_out_root(),
            Err(MoveOutError::WouldDisconnect(NodeId(0)))
        );
        assert_eq!(net.root(), NodeId(0)); // untouched
    }

    #[test]
    fn singleton_root_cannot_leave() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        assert!(net.move_out_root().is_err());
    }

    #[test]
    fn network_stays_operational_after_root_change() {
        let mut net = chain_net(15, 3);
        net.move_out_root().unwrap();
        // Can keep growing and shrinking afterwards.
        let survivor = net.root();
        net.move_in(&[survivor]).unwrap();
        invariants::check_core(&net).unwrap();
    }

    #[test]
    fn root_departure_after_eviction_still_rebuilds_cleanly() {
        use crate::repair::RepairConfig;
        let mut net = chain_net(14, 2);
        // A silent crash is repaired first, then the sink itself leaves:
        // the rebuild must absorb the evicted hole without resurrecting it.
        let victim = NodeId(5);
        net.repair_failure(victim, &RepairConfig::default())
            .unwrap();
        let report = net.move_out_root().unwrap();
        assert_eq!(net.len(), 12);
        assert!(!net.graph().is_live(victim));
        assert!(!net.graph().is_live(report.old_root));
        invariants::check_growth(&net).unwrap();
        let v = validate_condition2(&net.view(), net.slots(), net.mode());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn root_rebuild_cost_is_linear_in_survivors() {
        let mut net = chain_net(20, 2);
        let report = net.move_out_root().unwrap();
        assert_eq!(report.rounds, 19);
    }
}
