#![warn(missing_docs)]

//! # dsnet — dynamic cluster-based sensor-network broadcast/multicast
//!
//! A full reproduction of *"Novel Broadcast/Multicast Protocols for
//! Dynamic Sensor Networks"* (IEEE IPDPS 2007): the self-constructing,
//! self-reconfiguring cluster architecture CNet(G), its incremental TDM
//! time-slot maintenance, and the collision-free-flooding broadcast and
//! multicast protocols, all executed against a round-synchronous radio
//! simulator with the paper's collision semantics.
//!
//! ## Quick start
//!
//! ```
//! use dsnet::{NetworkBuilder, Protocol};
//!
//! // 200 nodes on the paper's 10×10-unit field (1 unit = 100 m, 50 m radio
//! // range), deployed incrementally-connected with seed 7.
//! let network = NetworkBuilder::paper(200, 7).build().unwrap();
//!
//! // Broadcast from the sink with the paper's improved CFF protocol.
//! let out = network.broadcast(Protocol::ImprovedCff);
//! assert!(out.completed());
//!
//! // Compare against the DFO baseline of reference \[19\].
//! let dfo = network.broadcast(Protocol::Dfo);
//! assert!(out.rounds < dfo.rounds);
//! ```
//!
//! ## Layers
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | geometry | `dsnet-geom` | fields, deployments, spatial hashing |
//! | graph | `dsnet-graph` | unit-disk graphs, BFS, trees, Euler tours |
//! | radio | `dsnet-radio` | the §3.1 round/collision model, energy, failures |
//! | cluster | `dsnet-cluster` | CNet(G), BT(G), slots, move-in/out, MCNet |
//! | mobility | `dsnet-mobility` | trajectory models, incremental topology diffing, maintenance |
//! | protocols | `dsnet-protocols` | DFO, CFF (Alg 1), improved CFF (Alg 2), multicast |
//! | this crate | `dsnet` | [`SensorNetwork`], [`NetworkBuilder`], [`experiments`] |
//!
//! The [`experiments`] module regenerates every figure of the paper's
//! evaluation (Figures 8–11) plus the extension tables listed in
//! DESIGN.md; the `dsnet-bench` crate wraps them in Criterion benches and
//! the `figures` binary.

pub mod builder;
pub mod campaign;
pub mod experiments;
pub mod multinet;
pub mod network;
pub mod perf;
pub mod session;
pub mod viz;

pub use builder::{BuildError, GroupPlan, NetworkBuilder};
pub use multinet::{FailoverOutcome, MultiNet};
pub use network::{NetworkStats, Protocol, SensorNetwork};
pub use session::{CommandRecord, CommandStatus, NetSession, SessionCommand, SessionSpec};

// Re-export the layer crates so downstream users need a single dependency.
pub use dsnet_campaign as campaign_engine;
pub use dsnet_cluster as cluster;
pub use dsnet_geom as geom;
pub use dsnet_graph as graph;
pub use dsnet_metrics as metrics;
pub use dsnet_mobility as mobility;
pub use dsnet_protocols as protocols;
pub use dsnet_radio as radio;
