//! SVG rendering of a deployed network and its cluster structure.
//!
//! Produces a self-contained SVG string: radio links in light grey, CNet
//! tree edges in solid grey, backbone edges emphasised, nodes coloured by
//! status (heads red, gateways orange, pure members blue, sink outlined).
//! Handy for eyeballing deployments and for the README/paper-figure style
//! pictures; no external dependencies.

use crate::network::SensorNetwork;
use dsnet_cluster::NodeStatus;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct VizOptions {
    /// Pixels per field unit.
    pub scale: f64,
    /// Margin around the field, in pixels.
    pub margin: f64,
    /// Draw every radio link (can be dense).
    pub show_radio_links: bool,
    /// Node circle radius in pixels.
    pub node_radius: f64,
}

impl Default for VizOptions {
    fn default() -> Self {
        Self {
            scale: 60.0,
            margin: 20.0,
            show_radio_links: true,
            node_radius: 4.0,
        }
    }
}

/// Render `network` as an SVG document.
pub fn render_svg(network: &SensorNetwork, opts: &VizOptions) -> String {
    let net = network.net();
    let region = network.deployment().config.region;
    let w = region.width() * opts.scale + 2.0 * opts.margin;
    let h = region.height() * opts.scale + 2.0 * opts.margin;
    let px = |x: f64| opts.margin + x * opts.scale;
    let py = |y: f64| opts.margin + (region.height() - y) * opts.scale; // y up

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Radio links.
    if opts.show_radio_links {
        let _ = writeln!(svg, r##"<g stroke="#dddddd" stroke-width="0.6">"##);
        for (a, b) in net.graph().edges() {
            let (pa, pb) = (network.position(a), network.position(b));
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/>"#,
                px(pa.x),
                py(pa.y),
                px(pb.x),
                py(pb.y)
            );
        }
        let _ = writeln!(svg, "</g>");
    }

    // Tree edges: backbone emphasised.
    let _ = writeln!(svg, r#"<g stroke-linecap="round">"#);
    for u in net.tree().nodes() {
        if let Some(p) = net.tree().parent(u) {
            let backbone = net.status(u).in_backbone() && net.status(p).in_backbone();
            let (stroke, width) = if backbone {
                ("#555555", 2.0)
            } else {
                ("#aaaaaa", 0.9)
            };
            let (pu, pp) = (network.position(u), network.position(p));
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{stroke}" stroke-width="{width}"/>"#,
                px(pu.x),
                py(pu.y),
                px(pp.x),
                py(pp.y)
            );
        }
    }
    let _ = writeln!(svg, "</g>");

    // Nodes.
    for u in net.tree().nodes() {
        let p = network.position(u);
        let fill = match net.status(u) {
            NodeStatus::ClusterHead => "#d62728",
            NodeStatus::Gateway => "#ff7f0e",
            NodeStatus::PureMember => "#1f77b4",
        };
        let is_sink = u == net.root();
        let r = if is_sink {
            opts.node_radius * 1.8
        } else {
            opts.node_radius
        };
        let stroke = if is_sink {
            r#" stroke="black" stroke-width="1.5""#
        } else {
            ""
        };
        let _ = writeln!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{r:.1}" fill="{fill}"{stroke}><title>{u} {}</title></circle>"#,
            px(p.x),
            py(p.y),
            net.status(u)
        );
    }

    // Legend.
    let _ = writeln!(
        svg,
        r##"<g font-family="sans-serif" font-size="12">
<circle cx="14" cy="14" r="5" fill="#d62728"/><text x="24" y="18">cluster head</text>
<circle cx="114" cy="14" r="5" fill="#ff7f0e"/><text x="124" y="18">gateway</text>
<circle cx="194" cy="14" r="5" fill="#1f77b4"/><text x="204" y="18">pure member</text>
</g>"##
    );
    let _ = writeln!(svg, "</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    #[test]
    fn svg_contains_every_node_and_is_well_formed() {
        let net = NetworkBuilder::paper(60, 33).build().unwrap();
        let svg = render_svg(&net, &VizOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One circle per node plus three legend dots.
        let circles = svg.matches("<circle").count();
        assert_eq!(circles, 60 + 3);
        // Tree edges: n − 1 of them, plus radio links.
        assert!(svg.matches("<line").count() >= 59);
        // Statuses appear in the legend and titles.
        assert!(svg.contains("cluster head"));
    }

    #[test]
    fn radio_links_can_be_disabled() {
        let net = NetworkBuilder::paper(40, 34).build().unwrap();
        let with = render_svg(&net, &VizOptions::default());
        let without = render_svg(
            &net,
            &VizOptions {
                show_radio_links: false,
                ..Default::default()
            },
        );
        assert!(with.len() > without.len());
    }
}
