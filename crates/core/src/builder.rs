//! Building a [`SensorNetwork`] from a deployment description.

use crate::network::SensorNetwork;
use dsnet_cluster::{GroupId, McNet, ParentRule, SlotMode};
use dsnet_geom::{rng::derive_seed, Deployment, DeploymentConfig, DeploymentStrategy, Region};
use dsnet_graph::{unit_disk, NodeId};
use rand::Rng as _;
use std::fmt;

/// How multicast groups are assigned at build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupPlan {
    /// Number of groups, ids `0..groups`.
    pub groups: u16,
    /// Independent probability that a node joins each group.
    pub membership: f64,
}

/// Errors from [`NetworkBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A node arrived with no earlier node in radio range, so the arrival
    /// replay cannot attach it (only possible with non-incremental
    /// deployment strategies).
    DisconnectedArrival(NodeId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DisconnectedArrival(n) => {
                write!(f, "node {n} arrived out of range of the existing network")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for [`SensorNetwork`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    deployment: DeploymentConfig,
    parent_rule: ParentRule,
    slot_mode: SlotMode,
    group_plan: Option<GroupPlan>,
}

impl NetworkBuilder {
    /// The paper's setup: `n` nodes on the 10×10-unit field, 0.5-unit
    /// range, incrementally-connected arrivals.
    pub fn paper(n: usize, seed: u64) -> Self {
        Self {
            deployment: DeploymentConfig::paper(n, seed),
            parent_rule: ParentRule::default(),
            slot_mode: SlotMode::default(),
            group_plan: None,
        }
    }

    /// The paper's setup on a given square field side (8, 10 or 12).
    pub fn paper_field(side: f64, n: usize, seed: u64) -> Self {
        Self {
            deployment: DeploymentConfig::paper_field(side, n, seed),
            parent_rule: ParentRule::default(),
            slot_mode: SlotMode::default(),
            group_plan: None,
        }
    }

    /// Fully custom deployment.
    pub fn custom(region: Region, n: usize, range: f64, seed: u64) -> Self {
        Self {
            deployment: DeploymentConfig {
                region,
                n,
                range,
                strategy: DeploymentStrategy::IncrementalConnected,
                seed,
            },
            parent_rule: ParentRule::default(),
            slot_mode: SlotMode::default(),
            group_plan: None,
        }
    }

    /// Override the placement strategy.
    pub fn strategy(mut self, s: DeploymentStrategy) -> Self {
        self.deployment.strategy = s;
        self
    }

    /// Override the parent tie-break rule.
    pub fn parent_rule(mut self, r: ParentRule) -> Self {
        self.parent_rule = r;
        self
    }

    /// Override the slot interference model.
    pub fn slot_mode(mut self, m: SlotMode) -> Self {
        self.slot_mode = m;
        self
    }

    /// Assign multicast groups at build time.
    pub fn groups(mut self, plan: GroupPlan) -> Self {
        self.group_plan = Some(plan);
        self
    }

    /// Generate the deployment, replay the arrivals through
    /// `node-move-in`, and return the ready network.
    pub fn build(self) -> Result<SensorNetwork, BuildError> {
        let deployment = Deployment::generate(self.deployment);
        let full = unit_disk::graph_of_deployment(&deployment);
        let mut group_rng =
            dsnet_geom::rng::rng_from_seed(derive_seed(self.deployment.seed, 0xC0FFEE));

        let mut mc = McNet::new(dsnet_cluster::ClusterNet::new(
            self.parent_rule,
            self.slot_mode,
        ));
        let mut reports = Vec::with_capacity(deployment.len());
        for i in 0..deployment.len() {
            let u = NodeId(i as u32);
            let earlier: Vec<NodeId> = full
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| v < u)
                .collect();
            if i > 0 && earlier.is_empty() {
                return Err(BuildError::DisconnectedArrival(u));
            }
            let groups: Vec<GroupId> = match self.group_plan {
                Some(plan) => (0..plan.groups)
                    .filter(|_| group_rng.random_bool(plan.membership.clamp(0.0, 1.0)))
                    .collect(),
                None => Vec::new(),
            };
            let report = mc
                .move_in(if i == 0 { &[] } else { &earlier }, &groups)
                .expect("arrival replay cannot fail with validated neighbours");
            reports.push(report);
        }
        Ok(SensorNetwork::from_parts(deployment, mc, reports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_build_succeeds_and_spans() {
        let net = NetworkBuilder::paper(150, 3).build().unwrap();
        assert_eq!(net.len(), 150);
        assert_eq!(net.net().tree().len(), 150);
        dsnet_cluster::invariants::check_growth(net.net()).unwrap();
    }

    #[test]
    fn builds_are_deterministic() {
        let a = NetworkBuilder::paper(80, 9).build().unwrap();
        let b = NetworkBuilder::paper(80, 9).build().unwrap();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn group_plan_populates_groups() {
        let net = NetworkBuilder::paper(100, 5)
            .groups(GroupPlan {
                groups: 3,
                membership: 0.3,
            })
            .build()
            .unwrap();
        let total: usize = (0..3).map(|g| net.mcnet().group_members(g).len()).sum();
        assert!(total > 0, "some nodes should have joined a group");
        net.mcnet().check_relay_consistency().unwrap();
    }

    #[test]
    fn grid_jitter_strategy_builds_when_dense() {
        // Dense grid on a small field: every arrival is in range of an
        // earlier node with overwhelming probability; retry seeds until one
        // works to keep the test deterministic-ish but honest about the
        // error path.
        let mut ok = false;
        for seed in 0..20 {
            let r = NetworkBuilder::custom(Region::square(2.0), 60, 0.5, seed)
                .strategy(DeploymentStrategy::GridJitter)
                .build();
            if r.is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "no dense grid-jitter build succeeded in 20 seeds");
    }

    #[test]
    fn paper_field_sizes() {
        for side in [8.0, 10.0, 12.0] {
            let net = NetworkBuilder::paper_field(side, 64, 1).build().unwrap();
            assert_eq!(net.len(), 64);
        }
    }
}
