//! The high-level [`SensorNetwork`] facade.

use dsnet_cluster::invariants;
use dsnet_cluster::move_out::{MoveOutError, MoveOutReport};
use dsnet_cluster::net::MoveInError;
use dsnet_cluster::repair::{RepairConfig, RepairError, RepairReport};
use dsnet_cluster::{ClusterNet, GroupId, McNet, MoveInReport};
use dsnet_geom::{Deployment, Point2};
use dsnet_graph::{degree, NodeId};
use dsnet_protocols::knowledge::{KnowledgeCache, NetKnowledge};
use dsnet_protocols::runner::{self, BroadcastOutcome, RunConfig};
use dsnet_radio::Trace;
use std::sync::Arc;

/// Which broadcast protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Depth-first-order Eulerian-tour baseline of \[19\].
    Dfo,
    /// Algorithm 1: collision-free flooding over the whole CNet(G).
    BasicCff,
    /// Algorithm 2: the paper's improved two-phase CFF (default choice).
    ImprovedCff,
    /// Algorithm 1 hardened with bounded-retry NACK/retransmit epochs for
    /// lossy channels.
    ReliableCff,
}

/// Structural summary of a built network (the quantities plotted in
/// Figures 10 and 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    /// Attached nodes.
    pub nodes: usize,
    /// Radio links.
    pub edges: usize,
    /// Cluster heads (= clusters).
    pub heads: usize,
    /// Gateways.
    pub gateways: usize,
    /// Pure members.
    pub members: usize,
    /// |BT(G)|.
    pub backbone_size: usize,
    /// Height of BT(G).
    pub backbone_height: u32,
    /// Height of CNet(G).
    pub cnet_height: u32,
    /// `D`: max degree of G.
    pub max_degree: usize,
    /// `d`: max degree of G(V_BT).
    pub backbone_max_degree: usize,
    /// `δ`: largest b-time-slot.
    pub delta_b: u32,
    /// `Δ`: largest l-time-slot.
    pub delta_l: u32,
}

/// A deployed, structured, runnable sensor network.
#[derive(Debug, Clone)]
pub struct SensorNetwork {
    deployment: Deployment,
    /// Positions by node id; ids past the original deployment come from
    /// later joins. Entries for departed nodes linger harmlessly.
    positions: Vec<Point2>,
    mc: McNet,
    build_reports: Vec<MoveInReport>,
    /// Version-keyed knowledge snapshot shared by every protocol run over
    /// an unchanged structure; invalidated automatically (by structure
    /// version) whenever churn, repair or mobility mutates the CNet.
    knowledge: KnowledgeCache,
}

impl SensorNetwork {
    pub(crate) fn from_parts(
        deployment: Deployment,
        mc: McNet,
        build_reports: Vec<MoveInReport>,
    ) -> Self {
        let positions = deployment.positions.clone();
        Self {
            deployment,
            positions,
            mc,
            build_reports,
            knowledge: KnowledgeCache::new(),
        }
    }

    /// Adopt a structure that was maintained through motion: `positions`
    /// are the *current* (post-motion) coordinates indexed by node id, not
    /// the deployment's initial ones.
    pub(crate) fn from_motion(
        deployment: Deployment,
        positions: Vec<Point2>,
        mc: McNet,
        build_reports: Vec<MoveInReport>,
    ) -> Self {
        Self {
            deployment,
            positions,
            mc,
            build_reports,
            knowledge: KnowledgeCache::new(),
        }
    }

    // ----- structure access -------------------------------------------------

    /// The cluster structure.
    pub fn net(&self) -> &ClusterNet {
        self.mc.net()
    }

    /// The multicast overlay (groups + relay lists).
    pub fn mcnet(&self) -> &McNet {
        &self.mc
    }

    /// The geometric deployment this network was built from.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Current number of attached nodes.
    pub fn len(&self) -> usize {
        self.net().len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sink (root of CNet(G)).
    pub fn sink(&self) -> NodeId {
        self.net().root()
    }

    /// Physical position of a node.
    pub fn position(&self, u: NodeId) -> Point2 {
        self.positions[u.index()]
    }

    /// Per-node move-in reports from the initial build (Theorem 2 data).
    pub fn build_reports(&self) -> &[MoveInReport] {
        &self.build_reports
    }

    /// The version of the current cluster structure. Every mutation path
    /// (churn, repair, mobility maintenance) bumps it — the PR 4
    /// pessimistic-bump contract — so equal versions imply identical
    /// structure.
    pub fn structure_version(&self) -> u64 {
        self.net().structure_version()
    }

    /// The current knowledge snapshot, served through the network's
    /// version-keyed [`KnowledgeCache`] as a shared immutable [`Arc`].
    ///
    /// This is the tenant-facing read surface of the server: any number
    /// of concurrent readers may hold the returned `Arc` while a mutator
    /// churns the structure — they keep observing the old, internally
    /// consistent version, and the next call after the mutation serves a
    /// freshly built snapshot under the bumped
    /// [`SensorNetwork::structure_version`].
    pub fn knowledge(&self) -> Arc<NetKnowledge> {
        self.knowledge.get(self.net())
    }

    /// Lifetime `(hits, misses, patched)` of the network's knowledge
    /// cache; `patched` counts the misses served by the dirty-scoped
    /// patch path rather than a full rebuild.
    pub fn knowledge_stats(&self) -> (u64, u64, u64) {
        self.knowledge.stats()
    }

    /// Partition the attached nodes into a deterministic grid of spatial
    /// cells for sharded radio delivery (`RunConfig::shards`). The field
    /// is cut into the smallest `k × k` grid with `k² ≥ target_cells`,
    /// cells ordered row-major, node ids ascending within each cell;
    /// nodes that drifted outside the region (mobility) clamp to the
    /// border cells. Empty cells are kept — the engine treats them as
    /// no-ops, and the partition is invisible in every run output.
    pub fn shard_plan(&self, target_cells: usize) -> Arc<dsnet_radio::ShardPlan> {
        let region = &self.deployment.config.region;
        let (w, h) = (region.width(), region.height());
        let k = (target_cells.max(1) as f64).sqrt().ceil() as usize;
        let k = if w > 0.0 && h > 0.0 { k.max(1) } else { 1 };
        let (cw, ch) = (w / k as f64, h / k as f64);
        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); k * k];
        for u in self.net().graph().nodes() {
            let p = self.positions[u.index()];
            let cx = if cw > 0.0 {
                ((p.x / cw).floor() as i64).clamp(0, k as i64 - 1) as usize
            } else {
                0
            };
            let cy = if ch > 0.0 {
                ((p.y / ch).floor() as i64).clamp(0, k as i64 - 1) as usize
            } else {
                0
            };
            cells[cy * k + cx].push(u);
        }
        Arc::new(dsnet_radio::ShardPlan::from_cells(cells))
    }

    /// Structural summary (Figures 10/11 quantities).
    pub fn stats(&self) -> NetworkStats {
        let net = self.net();
        let (heads, gateways, members) = net.status_counts();
        let bt = net.backbone_tree();
        NetworkStats {
            nodes: net.len(),
            edges: net.graph().edge_count(),
            heads,
            gateways,
            members,
            backbone_size: bt.len(),
            backbone_height: bt.height(),
            cnet_height: net.height(),
            max_degree: degree::max_degree(net.graph()),
            backbone_max_degree: degree::induced_max_degree(net.graph(), &net.backbone_nodes()),
            delta_b: net.delta_b(),
            delta_l: net.delta_l(),
        }
    }

    /// Run all structural invariant checks (panics on violation; meant for
    /// tests and examples).
    pub fn check(&self) {
        invariants::check_core(self.net()).expect("core invariants");
        self.mc.check_relay_consistency().expect("relay lists");
    }

    // ----- protocols --------------------------------------------------------

    /// Broadcast from the sink with default settings.
    pub fn broadcast(&self, protocol: Protocol) -> BroadcastOutcome {
        self.broadcast_from(protocol, self.sink(), &RunConfig::default())
    }

    /// Broadcast from an arbitrary source with custom settings.
    ///
    /// The knowledge snapshot feeding the run is served by the network's
    /// version-keyed [`KnowledgeCache`]: repeated broadcasts over an
    /// unchanged structure skip the (dominant) snapshot rebuild, while any
    /// structural mutation invalidates the cache automatically.
    pub fn broadcast_from(
        &self,
        protocol: Protocol,
        source: NodeId,
        cfg: &RunConfig,
    ) -> BroadcastOutcome {
        let k = self.knowledge.get(self.net());
        match protocol {
            Protocol::Dfo => runner::run_dfo_with(self.net(), &k, source, cfg),
            Protocol::BasicCff => runner::run_cff_basic_with(self.net(), &k, source, cfg),
            Protocol::ImprovedCff => runner::run_improved_with(self.net(), &k, source, cfg),
            Protocol::ReliableCff => runner::run_cff_reliable_with(self.net(), &k, source, cfg),
        }
    }

    /// [`Self::broadcast_from`], additionally returning the run's event
    /// trace — including any diagnostic warnings (e.g. the benign k=1
    /// leaf-window collision note), which travel on the trace instead of
    /// stderr.
    pub fn broadcast_traced(
        &self,
        protocol: Protocol,
        source: NodeId,
        cfg: &RunConfig,
    ) -> (BroadcastOutcome, Trace) {
        let k = self.knowledge.get(self.net());
        match protocol {
            Protocol::Dfo => runner::run_dfo_traced(self.net(), &k, source, cfg),
            Protocol::BasicCff => runner::run_cff_basic_traced(self.net(), &k, source, cfg),
            Protocol::ImprovedCff => runner::run_improved_traced(self.net(), &k, source, cfg),
            Protocol::ReliableCff => runner::run_cff_reliable_traced(self.net(), &k, source, cfg),
        }
    }

    /// Multicast to `group` from the sink.
    pub fn multicast(&self, group: GroupId) -> BroadcastOutcome {
        self.multicast_from(group, self.sink(), &RunConfig::default())
    }

    /// Multicast to `group` from an arbitrary source with custom settings.
    /// The base knowledge snapshot comes from the network's cache (group
    /// relay tables are applied on top per call).
    pub fn multicast_from(
        &self,
        group: GroupId,
        source: NodeId,
        cfg: &RunConfig,
    ) -> BroadcastOutcome {
        let k = self.knowledge.get(self.net());
        runner::run_multicast_with(&self.mc, &k, source, group, cfg)
    }

    // ----- dynamics ---------------------------------------------------------

    /// A new sensor powers up at `position` (with `groups` memberships) and
    /// joins via `node-move-in`. Fails if nothing is in radio range.
    pub fn join(
        &mut self,
        position: Point2,
        groups: &[GroupId],
    ) -> Result<MoveInReport, MoveInError> {
        let range = self.deployment.config.range;
        let neighbors: Vec<NodeId> = self
            .net()
            .tree()
            .nodes()
            .filter(|&u| self.positions[u.index()].in_range(position, range))
            .collect();
        let report = self.mc.move_in(&neighbors, groups)?;
        if self.positions.len() <= report.node.index() {
            self.positions.resize(report.node.index() + 1, position);
        }
        self.positions[report.node.index()] = position;
        Ok(report)
    }

    /// A sensor powers down and leaves via `node-move-out`.
    pub fn leave(&mut self, node: NodeId) -> Result<MoveOutReport, MoveOutError> {
        self.mc.move_out(node)
    }

    /// The sink itself powers down: the structure is rebuilt from a
    /// surviving node (the paper's deferred case, see
    /// [`ClusterNet::move_out_root`]).
    pub fn leave_sink(&mut self) -> Result<dsnet_cluster::RootMoveOutReport, MoveOutError> {
        self.mc.move_out_root()
    }

    /// A node crashed silently (no `node-move-out` ran): detect it within
    /// the configured silence window, evict it, and re-home its orphans.
    /// Returns the repair accounting (see
    /// [`RepairReport`](dsnet_cluster::repair::RepairReport)).
    pub fn repair_crash(
        &mut self,
        failed: NodeId,
        cfg: &RepairConfig,
    ) -> Result<RepairReport, RepairError> {
        self.mc.repair_failure(failed, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GroupPlan, NetworkBuilder};

    fn build(n: usize, seed: u64) -> SensorNetwork {
        NetworkBuilder::paper(n, seed).build().unwrap()
    }

    #[test]
    fn stats_are_consistent() {
        let net = build(120, 2);
        let s = net.stats();
        assert_eq!(s.nodes, 120);
        assert_eq!(s.heads + s.gateways + s.members, 120);
        assert_eq!(s.backbone_size, s.heads + s.gateways);
        assert!(s.backbone_height <= s.cnet_height);
        assert!(s.backbone_max_degree <= s.max_degree);
        net.check();
    }

    #[test]
    fn all_protocols_complete_on_udg() {
        let net = build(100, 4);
        for p in [
            Protocol::Dfo,
            Protocol::BasicCff,
            Protocol::ImprovedCff,
            Protocol::ReliableCff,
        ] {
            let out = net.broadcast(p);
            assert!(out.completed(), "{p:?}: {}/{}", out.delivered, out.targets);
        }
    }

    #[test]
    fn repair_crash_restores_invariants() {
        let mut net = build(80, 4);
        // Crash a non-root backbone node.
        let victim = net
            .net()
            .backbone_nodes()
            .into_iter()
            .find(|&u| u != net.sink())
            .expect("a non-root backbone node");
        let report = net.repair_crash(victim, &RepairConfig::default()).unwrap();
        assert_eq!(report.failed, victim);
        assert_eq!(net.len(), 79);
        assert!(report.total_rounds() >= report.detection_rounds);
        net.check();
        // The healed network still broadcasts to everyone.
        let out = net.broadcast(Protocol::ImprovedCff);
        assert!(out.completed());
    }

    #[test]
    fn improved_cff_beats_dfo_on_paper_networks() {
        let net = build(250, 6);
        let cff = net.broadcast(Protocol::ImprovedCff);
        let dfo = net.broadcast(Protocol::Dfo);
        assert!(cff.rounds < dfo.rounds);
        assert!(cff.max_awake() < dfo.max_awake());
    }

    #[test]
    fn join_then_leave_roundtrip() {
        let mut net = build(60, 8);
        let anchor = net.position(net.sink());
        let report = net
            .join(Point2::new(anchor.x + 0.1, anchor.y), &[2])
            .unwrap();
        assert_eq!(net.len(), 61);
        net.check();
        net.leave(report.node).unwrap();
        assert_eq!(net.len(), 60);
        net.check();
    }

    #[test]
    fn join_out_of_range_fails() {
        let mut net = build(30, 8);
        // The field is 10×10 and deployments start near the centre; a point
        // pinned into a far corner of a 100×100 region is out of range.
        let far = Point2::new(9.99, 9.99);
        let in_range = net
            .net()
            .tree()
            .nodes()
            .any(|u| net.position(u).in_range(far, 0.5));
        if !in_range {
            assert!(net.join(far, &[]).is_err());
        }
    }

    #[test]
    fn multicast_completes_and_costs_less_awake_energy() {
        let net = NetworkBuilder::paper(150, 12)
            .groups(GroupPlan {
                groups: 2,
                membership: 0.1,
            })
            .build()
            .unwrap();
        let mcast = net.multicast(0);
        assert!(mcast.delivery_ratio() >= 0.99, "{}", mcast.delivery_ratio());
        let bcast = net.broadcast(Protocol::ImprovedCff);
        // Pruning keeps total listening work below the full broadcast.
        let mcast_work = mcast.energy.total_listen + mcast.energy.total_tx;
        let bcast_work = bcast.energy.total_listen + bcast.energy.total_tx;
        assert!(mcast_work <= bcast_work, "{mcast_work} > {bcast_work}");
    }
}
