//! Multi-sink operation: several cluster-nets over the same network.
//!
//! Section 2 of the paper: *"In order to boost the robustness of the
//! proposed structure, more than one cluster-net may be selected in the
//! same way from different roots (sinks) so that if one cluster-net fails
//! others can still be used."*
//!
//! [`MultiNet`] builds `k` independent CNet structures over one physical
//! deployment (one per sink, each from a BFS attachment order rooted at
//! its sink) and broadcasts with failover: if the primary structure's
//! broadcast leaves nodes uncovered (node failures on its backbone), the
//! next sink's structure is used for the stragglers, and so on. Each
//! attempt costs that structure's normal broadcast rounds.

use crate::network::SensorNetwork;
use dsnet_cluster::{ClusterNet, ParentRule, SlotMode};
use dsnet_graph::{traversal, NodeId};
use dsnet_protocols::runner::{run_improved_detailed, BroadcastOutcome, RunConfig};

/// Several cluster structures over the same connectivity graph.
#[derive(Debug, Clone)]
pub struct MultiNet {
    nets: Vec<ClusterNet>,
}

impl MultiNet {
    /// Build one structure per sink over the connectivity graph of
    /// `network`. Sinks must be distinct live nodes.
    pub fn from_network(network: &SensorNetwork, sinks: &[NodeId]) -> Self {
        assert!(!sinks.is_empty(), "at least one sink required");
        let base = network.net();
        let mut nets = Vec::with_capacity(sinks.len());
        for &sink in sinks {
            assert!(base.graph().is_live(sink), "sink {sink} is not live");
            let order = traversal::bfs(base.graph(), sink).order;
            let net = ClusterNet::build_over(
                base.graph().clone(),
                &order,
                ParentRule::LowestId,
                SlotMode::Strict,
            )
            .expect("BFS order always attaches");
            nets.push(net);
        }
        Self { nets }
    }

    /// The per-sink structures, primary first.
    pub fn structures(&self) -> &[ClusterNet] {
        &self.nets
    }

    /// The sinks, in structure order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nets.iter().map(|n| n.root()).collect()
    }

    /// Result of a failover broadcast.
    pub fn broadcast_failover(&self, cfg: &RunConfig) -> FailoverOutcome {
        let mut attempts = Vec::new();
        let mut covered: Vec<bool> = Vec::new();
        let mut total_rounds = 0u64;
        for net in &self.nets {
            let (out, delivered_now) = run_improved_detailed(net, net.root(), cfg);
            total_rounds += out.rounds;
            // Merge coverage: a node counts as covered if any structure
            // delivered to it.
            if covered.is_empty() {
                covered = delivered_now;
            } else {
                for (c, d) in covered.iter_mut().zip(delivered_now) {
                    *c = *c || d;
                }
            }
            let done = covered.iter().filter(|&&c| c).count();
            attempts.push(out);
            if done == self.nets[0].len() {
                break;
            }
        }
        let delivered = covered.iter().filter(|&&c| c).count();
        FailoverOutcome {
            attempts,
            delivered,
            targets: self.nets[0].len(),
            total_rounds,
        }
    }
}

/// Outcome of [`MultiNet::broadcast_failover`].
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Per-structure outcomes, in the order tried.
    pub attempts: Vec<BroadcastOutcome>,
    /// Nodes covered by the union of all attempts.
    pub delivered: usize,
    /// Number of live nodes.
    pub targets: usize,
    /// Sum of rounds over the attempts actually made.
    pub total_rounds: u64,
}

impl FailoverOutcome {
    /// Fraction of the network the union of attempts covered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.targets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.targets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use dsnet_cluster::invariants;
    use dsnet_protocols::runner::run_improved;

    fn sinks_for(net: &SensorNetwork, k: usize) -> Vec<NodeId> {
        // The original sink plus the geometrically farthest nodes.
        let mut sinks = vec![net.sink()];
        let mut nodes: Vec<NodeId> = net.net().tree().nodes().collect();
        nodes.sort_by(|&a, &b| {
            net.position(b)
                .dist_sq(net.position(net.sink()))
                .total_cmp(&net.position(a).dist_sq(net.position(net.sink())))
        });
        sinks.extend(nodes.into_iter().filter(|&u| u != net.sink()).take(k - 1));
        sinks
    }

    #[test]
    fn multiple_structures_are_all_valid() {
        let network = NetworkBuilder::paper(120, 61).build().unwrap();
        let multi = MultiNet::from_network(&network, &sinks_for(&network, 3));
        assert_eq!(multi.structures().len(), 3);
        for net in multi.structures() {
            invariants::check_growth(net).unwrap();
            assert_eq!(net.len(), 120);
        }
        // Distinct sinks.
        let sinks = multi.sinks();
        assert_eq!(
            sinks.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn failover_without_failures_uses_one_attempt() {
        let network = NetworkBuilder::paper(100, 62).build().unwrap();
        let multi = MultiNet::from_network(&network, &sinks_for(&network, 2));
        let out = multi.broadcast_failover(&RunConfig::default());
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.delivered, out.targets);
    }

    #[test]
    fn failover_recovers_coverage_lost_by_the_primary() {
        let network = NetworkBuilder::paper(150, 63).build().unwrap();
        let multi = MultiNet::from_network(&network, &sinks_for(&network, 3));

        // Kill a gateway near the primary sink: the primary structure loses
        // part of its tree, a far-rooted structure routes differently.
        let primary = &multi.structures()[0];
        let victim = primary
            .tree()
            .nodes()
            .find(|&u| {
                primary.status(u).in_backbone()
                    && primary.tree().depth(u) == 1
                    && !dsnet_graph::components::disconnects_without(primary.graph(), u)
            })
            .expect("a non-cut depth-1 backbone node exists");
        let mut cfg = RunConfig::default();
        cfg.failures.kill_node(victim, 1);

        let single = run_improved(primary, primary.root(), &cfg);
        let multi_out = multi.broadcast_failover(&cfg);
        assert!(
            multi_out.delivered >= single.delivered,
            "failover must never cover less"
        );
        // The victim can never receive; everything else should be reachable
        // through some structure.
        assert!(multi_out.delivered >= multi_out.targets - 1);
    }
}
