//! The `dsnet perf` benchmark suite and its deterministic ledger.
//!
//! Runs a fixed set of seeded scenarios over the hot simulation paths and
//! writes a JSON *ledger* (`BENCH_<date>.json`) with one entry per
//! scenario.  Every entry carries two kinds of fields:
//!
//! * **deterministic counters** — `nodes`, `reps`, `rounds`, `delivered`,
//!   `targets`.  These are pure functions of the seeds and must be
//!   byte-identical across machines and `--threads` values; CI compares
//!   them exactly against the committed baseline.
//! * **timing fields** — `wall_ms`, `rounds_per_sec`, `peak_rss_kb` (and
//!   the top-level `threads`).  These vary by machine; CI only checks
//!   that `rounds_per_sec` has not regressed by more than the configured
//!   fraction against the committed baseline (which assumes comparable
//!   runners — see DESIGN.md §11).
//!
//! [`render_ledger`] can omit the timing fields entirely
//! (`include_timing = false`), which is how the thread-count determinism
//! pin works: two `dsnet perf --quick` runs on 1 and 2 threads must
//! render identically modulo timing.

use crate::campaign;
use crate::campaign_engine::{
    CampaignSpec, ChurnTemplate, FailureTemplate, LossSpec, MobilitySpec, ProtocolSpec,
};
use crate::protocols::runner::RunConfig;
use crate::{NetworkBuilder, Protocol};
use dsnet_geom::rng::derive_seed;
use dsnet_geom::{Deployment, DeploymentConfig};
use dsnet_mobility::{MobileNetwork, MobilityConfig, RandomWaypoint, WaypointParams};
use std::fmt::Write as _;
use std::time::Instant;

/// Options for a perf-suite run.
#[derive(Debug, Clone, Default)]
pub struct PerfOptions {
    /// Shrink every scenario (fewer nodes, reps, epochs) so the whole
    /// suite finishes in a few seconds.  Quick ledgers are only
    /// comparable to other quick ledgers.
    pub quick: bool,
    /// Worker threads for the campaign-driven scenarios (0 = available
    /// parallelism).  Changes timing only, never counters.
    pub threads: usize,
    /// Override the ledger date (`YYYY-MM-DD`); defaults to today (UTC).
    pub date: Option<String>,
}

/// One benchmark scenario's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Stable scenario name (ledger key).
    pub name: &'static str,
    /// Deployment size (largest `n` the scenario simulates).
    pub nodes: u64,
    /// Repetitions (broadcast runs or campaign trials) performed.
    pub reps: u64,
    /// Total simulated rounds across all repetitions (deterministic).
    pub rounds: u64,
    /// Total targets delivered across all repetitions (deterministic).
    pub delivered: u64,
    /// Total intended receivers across all repetitions (deterministic).
    pub targets: u64,
    /// Wall-clock for the scenario, milliseconds (timing).
    pub wall_ms: f64,
    /// Simulated rounds per wall-clock second (timing).
    pub rounds_per_sec: f64,
    /// Maintenance breakdown for mobility scenarios (`None` elsewhere).
    pub maintenance: Option<MaintenanceBreakdown>,
    /// Server breakdown for the `serve_sessions` scenario (`None`
    /// elsewhere; populated by `dsnet-server`).
    pub server: Option<ServeBreakdown>,
}

/// Measurements of the `serve_sessions` load-test scenario (driven by
/// `dsnet-server`, which appends the scenario to the core suite's
/// ledger).
///
/// Like [`MaintenanceBreakdown`], the count fields are pure functions of
/// the seeds — CI gates them exactly — while the rate/latency fields are
/// machine-dependent timing and are omitted from timing-free renders.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBreakdown {
    /// Concurrent sessions hosted (all alive at once; deterministic).
    pub sessions: u64,
    /// Total wire commands executed across sessions (deterministic).
    pub commands: u64,
    /// Client threads driving the load (configuration; deterministic).
    pub client_threads: u64,
    /// Sessions created+driven+destroyed per wall-clock second (timing).
    pub sessions_per_sec: f64,
    /// Median client-observed command round-trip, microseconds (timing).
    pub cmd_p50_us: f64,
    /// p99 client-observed command round-trip, microseconds (timing).
    pub cmd_p99_us: f64,
    /// p999 client-observed command round-trip, microseconds (timing).
    pub cmd_p999_us: f64,
    /// Log2 latency histogram: bucket `i` counts commands whose
    /// round-trip fell in `[2^i, 2^(i+1))` microseconds; trailing empty
    /// buckets are trimmed (timing).
    pub cmd_hist_us: Vec<u64>,
}

/// Per-phase maintenance measurements of a mobility scenario, harvested
/// from one standalone [`MobileNetwork`] drive that replicates the
/// campaign's first trial (same deployment, trajectory and epoch count).
///
/// The count fields are pure functions of the seeds — CI compares them
/// exactly, like the scenario counters. The `*_ms` fields are wall-clock
/// phase breakdowns ([`dsnet_mobility::MaintenanceTimings`] sums) and are
/// omitted from timing-free renders.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceBreakdown {
    /// Total `node-move-out`/`move-in` reconfigurations (deterministic).
    pub reconfigs: u64,
    /// Total stranded nodes re-homed (deterministic).
    pub rehomed: u64,
    /// Total edge appear/disappear events (deterministic).
    pub edge_events: u64,
    /// Total slot-value changes observed (deterministic).
    pub slot_churn: u64,
    /// Nodes re-verified by the dirty-scoped audit (deterministic).
    pub audit_scope: u64,
    /// Epochs that fell back to a full-structure audit (deterministic).
    pub full_audits: u64,
    /// Knowledge-cache hits over the probe broadcasts (deterministic).
    pub cache_hits: u64,
    /// Knowledge-cache misses over the probe broadcasts (deterministic).
    pub cache_misses: u64,
    /// Cache misses served by the dirty-scoped patch path instead of a
    /// full rebuild (deterministic; subset of `cache_misses`).
    pub knowledge_patches: u64,
    /// Total nodes recomputed across all patched closures
    /// (deterministic).
    pub knowledge_scope: u64,
    /// Patch attempts that fell back to a full rebuild (deterministic).
    pub knowledge_fallbacks: u64,
    /// Broadcast-probe wall-clock — knowledge `get` + engine run, ms
    /// (timing).
    pub probe_ms: f64,
    /// Topology-diff phase wall-clock, ms (timing).
    pub diff_ms: f64,
    /// Structure-repair phase wall-clock, ms (timing).
    pub repair_ms: f64,
    /// Slot-churn accounting wall-clock, ms (timing).
    pub slots_ms: f64,
    /// Invariant-audit wall-clock, ms (timing).
    pub audit_ms: f64,
}

/// A full perf-suite run: header plus one [`ScenarioResult`] per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// Ledger schema identifier (bumped on incompatible format changes).
    pub schema: &'static str,
    /// Civil date of the run, `YYYY-MM-DD` (UTC).
    pub date: String,
    /// Whether the suite ran with `--quick` sizes.
    pub quick: bool,
    /// Worker threads used for campaign-driven scenarios (timing).
    pub threads: usize,
    /// Peak resident set of the process, KiB (timing; 0 if unknown).
    pub peak_rss_kb: u64,
    /// Scenario measurements, in fixed suite order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Current ledger schema identifier.
pub const SCHEMA: &str = "dsnet-bench-ledger/2";

/// The previous schema: no maintenance breakdown, no `mobility_400ep`
/// scenario. [`compare`] still accepts v1 baselines for the counter
/// fields both schemas share.
pub const SCHEMA_V1: &str = "dsnet-bench-ledger/1";

/// Scenarios added after the last schema bump: missing from an older
/// same-schema baseline is a note, not a failure (see [`compare`]).
const RECENT_SCENARIOS: &[&str] = &["mobility_bcast_10k"];

/// Run the full fixed suite and return the ledger.
///
/// Scenario roster (full / `--quick` sizes):
///
/// | name | what it exercises | full | quick |
/// |---|---|---|---|
/// | `static_cff` | engine inner loop + knowledge cache, improved CFF | 500 n × 1200 reps | 120 n × 20 reps |
/// | `static_cff_10k` | SoA engine + sharded delivery on a density-scaled field | 10k n × 20 reps | 2k n × 3 reps |
/// | `static_cff_100k` | the 100k-node tentpole: same path at full scale | 100k n × 2 reps | 20k n × 1 rep |
/// | `static_dfo` | DFO token walk on the same deployment | 500 n × 60 reps | 120 n × 5 reps |
/// | `lossy_rcff_repair` | reliable CFF, 10% loss, backbone failure + repair, via the campaign engine | 150 n × 150 reps | 50 n × 2 reps |
/// | `mobility_100ep` | random-waypoint motion + live maintenance, via the campaign engine | 120 n × 3 reps × 100 epochs | 40 n × 2 reps × 10 epochs |
/// | `mobility_400ep` | same path, 4× the motion history (long-horizon maintenance) | 120 n × 2 reps × 400 epochs | 40 n × 1 rep × 20 epochs |
/// | `mobility_bcast_10k` | broadcast every epoch under waypoint motion: the dirty-scoped knowledge patch path | 10k n × 24 epochs | 2k n × 6 epochs |
pub fn run_suite(opts: &PerfOptions) -> Ledger {
    let scenarios = vec![
        run_static(opts, "static_cff", Protocol::ImprovedCff),
        run_static_scaled(opts, "static_cff_10k"),
        run_static_scaled(opts, "static_cff_100k"),
        run_static(opts, "static_dfo", Protocol::Dfo),
        run_lossy_rcff_repair(opts),
        run_mobility(opts, "mobility_100ep"),
        run_mobility(opts, "mobility_400ep"),
        run_mobility_bcast(opts),
    ];
    Ledger {
        schema: SCHEMA,
        date: opts.date.clone().unwrap_or_else(today_utc),
        quick: opts.quick,
        threads: opts.threads,
        peak_rss_kb: peak_rss_kb(),
        scenarios,
    }
}

/// Static deployment, repeated sink broadcasts with a warm knowledge
/// cache — the tentpole hot path.
fn run_static(opts: &PerfOptions, name: &'static str, protocol: Protocol) -> ScenarioResult {
    let nodes = if opts.quick { 120 } else { 500 };
    // Full-suite reps are sized so each scenario runs long enough
    // (≳100 ms) that the CI regression gate is not dominated by timer
    // noise.
    let reps: u64 = match (name, opts.quick) {
        ("static_cff", false) => 1200,
        ("static_cff", true) => 20,
        (_, false) => 60,
        (_, true) => 5,
    };
    let net = NetworkBuilder::paper_field(10.0, nodes, 7)
        .build()
        .expect("incremental deployments always build");
    let cfg = RunConfig {
        record_trace: false,
        ..RunConfig::default()
    };
    let sink = net.sink();
    best_of(name, nodes as u64, reps, passes(opts), || {
        let (mut rounds, mut delivered, mut targets) = (0u64, 0u64, 0u64);
        for _ in 0..reps {
            let out = net.broadcast_from(protocol, sink, &cfg);
            rounds += out.rounds;
            delivered += out.delivered as u64;
            targets += out.targets as u64;
        }
        (rounds, delivered, targets)
    })
}

/// Density-scaled unit-disk fields at 10k/100k nodes: the struct-of-arrays
/// engine with cell-sharded delivery and sleep skipping, warm knowledge
/// cache. The field side grows as `sqrt(n / 5)` so node density (and
/// therefore per-node degree) stays constant while `n` scales — these
/// scenarios measure the engine's per-round cost, not a densifying graph.
/// `--threads` selects the intra-run worker count; the counters are
/// thread-invariant by the engine's determinism contract.
fn run_static_scaled(opts: &PerfOptions, name: &'static str) -> ScenarioResult {
    let (nodes, reps): (usize, u64) = match (name, opts.quick) {
        ("static_cff_10k", false) => (10_000, 20),
        ("static_cff_10k", true) => (2_000, 3),
        ("static_cff_100k", false) => (100_000, 2),
        _ => (20_000, 1),
    };
    let side = (nodes as f64 / 5.0).sqrt();
    let net = NetworkBuilder::paper_field(side, nodes, 7)
        .build()
        .expect("incremental deployments always build");
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let cfg = RunConfig {
        record_trace: false,
        shards: Some(net.shard_plan(64)),
        threads,
        ..RunConfig::default()
    };
    let sink = net.sink();
    best_of(name, nodes as u64, reps, passes(opts), || {
        let (mut rounds, mut delivered, mut targets) = (0u64, 0u64, 0u64);
        for _ in 0..reps {
            let out = net.broadcast_from(Protocol::ImprovedCff, sink, &cfg);
            rounds += out.rounds;
            delivered += out.delivered as u64;
            targets += out.targets as u64;
        }
        (rounds, delivered, targets)
    })
}

/// Reliable CFF under 10% loss with a backbone fail-stop and repair on,
/// run through the campaign engine so `--threads` exercises real
/// parallelism.
fn run_lossy_rcff_repair(opts: &PerfOptions) -> ScenarioResult {
    let (n, reps) = if opts.quick { (50, 2) } else { (150, 150) };
    let spec = CampaignSpec {
        name: "perf-lossy".into(),
        field_side: 10.0,
        ns: vec![n],
        reps,
        base_seed: 7,
        protocols: vec![ProtocolSpec::ReliableCff],
        channels: vec![1],
        failures: vec![FailureTemplate::Backbone { count: 1, round: 1 }],
        churn: vec![ChurnTemplate::default()],
        losses: vec![LossSpec::from_probability(0.1)],
        repair: vec![true],
        mobility: vec![MobilitySpec::None],
        max_retries: 3,
        record_trace: false,
    };
    run_campaign_scenario("lossy_rcff_repair", n as u64, &spec, opts)
}

/// Random-waypoint mobility followed by an improved-CFF broadcast,
/// through the campaign engine. `mobility_100ep` is the original
/// 3-rep × 100-epoch cell; `mobility_400ep` drives 4× the motion history
/// over 2 reps so long-horizon maintenance (id-space growth, cumulative
/// re-homing) shows up in the ledger.
fn run_mobility(opts: &PerfOptions, name: &'static str) -> ScenarioResult {
    let (n, reps, epochs) = match (name, opts.quick) {
        ("mobility_400ep", false) => (120, 2, 400),
        ("mobility_400ep", true) => (40, 1, 20),
        (_, false) => (120, 3, 100),
        (_, true) => (40, 2, 10),
    };
    let spec = CampaignSpec {
        name: "perf-mobility".into(),
        field_side: 10.0,
        ns: vec![n],
        reps,
        base_seed: 7,
        protocols: vec![ProtocolSpec::ImprovedCff],
        channels: vec![1],
        failures: vec![FailureTemplate::None],
        churn: vec![ChurnTemplate::default()],
        losses: vec![LossSpec::none()],
        repair: vec![false],
        mobility: vec![MobilitySpec::RandomWaypoint {
            speed_milli: 50,
            pause: 2,
            epochs,
        }],
        max_retries: 2,
        record_trace: false,
    };
    let mut result = run_campaign_scenario(name, n as u64, &spec, opts);
    result.maintenance = Some(measure_maintenance(&spec, n, epochs));
    result
}

/// Drive one standalone [`MobileNetwork`] that replicates the campaign's
/// first mobility trial — same deployment seed, trajectory stream and
/// epoch count as `build_network` — and sum its per-epoch
/// [`dsnet_mobility::MaintenanceTimings`] into a ledger breakdown.
/// Periodic broadcast probes (epochs/4 apart) exercise the knowledge
/// cache so the hit/miss counters are live.
fn measure_maintenance(spec: &CampaignSpec, n: usize, epochs: u32) -> MaintenanceBreakdown {
    // Trial 0's scenario seed, as derived by `CampaignSpec::expand`.
    let scenario_seed = derive_seed(spec.base_seed, (n as u64) << 20);
    let d = Deployment::generate(DeploymentConfig::paper_field(
        spec.field_side,
        n,
        scenario_seed,
    ));
    let model_seed = derive_seed(scenario_seed, 0x6D0B);
    let MobilitySpec::RandomWaypoint { pause, .. } = spec.mobility[0] else {
        unreachable!("perf mobility cells are random-waypoint");
    };
    let speed = spec.mobility[0].speed();
    let model = RandomWaypoint::new(
        d.positions.clone(),
        d.config.region,
        WaypointParams {
            v_min: 0.5 * speed,
            v_max: 1.5 * speed,
            pause_epochs: pause,
        },
        model_seed,
    );
    let mut mob =
        MobileNetwork::new(&d, Box::new(model)).expect("incremental deployments arrive connected");
    let cfg = MobilityConfig {
        broadcast_every: u64::from((epochs / 4).max(1)),
        ..MobilityConfig::default()
    };
    let report = mob
        .run(u64::from(epochs), &cfg)
        .expect("maintenance preserves the paper's invariants");
    breakdown_of(&report)
}

/// Sum a mobility report's per-epoch timings into a ledger breakdown.
fn breakdown_of(report: &dsnet_mobility::MobilityReport) -> MaintenanceBreakdown {
    let t = report.summed_timings();
    MaintenanceBreakdown {
        reconfigs: report.total_reconfigs(),
        rehomed: report.total_rehomed(),
        edge_events: report.total_edge_events(),
        slot_churn: report.total_slot_churn(),
        audit_scope: t.audit_scope as u64,
        full_audits: u64::from(t.full_audits),
        cache_hits: t.cache_hits,
        cache_misses: t.cache_misses,
        knowledge_patches: t.knowledge_patches,
        knowledge_scope: t.knowledge_scope,
        knowledge_fallbacks: t.knowledge_fallbacks,
        probe_ms: t.probe_ns as f64 / 1e6,
        diff_ms: t.diff_ns as f64 / 1e6,
        repair_ms: t.repair_ns as f64 / 1e6,
        slots_ms: t.slots_ns as f64 / 1e6,
        audit_ms: t.audit_ns as f64 / 1e6,
    }
}

/// Broadcast-per-epoch under random-waypoint motion at 10k nodes: the
/// dirty-scoped knowledge patch path. Every epoch bumps the structure
/// version and immediately probes a sink broadcast, so with patching
/// disabled (`DSNET_KNOWLEDGE_PATCH=off`) every probe pays a full O(n)
/// `build_knowledge` pass while the patch path recomputes only the dirty
/// closure — the ledger's `rounds_per_sec` is the headline comparison
/// between the two.
///
/// The field is a *static backbone* with a mobile minority: a member
/// leaf roams under pedestrian-speed random-waypoint motion
/// ([`SparseMotion`], no pauses — every epoch churns) while the
/// infrastructure stays put. That is the regime the patch targets — leaf
/// departures dirty a few dozen nodes per epoch, so an O(n) rebuild per
/// probe is pure waste. (Backbone movers detach whole subtrees and
/// legitimately fall back to a rebuild; `mobility_400ep` keeps covering
/// that everything-moves regime.)
///
/// `rounds_per_sec` is computed over the summed **probe** wall
/// (`probe_ns`: knowledge acquisition + broadcast engine), not the whole
/// epoch: repair, diff and audit costs are identical on both paths and
/// would only dilute the comparison. `wall_ms` still reports the whole
/// timed run. The probe transmits on 2 channels — the paper's multi-
/// channel CFF — which also keeps the engine share of the probe small.
///
/// Setup (the deployment, a bootstrap build to learn the initial
/// membership, and the 10k-arrival structure) happens outside the timed
/// region, like the static scenarios' `NetworkBuilder`. The epoch loop
/// is timed in a single pass: the structure evolves with motion, so
/// repeated passes over one instance would drift counters, and
/// rebuilding per pass would time the build, not the maintenance.
fn run_mobility_bcast(opts: &PerfOptions) -> ScenarioResult {
    use dsnet_cluster::NodeStatus;
    use dsnet_mobility::SparseMotion;

    let (n, epochs): (usize, u64) = if opts.quick {
        (2_000, 10)
    } else {
        (10_000, 48)
    };
    let movers = 1usize;
    let scenario_seed = derive_seed(11, (n as u64) << 20);
    // Density 10 (vs the static scenarios' 5): a denser field keeps the
    // backbone share low, so member-leaf movers — the patch's target
    // regime — are the common case rather than a coin flip.
    let side = (n as f64 / 10.0).sqrt();
    let d = Deployment::generate(DeploymentConfig::paper_field(side, n, scenario_seed));
    let inner = RandomWaypoint::new(
        d.positions.clone(),
        d.config.region,
        // Pedestrian speeds, never pausing: slow enough that each epoch's
        // dirty closure stays small, restless enough that every epoch
        // bumps the structure version (a paused mover would make both
        // paths serve the probe from cache, diluting the comparison).
        WaypointParams {
            v_min: 0.01,
            v_max: 0.03,
            pause_epochs: 0,
        },
        derive_seed(scenario_seed, 0x6D0B),
    );

    // Bootstrap build: learn which nodes the initial structure makes
    // member leaves, then pick the mobile minority from them, spread
    // evenly across the arrival order.
    let mobile: Vec<usize> = {
        let boot = MobileNetwork::new(&d, Box::new(inner.clone()))
            .expect("incremental deployments arrive connected");
        let members: Vec<usize> = (0..n)
            .filter(|&i| boot.net().status(boot.node_of(i)) == NodeStatus::PureMember)
            .collect();
        assert!(
            members.len() >= movers,
            "field too small for {movers} movers"
        );
        (0..movers)
            .map(|j| members[members.len() * (2 * j + 1) / (2 * movers)])
            .collect()
    };

    let model = SparseMotion::new(inner, &mobile);
    let mut mob =
        MobileNetwork::new(&d, Box::new(model)).expect("incremental deployments arrive connected");
    let cfg = MobilityConfig {
        broadcast_every: 1,
        probe_channels: 2,
        ..MobilityConfig::default()
    };
    let start = Instant::now();
    let report = mob
        .run(epochs, &cfg)
        .expect("maintenance preserves the paper's invariants");
    let secs = start.elapsed().as_secs_f64();
    let samples = report.broadcast_samples();
    let (mut rounds, mut delivered, mut targets) = (0u64, 0u64, 0u64);
    for s in &samples {
        rounds += s.rounds as u64;
        delivered += s.delivered as u64;
        targets += s.targets as u64;
    }
    let breakdown = breakdown_of(&report);
    let probe_secs = breakdown.probe_ms / 1e3;
    ScenarioResult {
        name: "mobility_bcast_10k",
        nodes: n as u64,
        reps: samples.len() as u64,
        rounds,
        delivered,
        targets,
        wall_ms: secs * 1e3,
        rounds_per_sec: if probe_secs > 0.0 {
            rounds as f64 / probe_secs
        } else {
            0.0
        },
        maintenance: Some(breakdown),
        server: None,
    }
}

fn run_campaign_scenario(
    name: &'static str,
    nodes: u64,
    spec: &CampaignSpec,
    opts: &PerfOptions,
) -> ScenarioResult {
    let mut reps = 0;
    let r = best_of(name, nodes, 0, passes(opts), || {
        let result = campaign::run(spec, opts.threads, None);
        reps = result.records.len() as u64;
        let (mut rounds, mut delivered, mut targets) = (0u64, 0u64, 0u64);
        for rec in &result.records {
            rounds += rec.rounds;
            delivered += rec.delivered;
            targets += rec.targets;
        }
        (rounds, delivered, targets)
    });
    ScenarioResult { reps, ..r }
}

/// Timing passes per scenario. Full runs time best-of-5: the minimum
/// wall-clock is far more stable under scheduler/frequency noise than a
/// single sample, which matters for a committed 15% regression gate.
/// Quick runs take one pass — they exist for the determinism pin, not
/// for timing.
fn passes(opts: &PerfOptions) -> u32 {
    if opts.quick {
        1
    } else {
        5
    }
}

/// Run the workload `passes` times, assert the deterministic counters
/// never drift between passes, and keep the fastest wall-clock.
fn best_of(
    name: &'static str,
    nodes: u64,
    reps: u64,
    passes: u32,
    mut work: impl FnMut() -> (u64, u64, u64),
) -> ScenarioResult {
    let mut counters = None;
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        let c = work();
        let secs = start.elapsed().as_secs_f64();
        match counters {
            None => counters = Some(c),
            Some(prev) => assert_eq!(
                prev, c,
                "{name}: deterministic counters drifted between timing passes"
            ),
        }
        if secs < best {
            best = secs;
        }
    }
    let (rounds, delivered, targets) = counters.expect("at least one pass");
    ScenarioResult {
        name,
        nodes,
        reps,
        rounds,
        delivered,
        targets,
        wall_ms: best * 1e3,
        rounds_per_sec: if best > 0.0 {
            rounds as f64 / best
        } else {
            0.0
        },
        maintenance: None,
        server: None,
    }
}

/// Render the ledger as pretty-printed JSON (one key per line, stable
/// order).  With `include_timing = false` the machine-dependent fields
/// (`threads`, `peak_rss_kb`, `wall_ms`, `rounds_per_sec`) are omitted —
/// the remainder must be byte-identical for any `--threads` value.
pub fn render_ledger(l: &Ledger, include_timing: bool) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{}\",", l.schema);
    let _ = writeln!(s, "  \"date\": \"{}\",", l.date);
    let _ = writeln!(s, "  \"quick\": {},", l.quick);
    if include_timing {
        let _ = writeln!(s, "  \"threads\": {},", l.threads);
        let _ = writeln!(s, "  \"peak_rss_kb\": {},", l.peak_rss_kb);
    }
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in l.scenarios.iter().enumerate() {
        // Collect `"key": value` pairs first so the trailing-comma rule
        // stays in one place regardless of which optional fields render.
        let mut fields: Vec<String> = vec![
            format!("\"name\": \"{}\"", sc.name),
            format!("\"nodes\": {}", sc.nodes),
            format!("\"reps\": {}", sc.reps),
            format!("\"rounds\": {}", sc.rounds),
            format!("\"delivered\": {}", sc.delivered),
            format!("\"targets\": {}", sc.targets),
        ];
        if let Some(m) = &sc.maintenance {
            fields.push(format!("\"maint_reconfigs\": {}", m.reconfigs));
            fields.push(format!("\"maint_rehomed\": {}", m.rehomed));
            fields.push(format!("\"maint_edge_events\": {}", m.edge_events));
            fields.push(format!("\"maint_slot_churn\": {}", m.slot_churn));
            fields.push(format!("\"maint_audit_scope\": {}", m.audit_scope));
            fields.push(format!("\"maint_full_audits\": {}", m.full_audits));
            fields.push(format!("\"maint_cache_hits\": {}", m.cache_hits));
            fields.push(format!("\"maint_cache_misses\": {}", m.cache_misses));
            fields.push(format!(
                "\"maint_knowledge_patches\": {}",
                m.knowledge_patches
            ));
            fields.push(format!("\"maint_knowledge_scope\": {}", m.knowledge_scope));
            fields.push(format!(
                "\"maint_knowledge_fallbacks\": {}",
                m.knowledge_fallbacks
            ));
            if include_timing {
                fields.push(format!("\"maint_probe_ms\": {:.3}", m.probe_ms));
                fields.push(format!("\"maint_diff_ms\": {:.3}", m.diff_ms));
                fields.push(format!("\"maint_repair_ms\": {:.3}", m.repair_ms));
                fields.push(format!("\"maint_slots_ms\": {:.3}", m.slots_ms));
                fields.push(format!("\"maint_audit_ms\": {:.3}", m.audit_ms));
            }
        }
        if let Some(sv) = &sc.server {
            fields.push(format!("\"serve_sessions\": {}", sv.sessions));
            fields.push(format!("\"serve_commands\": {}", sv.commands));
            fields.push(format!("\"serve_client_threads\": {}", sv.client_threads));
            if include_timing {
                fields.push(format!(
                    "\"serve_sessions_per_sec\": {:.1}",
                    sv.sessions_per_sec
                ));
                fields.push(format!("\"serve_cmd_p50_us\": {:.1}", sv.cmd_p50_us));
                fields.push(format!("\"serve_cmd_p99_us\": {:.1}", sv.cmd_p99_us));
                fields.push(format!("\"serve_cmd_p999_us\": {:.1}", sv.cmd_p999_us));
                let buckets: Vec<String> = sv.cmd_hist_us.iter().map(|b| b.to_string()).collect();
                fields.push(format!("\"serve_cmd_hist_us\": [{}]", buckets.join(", ")));
            }
        }
        if include_timing {
            fields.push(format!("\"wall_ms\": {:.3}", sc.wall_ms));
            fields.push(format!("\"rounds_per_sec\": {:.1}", sc.rounds_per_sec));
        }
        s.push_str("    {\n");
        for (j, f) in fields.iter().enumerate() {
            let sep = if j + 1 < fields.len() { "," } else { "" };
            let _ = writeln!(s, "      {f}{sep}");
        }
        s.push_str(if i + 1 < l.scenarios.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Outcome of comparing a fresh ledger against a committed baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparison {
    /// Human-readable per-scenario notes (always populated).
    pub notes: Vec<String>,
    /// Failures: counter mismatches or throughput regressions beyond the
    /// allowed fraction.  Empty means the gate passes.
    pub failures: Vec<String>,
}

impl Comparison {
    /// Whether the regression gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a freshly-run [`Ledger`] against a committed baseline (the
/// JSON produced by [`render_ledger`] with timing included).
///
/// Deterministic counters must match *exactly* — any drift means the
/// simulation changed behaviour, which is a correctness regression no
/// matter how fast it runs.  `rounds_per_sec` may drift downward by at
/// most `max_regress` (e.g. `0.15` = 15%); improvements always pass.
pub fn compare(baseline_json: &str, fresh: &Ledger, max_regress: f64) -> Comparison {
    let mut notes = Vec::new();
    let mut failures = Vec::new();
    let base = match parse_ledger(baseline_json) {
        Some(b) => b,
        None => {
            failures.push("baseline is not a recognisable dsnet-bench ledger".into());
            return Comparison { notes, failures };
        }
    };
    // A v1 baseline is still comparable on the fields both schemas share:
    // the counters it does carry are gated exactly; scenarios and
    // maintenance counters it predates are noted, not failed, so a repo
    // can roll the schema forward and regenerate the baseline in the same
    // change without the gate eating itself.
    let v1_baseline = base.schema == SCHEMA_V1 && fresh.schema == SCHEMA;
    if v1_baseline {
        notes.push(format!(
            "baseline uses schema {SCHEMA_V1}; maintenance counters and scenarios new in {SCHEMA} are not compared"
        ));
    } else if base.schema != fresh.schema {
        failures.push(format!(
            "schema mismatch: baseline {} vs fresh {}",
            base.schema, fresh.schema
        ));
    }
    if base.quick != fresh.quick {
        failures.push(format!(
            "suite-size mismatch: baseline quick={} vs fresh quick={} (only like-for-like ledgers compare)",
            base.quick, fresh.quick
        ));
        return Comparison { notes, failures };
    }
    for sc in &fresh.scenarios {
        let Some(b) = base.scenarios.iter().find(|b| b.name == sc.name) else {
            if v1_baseline {
                notes.push(format!(
                    "{}: not in the v1 baseline, skipped (regenerate the baseline to gate it)",
                    sc.name
                ));
            } else if RECENT_SCENARIOS.contains(&sc.name) {
                // Scenarios newer than the schema bump: a same-schema
                // baseline written before they existed is still valid,
                // so their absence is informational until the baseline
                // is regenerated.
                notes.push(format!(
                    "{}: not in the baseline, skipped (regenerate the baseline to gate it)",
                    sc.name
                ));
            } else {
                failures.push(format!("scenario {} missing from baseline", sc.name));
            }
            continue;
        };
        for (field, got, want) in [
            ("nodes", sc.nodes, b.nodes),
            ("reps", sc.reps, b.reps),
            ("rounds", sc.rounds, b.rounds),
            ("delivered", sc.delivered, b.delivered),
            ("targets", sc.targets, b.targets),
        ] {
            if got != want {
                failures.push(format!(
                    "{}: deterministic counter `{field}` drifted: baseline {want}, fresh {got}",
                    sc.name
                ));
            }
        }
        if let (Some(bv), Some(sv)) = (&b.server, &sc.server) {
            for (field, got, want) in [
                ("serve_sessions", sv.sessions, bv.sessions),
                ("serve_commands", sv.commands, bv.commands),
                ("serve_client_threads", sv.client_threads, bv.client_threads),
            ] {
                if got != want {
                    failures.push(format!(
                        "{}: deterministic counter `{field}` drifted: baseline {want}, fresh {got}",
                        sc.name
                    ));
                }
            }
            // Ledgers written before the p999/histogram timing fields
            // existed still compare cleanly — the additions are timing,
            // not counters, so their absence is informational.
            if !bv.has_latency_detail {
                notes.push(format!(
                    "{}: baseline predates serve_cmd_p999_us/serve_cmd_hist_us; \
                     latency-detail fields not compared",
                    sc.name
                ));
            }
        }
        if let (Some(bm), Some(m)) = (&b.maintenance, &sc.maintenance) {
            for (field, got, want) in [
                ("maint_reconfigs", m.reconfigs, bm.reconfigs),
                ("maint_rehomed", m.rehomed, bm.rehomed),
                ("maint_edge_events", m.edge_events, bm.edge_events),
                ("maint_slot_churn", m.slot_churn, bm.slot_churn),
                ("maint_audit_scope", m.audit_scope, bm.audit_scope),
                ("maint_full_audits", m.full_audits, bm.full_audits),
                ("maint_cache_hits", m.cache_hits, bm.cache_hits),
                ("maint_cache_misses", m.cache_misses, bm.cache_misses),
            ] {
                if got != want {
                    failures.push(format!(
                        "{}: deterministic counter `{field}` drifted: baseline {want}, fresh {got}",
                        sc.name
                    ));
                }
            }
            // Baselines written before the knowledge-patch counters
            // existed compare cleanly: their absence is informational,
            // but when the baseline does carry them they gate exactly.
            if bm.has_knowledge_detail {
                for (field, got, want) in [
                    (
                        "maint_knowledge_patches",
                        m.knowledge_patches,
                        bm.knowledge_patches,
                    ),
                    (
                        "maint_knowledge_scope",
                        m.knowledge_scope,
                        bm.knowledge_scope,
                    ),
                    (
                        "maint_knowledge_fallbacks",
                        m.knowledge_fallbacks,
                        bm.knowledge_fallbacks,
                    ),
                ] {
                    if got != want {
                        failures.push(format!(
                            "{}: deterministic counter `{field}` drifted: baseline {want}, fresh {got}",
                            sc.name
                        ));
                    }
                }
            } else {
                notes.push(format!(
                    "{}: baseline predates maint_knowledge_* counters; \
                     knowledge-patch fields not compared",
                    sc.name
                ));
            }
        }
        if b.rounds_per_sec > 0.0 {
            let ratio = sc.rounds_per_sec / b.rounds_per_sec;
            notes.push(format!(
                "{}: {:.0} rounds/s vs baseline {:.0} ({:+.1}%)",
                sc.name,
                sc.rounds_per_sec,
                b.rounds_per_sec,
                (ratio - 1.0) * 100.0
            ));
            if ratio < 1.0 - max_regress {
                failures.push(format!(
                    "{}: throughput regressed {:.1}% (limit {:.0}%): {:.0} rounds/s vs baseline {:.0}",
                    sc.name,
                    (1.0 - ratio) * 100.0,
                    max_regress * 100.0,
                    sc.rounds_per_sec,
                    b.rounds_per_sec
                ));
            }
        }
    }
    for b in &base.scenarios {
        if !fresh.scenarios.iter().any(|sc| sc.name == b.name) {
            failures.push(format!("scenario {} missing from fresh run", b.name));
        }
    }
    Comparison { notes, failures }
}

/// Parsed baseline (owned strings; timing may be absent → 0).
#[derive(Debug, Default)]
struct ParsedLedger {
    schema: String,
    quick: bool,
    scenarios: Vec<ParsedScenario>,
}

#[derive(Debug, Default)]
struct ParsedScenario {
    name: String,
    nodes: u64,
    reps: u64,
    rounds: u64,
    delivered: u64,
    targets: u64,
    rounds_per_sec: f64,
    /// Maintenance counters, present only in v2 ledgers (and only on
    /// mobility scenarios).
    maintenance: Option<ParsedMaintenance>,
    /// Server counters, present only on the `serve_sessions` scenario.
    server: Option<ParsedServe>,
}

#[derive(Debug, Default)]
struct ParsedServe {
    sessions: u64,
    commands: u64,
    client_threads: u64,
    /// Whether the baseline carries the p999/histogram timing fields
    /// (ledgers written before those fields existed do not; their
    /// absence is noted during comparison, never failed).
    has_latency_detail: bool,
}

#[derive(Debug, Default)]
struct ParsedMaintenance {
    reconfigs: u64,
    rehomed: u64,
    edge_events: u64,
    slot_churn: u64,
    audit_scope: u64,
    full_audits: u64,
    cache_hits: u64,
    cache_misses: u64,
    knowledge_patches: u64,
    knowledge_scope: u64,
    knowledge_fallbacks: u64,
    /// Whether the baseline carries the `maint_knowledge_*` counters
    /// (ledgers written before the patch path existed do not; their
    /// absence is noted during comparison, never failed).
    has_knowledge_detail: bool,
}

/// Minimal line-oriented parser for the exact shape [`render_ledger`]
/// emits (one `"key": value` pair per line).  Not a general JSON parser.
fn parse_ledger(doc: &str) -> Option<ParsedLedger> {
    let mut out = ParsedLedger::default();
    let mut current: Option<ParsedScenario> = None;
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            if line == "}" {
                if let Some(sc) = current.take() {
                    out.scenarios.push(sc);
                }
            }
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let string_value = value.trim_matches('"');
        match (key, &mut current) {
            ("schema", None) => out.schema = string_value.into(),
            ("quick", None) => out.quick = value == "true",
            ("name", _) => {
                if let Some(sc) = current.take() {
                    out.scenarios.push(sc);
                }
                current = Some(ParsedScenario {
                    name: string_value.into(),
                    ..ParsedScenario::default()
                });
            }
            ("nodes", Some(sc)) => sc.nodes = value.parse().ok()?,
            ("reps", Some(sc)) => sc.reps = value.parse().ok()?,
            ("rounds", Some(sc)) => sc.rounds = value.parse().ok()?,
            ("delivered", Some(sc)) => sc.delivered = value.parse().ok()?,
            ("targets", Some(sc)) => sc.targets = value.parse().ok()?,
            ("rounds_per_sec", Some(sc)) => sc.rounds_per_sec = value.parse().ok()?,
            ("maint_reconfigs", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .reconfigs = value.parse().ok()?;
            }
            ("maint_rehomed", Some(sc)) => {
                sc.maintenance.get_or_insert_with(Default::default).rehomed = value.parse().ok()?;
            }
            ("maint_edge_events", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .edge_events = value.parse().ok()?;
            }
            ("maint_slot_churn", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .slot_churn = value.parse().ok()?;
            }
            ("maint_audit_scope", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .audit_scope = value.parse().ok()?;
            }
            ("maint_full_audits", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .full_audits = value.parse().ok()?;
            }
            ("maint_cache_hits", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .cache_hits = value.parse().ok()?;
            }
            ("maint_cache_misses", Some(sc)) => {
                sc.maintenance
                    .get_or_insert_with(Default::default)
                    .cache_misses = value.parse().ok()?;
            }
            ("maint_knowledge_patches", Some(sc)) => {
                let m = sc.maintenance.get_or_insert_with(Default::default);
                m.knowledge_patches = value.parse().ok()?;
                m.has_knowledge_detail = true;
            }
            ("maint_knowledge_scope", Some(sc)) => {
                let m = sc.maintenance.get_or_insert_with(Default::default);
                m.knowledge_scope = value.parse().ok()?;
                m.has_knowledge_detail = true;
            }
            ("maint_knowledge_fallbacks", Some(sc)) => {
                let m = sc.maintenance.get_or_insert_with(Default::default);
                m.knowledge_fallbacks = value.parse().ok()?;
                m.has_knowledge_detail = true;
            }
            ("serve_sessions", Some(sc)) => {
                sc.server.get_or_insert_with(Default::default).sessions = value.parse().ok()?;
            }
            ("serve_commands", Some(sc)) => {
                sc.server.get_or_insert_with(Default::default).commands = value.parse().ok()?;
            }
            ("serve_client_threads", Some(sc)) => {
                sc.server
                    .get_or_insert_with(Default::default)
                    .client_threads = value.parse().ok()?;
            }
            ("serve_cmd_p999_us" | "serve_cmd_hist_us", Some(sc)) => {
                sc.server
                    .get_or_insert_with(Default::default)
                    .has_latency_detail = true;
            }
            _ => {}
        }
    }
    if let Some(sc) = current.take() {
        out.scenarios.push(sc);
    }
    if out.schema.is_empty() || out.scenarios.is_empty() {
        return None;
    }
    Some(out)
}

/// Today's civil date in UTC as `YYYY-MM-DD`, derived from the system
/// clock (no external time crates).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day), Gregorian (Hinnant's
/// `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Peak resident set size of this process in KiB, from
/// `/proc/self/status` (`VmHWM`); 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> Ledger {
        Ledger {
            schema: SCHEMA,
            date: "2026-08-07".into(),
            quick: true,
            threads: 2,
            peak_rss_kb: 4096,
            scenarios: vec![
                ScenarioResult {
                    name: "static_cff",
                    nodes: 120,
                    reps: 20,
                    rounds: 1_000,
                    delivered: 2_380,
                    targets: 2_380,
                    wall_ms: 12.5,
                    rounds_per_sec: 80_000.0,
                    maintenance: None,
                    server: None,
                },
                ScenarioResult {
                    name: "static_dfo",
                    nodes: 120,
                    reps: 5,
                    rounds: 3_000,
                    delivered: 595,
                    targets: 595,
                    wall_ms: 30.0,
                    rounds_per_sec: 100_000.0,
                    maintenance: None,
                    server: None,
                },
            ],
        }
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let l = sample_ledger();
        let doc = render_ledger(&l, true);
        let p = parse_ledger(&doc).expect("self-rendered ledger parses");
        assert_eq!(p.schema, SCHEMA);
        assert!(p.quick);
        assert_eq!(p.scenarios.len(), 2);
        assert_eq!(p.scenarios[0].name, "static_cff");
        assert_eq!(p.scenarios[0].rounds, 1_000);
        assert_eq!(p.scenarios[1].targets, 595);
        assert!((p.scenarios[1].rounds_per_sec - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn render_without_timing_omits_machine_fields() {
        let doc = render_ledger(&sample_ledger(), false);
        for field in ["threads", "peak_rss_kb", "wall_ms", "rounds_per_sec"] {
            assert!(
                !doc.contains(field),
                "{field} leaked into timing-free render"
            );
        }
        assert!(doc.contains("\"rounds\": 1000"));
    }

    #[test]
    fn compare_passes_on_identical_ledger() {
        let l = sample_ledger();
        let doc = render_ledger(&l, true);
        let c = compare(&doc, &l, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert_eq!(c.notes.len(), 2);
    }

    #[test]
    fn compare_fails_on_counter_drift_and_regression() {
        let base = sample_ledger();
        let doc = render_ledger(&base, true);

        let mut drifted = base.clone();
        drifted.scenarios[0].rounds += 1;
        let c = compare(&doc, &drifted, 0.15);
        assert!(!c.passed());
        assert!(c.failures[0].contains("rounds"), "{:?}", c.failures);

        let mut slow = base.clone();
        slow.scenarios[1].rounds_per_sec = 50_000.0; // −50%
        let c = compare(&doc, &slow, 0.15);
        assert!(!c.passed());
        assert!(
            c.failures.iter().any(|f| f.contains("regressed")),
            "{:?}",
            c.failures
        );

        // A 10% dip stays inside the 15% budget.
        let mut ok = base.clone();
        ok.scenarios[1].rounds_per_sec = 90_000.0;
        assert!(compare(&doc, &ok, 0.15).passed());

        // Improvements always pass.
        let mut fast = base;
        fast.scenarios[0].rounds_per_sec = 200_000.0;
        assert!(compare(&doc, &fast, 0.15).passed());
    }

    fn mobility_scenario() -> ScenarioResult {
        ScenarioResult {
            name: "mobility_100ep",
            nodes: 120,
            reps: 3,
            rounds: 159,
            delivered: 360,
            targets: 360,
            wall_ms: 125.0,
            rounds_per_sec: 1_270.0,
            maintenance: Some(MaintenanceBreakdown {
                reconfigs: 1_818,
                rehomed: 17_513,
                edge_events: 2_617,
                slot_churn: 4_000,
                audit_scope: 9_416,
                full_audits: 0,
                cache_hits: 3,
                cache_misses: 1,
                knowledge_patches: 1,
                knowledge_scope: 42,
                knowledge_fallbacks: 0,
                probe_ms: 4.2,
                diff_ms: 7.0,
                repair_ms: 29.0,
                slots_ms: 0.3,
                audit_ms: 2.8,
            }),
            server: None,
        }
    }

    fn serve_scenario() -> ScenarioResult {
        ScenarioResult {
            name: "serve_sessions",
            nodes: 24,
            reps: 600,
            rounds: 52_000,
            delivered: 80_000,
            targets: 80_000,
            wall_ms: 2_500.0,
            rounds_per_sec: 20_800.0,
            maintenance: None,
            server: Some(ServeBreakdown {
                sessions: 600,
                commands: 4_200,
                client_threads: 8,
                sessions_per_sec: 240.0,
                cmd_p50_us: 310.0,
                cmd_p99_us: 2_150.0,
                cmd_p999_us: 4_800.0,
                cmd_hist_us: vec![0, 0, 0, 0, 0, 12, 480, 2_900, 760, 48],
            }),
        }
    }

    #[test]
    fn serve_fields_roundtrip_and_gate_exactly() {
        let mut l = sample_ledger();
        l.scenarios.push(serve_scenario());
        let doc = render_ledger(&l, true);
        let p = parse_ledger(&doc).expect("ledger with serve scenario parses");
        let pv = p.scenarios[2].server.as_ref().expect("serve counters");
        assert_eq!(pv.sessions, 600);
        assert_eq!(pv.commands, 4_200);
        assert_eq!(pv.client_threads, 8);
        assert!(compare(&doc, &l, 0.15).passed());

        // Counter drift is a hard failure.
        let mut drifted = l.clone();
        drifted.scenarios[2].server.as_mut().unwrap().commands += 1;
        let c = compare(&doc, &drifted, 0.15);
        assert!(
            c.failures.iter().any(|f| f.contains("serve_commands")),
            "{:?}",
            c.failures
        );

        // Latency/rate fields are timing: absent from the deterministic
        // render, present in the full one.
        let bare = render_ledger(&l, false);
        assert!(bare.contains("serve_sessions\": 600"));
        assert!(!bare.contains("serve_cmd_p50_us"));
        assert!(!bare.contains("serve_sessions_per_sec"));
        assert!(!bare.contains("serve_cmd_p999_us"));
        assert!(!bare.contains("serve_cmd_hist_us"));
        assert!(doc.contains("\"serve_cmd_p999_us\": 4800.0"));
        assert!(doc.contains("\"serve_cmd_hist_us\": [0, 0, 0, 0, 0, 12, 480, 2900, 760, 48]"));
    }

    #[test]
    fn compare_notes_baseline_without_latency_detail() {
        // A v2 baseline written before the p999/histogram fields: strip
        // them out of a fresh render line-by-line.
        let mut l = sample_ledger();
        l.scenarios.push(serve_scenario());
        let doc: String = render_ledger(&l, true)
            .lines()
            .filter(|line| {
                !line.contains("serve_cmd_p999_us") && !line.contains("serve_cmd_hist_us")
            })
            .map(|line| format!("{line}\n"))
            .collect();
        let c = compare(&doc, &l, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            c.notes
                .iter()
                .any(|n| n.contains("predates serve_cmd_p999_us")),
            "{:?}",
            c.notes
        );

        // A baseline that does carry them produces no such note.
        let full = render_ledger(&l, true);
        let c = compare(&full, &l, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            !c.notes.iter().any(|n| n.contains("predates")),
            "{:?}",
            c.notes
        );
    }

    #[test]
    fn maintenance_fields_roundtrip_and_gate_exactly() {
        let mut l = sample_ledger();
        l.scenarios.push(mobility_scenario());
        let doc = render_ledger(&l, true);
        let p = parse_ledger(&doc).expect("v2 ledger parses");
        let pm = p.scenarios[2].maintenance.as_ref().expect("maintenance");
        assert_eq!(pm.reconfigs, 1_818);
        assert_eq!(pm.audit_scope, 9_416);
        assert_eq!(pm.cache_misses, 1);
        assert_eq!(pm.knowledge_patches, 1);
        assert_eq!(pm.knowledge_scope, 42);
        assert!(pm.has_knowledge_detail);
        assert!(compare(&doc, &l, 0.15).passed());

        // Any maintenance-counter drift is a hard failure: it means the
        // maintenance semantics changed, not just their speed.
        let mut drifted = l.clone();
        drifted.scenarios[2].maintenance.as_mut().unwrap().rehomed += 1;
        let c = compare(&doc, &drifted, 0.15);
        assert!(
            c.failures.iter().any(|f| f.contains("maint_rehomed")),
            "{:?}",
            c.failures
        );

        // The knowledge-patch counters gate exactly when the baseline
        // carries them.
        let mut patched = l.clone();
        patched.scenarios[2]
            .maintenance
            .as_mut()
            .unwrap()
            .knowledge_patches += 1;
        let c = compare(&doc, &patched, 0.15);
        assert!(
            c.failures
                .iter()
                .any(|f| f.contains("maint_knowledge_patches")),
            "{:?}",
            c.failures
        );

        // The timing halves of the breakdown are machine-dependent and
        // must not leak into the determinism render.
        let bare = render_ledger(&l, false);
        assert!(bare.contains("maint_reconfigs"));
        assert!(!bare.contains("maint_diff_ms"));
    }

    #[test]
    fn compare_accepts_v1_baseline_for_shared_counters() {
        // A v1 baseline: v1 schema string, no maintenance fields, no
        // mobility scenarios.
        let v1 = sample_ledger();
        let doc = render_ledger(&v1, true).replace(SCHEMA, SCHEMA_V1);

        // Fresh v2 run: same shared counters, plus a new mobility
        // scenario carrying a maintenance breakdown.
        let mut fresh = v1.clone();
        fresh.scenarios.push(mobility_scenario());
        let c = compare(&doc, &fresh, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            c.notes.iter().any(|n| n.contains(SCHEMA_V1)),
            "{:?}",
            c.notes
        );
        assert!(
            c.notes.iter().any(|n| n.contains("mobility_100ep")),
            "{:?}",
            c.notes
        );

        // Leniency covers only what v1 cannot express: drift in a counter
        // the baseline *does* carry still fails.
        let mut drifted = fresh.clone();
        drifted.scenarios[0].rounds += 1;
        assert!(!compare(&doc, &drifted, 0.15).passed());

        // And a v2-vs-v2 comparison is not lenient about missing
        // scenarios.
        let v2doc = render_ledger(&v1, true);
        let c = compare(&v2doc, &fresh, 0.15);
        assert!(
            c.failures
                .iter()
                .any(|f| f.contains("missing from baseline")),
            "{:?}",
            c.failures
        );
    }

    #[test]
    fn compare_notes_baseline_without_knowledge_detail() {
        // A v2 baseline written before the maint_knowledge_* counters:
        // strip them from a fresh render line-by-line.
        let mut l = sample_ledger();
        l.scenarios.push(mobility_scenario());
        let doc: String = render_ledger(&l, true)
            .lines()
            .filter(|line| !line.contains("maint_knowledge_"))
            .map(|line| format!("{line}\n"))
            .collect();
        let c = compare(&doc, &l, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            c.notes
                .iter()
                .any(|n| n.contains("predates maint_knowledge_*")),
            "{:?}",
            c.notes
        );

        // A baseline that does carry them produces no such note.
        let full = render_ledger(&l, true);
        let c = compare(&full, &l, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            !c.notes.iter().any(|n| n.contains("maint_knowledge_*")),
            "{:?}",
            c.notes
        );
    }

    #[test]
    fn compare_notes_recent_scenario_missing_from_baseline() {
        // A same-schema baseline from before `mobility_bcast_10k`
        // existed: the new scenario is noted, not failed; any other
        // missing scenario still fails.
        let base = sample_ledger();
        let doc = render_ledger(&base, true);
        let mut fresh = base.clone();
        fresh.scenarios.push(ScenarioResult {
            name: "mobility_bcast_10k",
            nodes: 10_000,
            reps: 24,
            rounds: 2_000,
            delivered: 240_000,
            targets: 240_000,
            wall_ms: 900.0,
            rounds_per_sec: 2_200.0,
            maintenance: Some(mobility_scenario().maintenance.unwrap()),
            server: None,
        });
        let c = compare(&doc, &fresh, 0.15);
        assert!(c.passed(), "failures: {:?}", c.failures);
        assert!(
            c.notes
                .iter()
                .any(|n| n.contains("mobility_bcast_10k") && n.contains("not in the baseline")),
            "{:?}",
            c.notes
        );
    }

    #[test]
    fn compare_rejects_quick_vs_full() {
        let quick = sample_ledger();
        let doc = render_ledger(&quick, true);
        let mut full = quick.clone();
        full.quick = false;
        let c = compare(&doc, &full, 0.15);
        assert!(c.failures.iter().any(|f| f.contains("suite-size")));
    }

    #[test]
    fn civil_date_is_gregorian() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }

    #[test]
    fn quick_suite_counters_are_thread_invariant() {
        let a = run_suite(&PerfOptions {
            quick: true,
            threads: 1,
            date: Some("2026-01-01".into()),
        });
        let b = run_suite(&PerfOptions {
            quick: true,
            threads: 2,
            date: Some("2026-01-01".into()),
        });
        assert_eq!(render_ledger(&a, false), render_ledger(&b, false));
        assert!(a.scenarios.iter().all(|s| s.rounds > 0 && s.targets > 0));
    }
}
