//! Concrete campaign execution: the [`dsnet_campaign`] engine wired to
//! [`NetworkBuilder`] deployments and the protocol runners.
//!
//! `dsnet-campaign` is deliberately generic — it knows grids, seeds,
//! worker pools and artifacts, but not how to simulate anything. This
//! module supplies the missing piece: [`run_trial`] builds the trial's
//! deployment from its `scenario_seed`, applies the churn and failure
//! templates using the trial's private `stream_seed`, runs the selected
//! protocol and condenses the outcome into a [`TrialRecord`].

use crate::builder::NetworkBuilder;
use crate::experiments::common::SweepConfig;
use crate::network::{Protocol, SensorNetwork};
use dsnet_campaign::{
    CampaignResult, CampaignSpec, ChurnTemplate, FailureTemplate, Journal, MobilitySpec, Progress,
    ProtocolSpec, Trial, TrialRecord,
};
use dsnet_cluster::repair::{RepairConfig, RepairError};
use dsnet_geom::rng::{derive_seed, rng_from_seed};
use dsnet_geom::{Deployment, DeploymentConfig, Point2};
use dsnet_graph::NodeId;
use dsnet_mobility::{
    GaussMarkov, GaussMarkovParams, MobileNetwork, MobilityConfig, MobilityModel, RandomWaypoint,
    WaypointParams,
};
use dsnet_protocols::runner::RunConfig;
use dsnet_radio::{FailurePlan, LossModel};
use rand::seq::SliceRandom as _;
use rand::Rng as _;

fn protocol_of(spec: ProtocolSpec) -> Protocol {
    match spec {
        ProtocolSpec::Dfo => Protocol::Dfo,
        ProtocolSpec::BasicCff => Protocol::BasicCff,
        ProtocolSpec::ImprovedCff => Protocol::ImprovedCff,
        ProtocolSpec::ReliableCff => Protocol::ReliableCff,
    }
}

/// Apply a churn template: `leaves` random non-sink departures, then
/// `joins` arrivals placed in radio range of surviving nodes. All draws
/// come from `rng` (the trial's private stream).
fn apply_churn(net: &mut SensorNetwork, churn: &ChurnTemplate, rng: &mut dsnet_geom::rng::Rng) {
    let range = net.deployment().config.range;
    for _ in 0..churn.leaves {
        let mut candidates: Vec<NodeId> = net
            .net()
            .tree()
            .nodes()
            .filter(|&u| u != net.sink())
            .collect();
        candidates.shuffle(rng);
        // move-out can defer under concurrent structural edge cases;
        // try candidates until one departs.
        for u in candidates {
            if net.leave(u).is_ok() {
                break;
            }
        }
    }
    for _ in 0..churn.joins {
        // A powered-up sensor lands near an existing node: pick an anchor
        // and offset within (0.7·range)·√2 ≤ range of it.
        for _attempt in 0..16 {
            let anchors: Vec<NodeId> = net.net().tree().nodes().collect();
            let Some(&anchor) = anchors.as_slice().choose(rng) else {
                break;
            };
            let at = net.position(anchor);
            let dx: f64 = rng.random_range(-0.7 * range..=0.7 * range);
            let dy: f64 = rng.random_range(-0.7 * range..=0.7 * range);
            if net.join(Point2::new(at.x + dx, at.y + dy), &[]).is_ok() {
                break;
            }
        }
    }
}

/// Draw a failure template's victims from `rng` (without replacement,
/// from the template's pool). The draw happens whether or not the trial
/// repairs, so `repair=off` / `repair=on` cells hit the same victims.
fn draw_victims(
    net: &SensorNetwork,
    template: &FailureTemplate,
    rng: &mut dsnet_geom::rng::Rng,
) -> Vec<NodeId> {
    let (count, backbone_only) = match *template {
        FailureTemplate::None => return Vec::new(),
        FailureTemplate::Backbone { count, .. } | FailureTemplate::BackboneOutage { count, .. } => {
            (count, true)
        }
        FailureTemplate::Random { count, .. } | FailureTemplate::RandomOutage { count, .. } => {
            (count, false)
        }
    };
    let mut pool: Vec<NodeId> = if backbone_only {
        net.net()
            .backbone_nodes()
            .into_iter()
            .filter(|&u| u != net.sink())
            .collect()
    } else {
        net.net()
            .tree()
            .nodes()
            .filter(|&u| u != net.sink())
            .collect()
    };
    pool.shuffle(rng);
    pool.truncate(count);
    pool
}

/// Instantiate a failure template as a concrete [`FailurePlan`] over the
/// already-drawn victims: permanent kills for the fail-stop variants,
/// bounded outage windows for the transient ones.
fn failure_plan(template: &FailureTemplate, victims: &[NodeId]) -> FailurePlan {
    let mut plan = FailurePlan::new();
    match *template {
        FailureTemplate::None => {}
        FailureTemplate::Backbone { round, .. } | FailureTemplate::Random { round, .. } => {
            for &v in victims {
                plan.kill_node(v, round);
            }
        }
        FailureTemplate::BackboneOutage {
            round, duration, ..
        }
        | FailureTemplate::RandomOutage {
            round, duration, ..
        } => {
            for &v in victims {
                plan.kill_node_for(v, round, duration);
            }
        }
    }
    plan
}

/// Build the trial's network. Static cells use the incremental
/// [`NetworkBuilder`] deployment; mobile cells drive the *same* deployment
/// through the spec'd epochs of motion — structure maintained
/// incrementally by [`MobileNetwork`], invariants checked every epoch —
/// and measure the broadcast on the post-motion structure. Returns the
/// network plus the maintenance totals (reconfigurations, slot churn),
/// `None` for static cells.
fn build_network(trial: &Trial) -> (SensorNetwork, Option<u64>, Option<u64>) {
    if trial.mobility.is_none() {
        let net = NetworkBuilder::paper_field(trial.field_side, trial.n, trial.scenario_seed)
            .build()
            .expect("incremental deployments always build");
        return (net, None, None);
    }
    let d = Deployment::generate(DeploymentConfig::paper_field(
        trial.field_side,
        trial.n,
        trial.scenario_seed,
    ));
    // The trajectory stream is keyed by the scenario seed (not the trial's
    // private stream seed) so every protocol / channel variant of the same
    // repetition rides the identical motion history.
    let model_seed = derive_seed(trial.scenario_seed, 0x6D0B);
    let speed = trial.mobility.speed();
    let model: Box<dyn MobilityModel> = match trial.mobility {
        MobilitySpec::None => unreachable!("static cells return above"),
        MobilitySpec::RandomWaypoint { pause, .. } => Box::new(RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams {
                v_min: 0.5 * speed,
                v_max: 1.5 * speed,
                pause_epochs: pause,
            },
            model_seed,
        )),
        MobilitySpec::GaussMarkov { .. } => Box::new(GaussMarkov::new(
            d.positions.clone(),
            d.config.region,
            GaussMarkovParams {
                mean_speed: speed,
                memory: 0.75,
            },
            model_seed,
        )),
    };
    let mut mob = MobileNetwork::new(&d, model).expect("incremental deployments arrive connected");
    let report = mob
        .run(
            u64::from(trial.mobility.epochs()),
            &MobilityConfig::default(),
        )
        .expect("maintenance preserves the paper's invariants");
    let build_reports = mob.build_reports().to_vec();
    let (mc, positions) = mob.into_parts();
    (
        SensorNetwork::from_motion(d, positions, mc, build_reports),
        Some(report.total_reconfigs()),
        Some(report.total_slot_churn()),
    )
}

/// Execute one campaign trial end-to-end. A pure function of the trial:
/// every random draw comes from the trial's own seeds, which is what lets
/// the engine run trials in any order on any number of threads.
pub fn run_trial(trial: &Trial) -> TrialRecord {
    let (mut net, reconfigs, slot_churn) = build_network(trial);
    let mut rng = rng_from_seed(trial.stream_seed);
    apply_churn(&mut net, &trial.churn, &mut rng);
    let victims = draw_victims(&net, &trial.failure, &mut rng);

    // repair=on models the self-healing network: fail-stop victims crash
    // silently *before* the measured broadcast, the detection-and-repair
    // protocol evicts them and re-homes their orphans, and the broadcast
    // then runs on the healed structure. Transient outages are left to
    // ride out their windows — there is nothing to evict.
    let mut repair_rounds = None;
    let failures = if trial.repair && !victims.is_empty() && !trial.failure.is_transient() {
        let mut total = 0u64;
        for &v in &victims {
            match net.repair_crash(v, &RepairConfig::default()) {
                Ok(report) => total += report.total_rounds(),
                // An earlier repair may already have dropped this victim
                // (it was an orphan that could not be re-homed).
                Err(RepairError::NotAttached(_)) => {}
                Err(e) => panic!("repair failed for {v:?}: {e:?}"),
            }
        }
        repair_rounds = Some(total);
        FailurePlan::new()
    } else {
        failure_plan(&trial.failure, &victims)
    };

    let cfg = RunConfig {
        channels: trial.channels,
        failures,
        loss: if trial.loss.is_none() {
            LossModel::none()
        } else {
            // The loss stream is keyed by the scenario seed (not the
            // per-trial stream seed) so paired protocol comparisons face
            // the same per-(link, round) drop pattern.
            LossModel::from_ppm(trial.loss.ppm, derive_seed(trial.scenario_seed, 0x1055))
        },
        max_retries: trial.max_retries,
        record_trace: trial.record_trace,
        ..RunConfig::default()
    };
    let out = net.broadcast_from(protocol_of(trial.protocol), net.sink(), &cfg);
    TrialRecord {
        rounds: out.rounds,
        delivered: out.delivered as u64,
        targets: out.targets as u64,
        targets_alive: out.targets_alive as u64,
        delivered_alive: out.delivered_alive as u64,
        t50: out.coverage.as_ref().and_then(|c| c.t50),
        t90: out.coverage.as_ref().and_then(|c| c.t90),
        t_full: out.coverage.as_ref().and_then(|c| c.t_full),
        repair_rounds,
        max_awake: out.energy.max_awake,
        mean_awake: out.energy.mean_awake,
        collisions: out.collisions.map(|c| c as u64),
        bound: out.bound,
        nodes: net.len() as u64,
        reconfigs,
        slot_churn,
    }
}

/// Run a campaign spec on the concrete trial runner.
///
/// `threads = 0` uses every available core; the results are identical
/// either way (see the `dsnet-campaign` determinism contract).
pub fn run(
    spec: &CampaignSpec,
    threads: usize,
    on_progress: Option<&(dyn Fn(Progress<'_>) + Sync)>,
) -> CampaignResult {
    dsnet_campaign::run_campaign(spec, &run_trial, threads, on_progress)
}

/// [`run`] with crash-consistency hooks: journal every trial's
/// intent/commit and/or skip trials whose results were recovered from a
/// journal. See
/// [`run_campaign_resumable`](dsnet_campaign::run_campaign_resumable)
/// for the contract.
pub fn run_resumable(
    spec: &CampaignSpec,
    threads: usize,
    on_progress: Option<&(dyn Fn(Progress<'_>) + Sync)>,
    journal: Option<&Journal>,
    completed: Option<Vec<Option<TrialRecord>>>,
) -> CampaignResult {
    dsnet_campaign::run_campaign_resumable(
        spec,
        &run_trial,
        threads,
        on_progress,
        journal,
        completed,
    )
}

/// A campaign spec matching a [`SweepConfig`]'s field, sizes, reps and
/// seed — the bridge the figure drivers use. Scenario seeds coincide with
/// [`SweepConfig::seed`], so campaign trials run on the *same
/// deployments* as the legacy sequential experiments.
pub fn sweep_spec(name: &str, cfg: &SweepConfig, protocols: Vec<ProtocolSpec>) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name);
    spec.field_side = cfg.field_side;
    spec.ns = cfg.ns.clone();
    spec.reps = cfg.reps;
    spec.base_seed = cfg.base_seed;
    spec.protocols = protocols;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_campaign::{render_json, LossSpec};

    fn tiny_spec() -> CampaignSpec {
        let mut spec = sweep_spec(
            "tiny",
            &SweepConfig::quick(),
            vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo],
        );
        spec.ns = vec![40];
        spec.reps = 2;
        spec
    }

    #[test]
    fn artifacts_are_byte_identical_across_thread_counts() {
        let mut spec = tiny_spec();
        // Exercise the robustness axes too: the loss stream and repair
        // path must be as order-independent as the rest.
        spec.losses = vec![LossSpec::none(), LossSpec::from_probability(0.05)];
        spec.repair = vec![false, true];
        spec.failures = vec![
            FailureTemplate::None,
            FailureTemplate::Backbone { count: 1, round: 1 },
        ];
        let serial = run(&spec, 1, None);
        let parallel = run(&spec, 4, None);
        assert_eq!(render_json(&serial, true), render_json(&parallel, true));
        assert_eq!(serial.records, parallel.records);
    }

    #[test]
    fn protocols_share_deployments_within_a_rep() {
        let result = run(&tiny_spec(), 0, None);
        // Same (n, rep) across protocols → same target count (same net).
        let cff: Vec<_> = result
            .select(|t| t.protocol == ProtocolSpec::ImprovedCff)
            .collect();
        let dfo: Vec<_> = result.select(|t| t.protocol == ProtocolSpec::Dfo).collect();
        for ((tc, rc), (td, rd)) in cff.iter().zip(&dfo) {
            assert_eq!(tc.scenario_seed, td.scenario_seed);
            assert_eq!(rc.targets, rd.targets);
        }
    }

    #[test]
    fn failure_template_kills_reduce_delivery_or_not_but_run() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::Dfo];
        spec.failures = vec![
            FailureTemplate::None,
            FailureTemplate::Backbone { count: 3, round: 1 },
        ];
        let result = run(&spec, 0, None);
        let clean = result
            .cell(
                ProtocolSpec::Dfo,
                1,
                FailureTemplate::None,
                ChurnTemplate::default(),
                LossSpec::none(),
                false,
                MobilitySpec::None,
                40,
            )
            .unwrap();
        let failed = result
            .cell(
                ProtocolSpec::Dfo,
                1,
                FailureTemplate::Backbone { count: 3, round: 1 },
                ChurnTemplate::default(),
                LossSpec::none(),
                false,
                MobilitySpec::None,
                40,
            )
            .unwrap();
        assert_eq!(clean.completed, clean.trials, "no-failure DFO completes");
        // Killing 3 backbone nodes at round 1 must cost DFO coverage.
        assert!(failed.delivery.mean < clean.delivery.mean);
    }

    #[test]
    fn reliable_cff_beats_basic_under_loss() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::BasicCff, ProtocolSpec::ReliableCff];
        spec.losses = vec![LossSpec::from_probability(0.1)];
        spec.reps = 3;
        spec.max_retries = 4;
        let result = run(&spec, 0, None);
        let cell = |p| {
            result
                .cell(
                    p,
                    1,
                    FailureTemplate::None,
                    ChurnTemplate::default(),
                    LossSpec::from_probability(0.1),
                    false,
                    MobilitySpec::None,
                    40,
                )
                .unwrap()
        };
        let basic = cell(ProtocolSpec::BasicCff);
        let reliable = cell(ProtocolSpec::ReliableCff);
        assert!(
            reliable.delivery.mean > basic.delivery.mean,
            "retries must buy coverage under loss: rcff {} !> cff1 {}",
            reliable.delivery.mean,
            basic.delivery.mean
        );
    }

    #[test]
    fn repair_heals_fail_stop_cells() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::ImprovedCff];
        spec.failures = vec![FailureTemplate::Backbone { count: 2, round: 1 }];
        spec.repair = vec![false, true];
        let result = run(&spec, 0, None);
        let cell = |repair| {
            result
                .cell(
                    ProtocolSpec::ImprovedCff,
                    1,
                    FailureTemplate::Backbone { count: 2, round: 1 },
                    ChurnTemplate::default(),
                    LossSpec::none(),
                    repair,
                    MobilitySpec::None,
                    40,
                )
                .unwrap()
        };
        let broken = cell(false);
        let healed = cell(true);
        // The healed network broadcasts to every survivor; the broken one
        // lost whole subtrees.
        assert_eq!(healed.completed, healed.trials);
        assert_eq!(healed.repaired, healed.trials);
        assert!(healed.repair_rounds.is_some());
        assert_eq!(broken.repaired, 0);
        assert!(healed.delivery_alive.mean >= broken.delivery_alive.mean);
        // Repaired trials report paid repair time.
        for (_, rec) in result.select(|t| t.repair) {
            assert!(rec.repair_rounds.unwrap() > 0);
        }
    }

    #[test]
    fn outage_template_is_transient_and_not_repaired() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::ImprovedCff];
        spec.failures = vec![FailureTemplate::BackboneOutage {
            count: 2,
            round: 1,
            duration: 5,
        }];
        spec.repair = vec![true];
        let result = run(&spec, 0, None);
        for (_, rec) in result.select(|_| true) {
            // Transient victims revive; nothing was evicted.
            assert_eq!(rec.repair_rounds, None);
            assert_eq!(rec.nodes, 40);
            assert_eq!(rec.targets_alive, rec.targets);
        }
    }

    #[test]
    fn mobile_cells_record_maintenance_and_complete() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::ImprovedCff];
        spec.mobility = vec![
            MobilitySpec::None,
            MobilitySpec::random_waypoint(0.05, 15, 2),
            MobilitySpec::gauss_markov(0.04, 15),
        ];
        let result = run(&spec, 0, None);
        let mut moved = 0u64;
        for (t, rec) in result.select(|_| true) {
            if t.mobility.is_none() {
                assert_eq!(rec.reconfigs, None);
                assert_eq!(rec.slot_churn, None);
            } else {
                // Motion happened, was maintained, and the post-motion
                // structure still broadcasts to everyone.
                moved += rec.reconfigs.expect("mobile trials measure maintenance");
                assert!(rec.slot_churn.is_some());
                assert!(rec.completed(), "CFF must cover the maintained net");
                assert_eq!(rec.nodes, 40);
            }
        }
        assert!(moved > 0, "15 epochs of motion should reconfigure someone");
    }

    #[test]
    fn churn_template_changes_population() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::ImprovedCff];
        spec.churn = vec![ChurnTemplate {
            joins: 4,
            leaves: 2,
        }];
        let result = run(&spec, 0, None);
        for (_, rec) in result.select(|_| true) {
            assert_eq!(rec.nodes, 40 + 4 - 2);
            assert!(rec.completed(), "CFF should cover the churned net");
        }
    }
}
