//! Concrete campaign execution: the [`dsnet_campaign`] engine wired to
//! [`NetworkBuilder`] deployments and the protocol runners.
//!
//! `dsnet-campaign` is deliberately generic — it knows grids, seeds,
//! worker pools and artifacts, but not how to simulate anything. This
//! module supplies the missing piece: [`run_trial`] builds the trial's
//! deployment from its `scenario_seed`, applies the churn and failure
//! templates using the trial's private `stream_seed`, runs the selected
//! protocol and condenses the outcome into a [`TrialRecord`].

use crate::builder::NetworkBuilder;
use crate::experiments::common::SweepConfig;
use crate::network::{Protocol, SensorNetwork};
use dsnet_campaign::{
    CampaignResult, CampaignSpec, ChurnTemplate, FailureTemplate, Progress, ProtocolSpec, Trial,
    TrialRecord,
};
use dsnet_geom::rng::rng_from_seed;
use dsnet_geom::Point2;
use dsnet_graph::NodeId;
use dsnet_protocols::runner::RunConfig;
use dsnet_radio::FailurePlan;
use rand::seq::SliceRandom as _;
use rand::Rng as _;

fn protocol_of(spec: ProtocolSpec) -> Protocol {
    match spec {
        ProtocolSpec::Dfo => Protocol::Dfo,
        ProtocolSpec::BasicCff => Protocol::BasicCff,
        ProtocolSpec::ImprovedCff => Protocol::ImprovedCff,
    }
}

/// Apply a churn template: `leaves` random non-sink departures, then
/// `joins` arrivals placed in radio range of surviving nodes. All draws
/// come from `rng` (the trial's private stream).
fn apply_churn(net: &mut SensorNetwork, churn: &ChurnTemplate, rng: &mut dsnet_geom::rng::Rng) {
    let range = net.deployment().config.range;
    for _ in 0..churn.leaves {
        let mut candidates: Vec<NodeId> = net
            .net()
            .tree()
            .nodes()
            .filter(|&u| u != net.sink())
            .collect();
        candidates.shuffle(rng);
        // move-out can defer under concurrent structural edge cases;
        // try candidates until one departs.
        for u in candidates {
            if net.leave(u).is_ok() {
                break;
            }
        }
    }
    for _ in 0..churn.joins {
        // A powered-up sensor lands near an existing node: pick an anchor
        // and offset within (0.7·range)·√2 ≤ range of it.
        for _attempt in 0..16 {
            let anchors: Vec<NodeId> = net.net().tree().nodes().collect();
            let Some(&anchor) = anchors.as_slice().choose(rng) else {
                break;
            };
            let at = net.position(anchor);
            let dx: f64 = rng.random_range(-0.7 * range..=0.7 * range);
            let dy: f64 = rng.random_range(-0.7 * range..=0.7 * range);
            if net.join(Point2::new(at.x + dx, at.y + dy), &[]).is_ok() {
                break;
            }
        }
    }
}

/// Instantiate a failure template as a concrete [`FailurePlan`], drawing
/// victims from `rng`.
fn apply_failures(
    net: &SensorNetwork,
    template: &FailureTemplate,
    rng: &mut dsnet_geom::rng::Rng,
) -> FailurePlan {
    let mut plan = FailurePlan::new();
    let (count, round, mut pool): (usize, u64, Vec<NodeId>) = match *template {
        FailureTemplate::None => return plan,
        FailureTemplate::Backbone { count, round } => (
            count,
            round,
            net.net()
                .backbone_nodes()
                .into_iter()
                .filter(|&u| u != net.sink())
                .collect(),
        ),
        FailureTemplate::Random { count, round } => (
            count,
            round,
            net.net()
                .tree()
                .nodes()
                .filter(|&u| u != net.sink())
                .collect(),
        ),
    };
    pool.shuffle(rng);
    for &victim in pool.iter().take(count) {
        plan.kill_node(victim, round);
    }
    plan
}

/// Execute one campaign trial end-to-end. A pure function of the trial:
/// every random draw comes from the trial's own seeds, which is what lets
/// the engine run trials in any order on any number of threads.
pub fn run_trial(trial: &Trial) -> TrialRecord {
    let mut net = NetworkBuilder::paper_field(trial.field_side, trial.n, trial.scenario_seed)
        .build()
        .expect("incremental deployments always build");
    let mut rng = rng_from_seed(trial.stream_seed);
    apply_churn(&mut net, &trial.churn, &mut rng);
    let cfg = RunConfig {
        channels: trial.channels,
        failures: apply_failures(&net, &trial.failure, &mut rng),
        record_trace: trial.record_trace,
    };
    let out = net.broadcast_from(protocol_of(trial.protocol), net.sink(), &cfg);
    TrialRecord {
        rounds: out.rounds,
        delivered: out.delivered as u64,
        targets: out.targets as u64,
        max_awake: out.energy.max_awake,
        mean_awake: out.energy.mean_awake,
        collisions: out.collisions.map(|c| c as u64),
        bound: out.bound,
        nodes: net.len() as u64,
    }
}

/// Run a campaign spec on the concrete trial runner.
///
/// `threads = 0` uses every available core; the results are identical
/// either way (see the `dsnet-campaign` determinism contract).
pub fn run(
    spec: &CampaignSpec,
    threads: usize,
    on_progress: Option<&(dyn Fn(Progress<'_>) + Sync)>,
) -> CampaignResult {
    dsnet_campaign::run_campaign(spec, &run_trial, threads, on_progress)
}

/// A campaign spec matching a [`SweepConfig`]'s field, sizes, reps and
/// seed — the bridge the figure drivers use. Scenario seeds coincide with
/// [`SweepConfig::seed`], so campaign trials run on the *same
/// deployments* as the legacy sequential experiments.
pub fn sweep_spec(name: &str, cfg: &SweepConfig, protocols: Vec<ProtocolSpec>) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name);
    spec.field_side = cfg.field_side;
    spec.ns = cfg.ns.clone();
    spec.reps = cfg.reps;
    spec.base_seed = cfg.base_seed;
    spec.protocols = protocols;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_campaign::render_json;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = sweep_spec(
            "tiny",
            &SweepConfig::quick(),
            vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo],
        );
        spec.ns = vec![40];
        spec.reps = 2;
        spec
    }

    #[test]
    fn artifacts_are_byte_identical_across_thread_counts() {
        let spec = tiny_spec();
        let serial = run(&spec, 1, None);
        let parallel = run(&spec, 4, None);
        assert_eq!(render_json(&serial, true), render_json(&parallel, true));
        assert_eq!(serial.records, parallel.records);
    }

    #[test]
    fn protocols_share_deployments_within_a_rep() {
        let result = run(&tiny_spec(), 0, None);
        // Same (n, rep) across protocols → same target count (same net).
        let cff: Vec<_> = result
            .select(|t| t.protocol == ProtocolSpec::ImprovedCff)
            .collect();
        let dfo: Vec<_> = result.select(|t| t.protocol == ProtocolSpec::Dfo).collect();
        for ((tc, rc), (td, rd)) in cff.iter().zip(&dfo) {
            assert_eq!(tc.scenario_seed, td.scenario_seed);
            assert_eq!(rc.targets, rd.targets);
        }
    }

    #[test]
    fn failure_template_kills_reduce_delivery_or_not_but_run() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::Dfo];
        spec.failures = vec![
            FailureTemplate::None,
            FailureTemplate::Backbone { count: 3, round: 1 },
        ];
        let result = run(&spec, 0, None);
        let clean = result
            .cell(
                ProtocolSpec::Dfo,
                1,
                FailureTemplate::None,
                ChurnTemplate::default(),
                40,
            )
            .unwrap();
        let failed = result
            .cell(
                ProtocolSpec::Dfo,
                1,
                FailureTemplate::Backbone { count: 3, round: 1 },
                ChurnTemplate::default(),
                40,
            )
            .unwrap();
        assert_eq!(clean.completed, clean.trials, "no-failure DFO completes");
        // Killing 3 backbone nodes at round 1 must cost DFO coverage.
        assert!(failed.delivery.mean < clean.delivery.mean);
    }

    #[test]
    fn churn_template_changes_population() {
        let mut spec = tiny_spec();
        spec.protocols = vec![ProtocolSpec::ImprovedCff];
        spec.churn = vec![ChurnTemplate {
            joins: 4,
            leaves: 2,
        }];
        let result = run(&spec, 0, None);
        for (_, rec) in result.select(|_| true) {
            assert_eq!(rec.nodes, 40 + 4 - 2);
            assert!(rec.completed(), "CFF should cover the churned net");
        }
    }
}
