//! The tenant session facade: a scripted command surface over one
//! [`SensorNetwork`].
//!
//! A [`NetSession`] owns a network plus a deterministic command executor
//! in the step-executor idiom: every command is validated, executed with
//! a bounded retry budget where retrying makes sense, and condensed into
//! a structured [`CommandRecord`] with typed fields and a wall-clock
//! timestamp. The ordered records form the session's *event stream*.
//!
//! The same executor backs two transports:
//!
//! * the `dsnet-server` daemon applies wire commands to hosted sessions;
//! * `dsnet script` applies the identical commands directly against the
//!   library.
//!
//! Because both paths run this exact code, a scripted command sequence
//! produces **byte-identical** deterministic stream renderings either way
//! ([`render_stream`] with `include_timing = false`) — the contract CI
//! pins. Wall-clock microseconds ride on every record but are excluded
//! from the deterministic rendering, mirroring the perf ledger's
//! counters-vs-timing split.

use crate::builder::{BuildError, GroupPlan, NetworkBuilder};
use crate::network::{Protocol, SensorNetwork};
use dsnet_cluster::repair::RepairConfig;
use dsnet_cluster::GroupId;
use dsnet_geom::rng::{derive_seed, rng_from_seed};
use dsnet_geom::Point2;
use dsnet_graph::NodeId;
use dsnet_protocols::runner::RunConfig;
use dsnet_radio::{FailurePlan, LossModel};
use rand::Rng as _;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Stream-format identifier emitted in the header line of every rendered
/// event stream.
pub const STREAM_SCHEMA: &str = "dsnet-session/1";

/// How a session's network is built. All quantities are integers (milli-
/// units, ppm) so wire round-trips and stream renderings are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Deployment size.
    pub nodes: usize,
    /// Deployment + command-stream seed.
    pub seed: u64,
    /// Field side in milli-units (the paper's 10×10 field = `10_000`).
    pub field_milli: u32,
    /// Multicast groups (`0` = none).
    pub groups: u16,
    /// Per-group membership probability in parts-per-million.
    pub membership_ppm: u32,
}

impl Default for SessionSpec {
    fn default() -> Self {
        Self {
            nodes: 60,
            seed: 1,
            field_milli: 10_000,
            groups: 0,
            membership_ppm: 100_000,
        }
    }
}

/// One command a tenant can apply to its session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionCommand {
    /// Run a broadcast and record its outcome. Nodes in the session's
    /// killed set crash at round 1 of the run. When `min_delivery_ppm`
    /// is nonzero the command retries (fresh attempt-salted loss stream)
    /// until the delivery ratio meets the floor or `retries` extra
    /// attempts are exhausted.
    Broadcast {
        /// Protocol to run.
        protocol: Protocol,
        /// Source node (`None` = the sink).
        source: Option<u32>,
        /// Radio channels `k ≥ 1`.
        channels: u8,
        /// Per-link Bernoulli loss in parts-per-million.
        loss_ppm: u32,
        /// Extra attempts allowed when chasing `min_delivery_ppm`.
        retries: u32,
        /// Minimum acceptable delivery ratio in parts-per-million
        /// (`0` = accept any outcome on the first attempt).
        min_delivery_ppm: u32,
    },
    /// Run a multicast to `group` and record its outcome.
    Multicast {
        /// Target group.
        group: GroupId,
        /// Source node (`None` = the sink).
        source: Option<u32>,
    },
    /// A new sensor powers up at the given milli-coordinates and joins
    /// via `node-move-in`.
    MoveIn {
        /// X coordinate in milli-units.
        x_milli: i64,
        /// Y coordinate in milli-units.
        y_milli: i64,
        /// Group memberships for the newcomer.
        groups: Vec<GroupId>,
    },
    /// A sensor powers down and leaves via `node-move-out`.
    MoveOut {
        /// The departing node.
        node: u32,
    },
    /// Mark a node crashed: it stays in the structure but is dead in
    /// every subsequent broadcast until revived or repaired.
    Kill {
        /// The crashing node.
        node: u32,
    },
    /// Clear a node's crashed mark (transient outage ended).
    Revive {
        /// The reviving node.
        node: u32,
    },
    /// Run the silent-crash detection/repair protocol against a node:
    /// evicts it from the structure and re-homes its orphans.
    Repair {
        /// The node to detect-and-evict.
        node: u32,
    },
    /// Drive seeded epochs of motion through the reconfiguration path:
    /// each epoch, `movers` nodes take a random step of `step_milli`
    /// milli-units and are re-homed via `node-move-out` + `node-move-in`.
    Mobility {
        /// Number of motion epochs.
        epochs: u32,
        /// Nodes moved per epoch.
        movers: u32,
        /// Step length in milli-units.
        step_milli: u32,
    },
    /// Record the current versioned structure summary (served through
    /// the knowledge cache).
    Snapshot,
}

impl SessionCommand {
    /// Stable command label used in records and stream renderings.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionCommand::Broadcast { .. } => "broadcast",
            SessionCommand::Multicast { .. } => "multicast",
            SessionCommand::MoveIn { .. } => "move_in",
            SessionCommand::MoveOut { .. } => "move_out",
            SessionCommand::Kill { .. } => "kill",
            SessionCommand::Revive { .. } => "revive",
            SessionCommand::Repair { .. } => "repair",
            SessionCommand::Mobility { .. } => "mobility",
            SessionCommand::Snapshot => "snapshot",
        }
    }
}

/// Outcome classification of one applied command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandStatus {
    /// The command executed and mutated/queried the session.
    Applied,
    /// Validation or execution rejected the command; the session is
    /// unchanged except for the record itself. The reason is
    /// deterministic text.
    Rejected(String),
}

impl CommandStatus {
    /// Whether the command was applied.
    pub fn is_applied(&self) -> bool {
        matches!(self, CommandStatus::Applied)
    }
}

/// One structured entry of a session's event stream (the `StepResult` of
/// the step-executor idiom).
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    /// Position in the session's command sequence (0-based).
    pub seq: u64,
    /// Command label ([`SessionCommand::kind`]).
    pub kind: &'static str,
    /// Applied or rejected (with a deterministic reason).
    pub status: CommandStatus,
    /// Attempts consumed (≥ 1; > 1 only for retried broadcasts).
    pub attempts: u32,
    /// Wall-clock execution time in microseconds (timing — excluded
    /// from deterministic renderings).
    pub wall_us: u64,
    /// Typed deterministic outcome fields, in a stable order.
    pub fields: Vec<(String, i64)>,
}

/// A hosted tenant session: one network plus its executor state.
#[derive(Debug)]
pub struct NetSession {
    spec: SessionSpec,
    net: SensorNetwork,
    /// Nodes currently marked crashed (dead in every broadcast).
    killed: BTreeSet<NodeId>,
    seq: u64,
    records: Vec<CommandRecord>,
}

impl NetSession {
    /// Build a session from its spec.
    pub fn new(spec: SessionSpec) -> Result<Self, BuildError> {
        let mut b = NetworkBuilder::paper_field(
            f64::from(spec.field_milli) / 1000.0,
            spec.nodes,
            spec.seed,
        );
        if spec.groups > 0 {
            b = b.groups(GroupPlan {
                groups: spec.groups,
                membership: f64::from(spec.membership_ppm) / 1e6,
            });
        }
        let net = b.build()?;
        Ok(Self {
            spec,
            net,
            killed: BTreeSet::new(),
            seq: 0,
            records: Vec::new(),
        })
    }

    /// The spec the session was created from.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The underlying network (read-only).
    pub fn network(&self) -> &SensorNetwork {
        &self.net
    }

    /// The event stream so far, in application order.
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Apply one command: validate, execute (with bounded retries where
    /// the command supports them), record, and return the record.
    pub fn apply(&mut self, cmd: &SessionCommand) -> CommandRecord {
        let seq = self.seq;
        self.seq += 1;
        let start = Instant::now();
        let (status, attempts, fields) = self.execute(seq, cmd);
        let record = CommandRecord {
            seq,
            kind: cmd.kind(),
            status,
            attempts,
            wall_us: start.elapsed().as_micros() as u64,
            fields,
        };
        self.records.push(record.clone());
        record
    }

    fn execute(
        &mut self,
        seq: u64,
        cmd: &SessionCommand,
    ) -> (CommandStatus, u32, Vec<(String, i64)>) {
        match cmd {
            SessionCommand::Broadcast {
                protocol,
                source,
                channels,
                loss_ppm,
                retries,
                min_delivery_ppm,
            } => self.exec_broadcast(
                seq,
                *protocol,
                *source,
                *channels,
                *loss_ppm,
                *retries,
                *min_delivery_ppm,
            ),
            SessionCommand::Multicast { group, source } => self.exec_multicast(*group, *source),
            SessionCommand::MoveIn {
                x_milli,
                y_milli,
                groups,
            } => self.exec_move_in(*x_milli, *y_milli, groups),
            SessionCommand::MoveOut { node } => self.exec_move_out(*node),
            SessionCommand::Kill { node } => self.exec_kill(*node),
            SessionCommand::Revive { node } => self.exec_revive(*node),
            SessionCommand::Repair { node } => self.exec_repair(*node),
            SessionCommand::Mobility {
                epochs,
                movers,
                step_milli,
            } => self.exec_mobility(seq, *epochs, *movers, *step_milli),
            SessionCommand::Snapshot => self.exec_snapshot(),
        }
    }

    fn resolve_source(&self, source: Option<u32>) -> Result<NodeId, String> {
        let id = match source {
            None => return Ok(self.net.sink()),
            Some(id) => NodeId(id),
        };
        if self.net.net().tree().contains(id) {
            Ok(id)
        } else {
            Err(format!("source {} is not attached", id.0))
        }
    }

    fn failure_plan(&self) -> FailurePlan {
        let mut plan = FailurePlan::new();
        for &v in &self.killed {
            plan.kill_node(v, 1);
        }
        plan
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_broadcast(
        &mut self,
        seq: u64,
        protocol: Protocol,
        source: Option<u32>,
        channels: u8,
        loss_ppm: u32,
        retries: u32,
        min_delivery_ppm: u32,
    ) -> (CommandStatus, u32, Vec<(String, i64)>) {
        if channels == 0 {
            return (
                CommandStatus::Rejected("channels must be >= 1".into()),
                1,
                Vec::new(),
            );
        }
        let src = match self.resolve_source(source) {
            Ok(s) => s,
            Err(e) => return (CommandStatus::Rejected(e), 1, Vec::new()),
        };
        if self.killed.contains(&src) {
            return (
                CommandStatus::Rejected(format!("source {} is killed", src.0)),
                1,
                Vec::new(),
            );
        }
        let max_attempts = retries + 1;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Each attempt draws a fresh, deterministic loss stream keyed
            // by (session seed, command seq, attempt).
            let loss = if loss_ppm == 0 {
                LossModel::none()
            } else {
                LossModel::from_ppm(
                    loss_ppm,
                    derive_seed(self.spec.seed, (seq << 8) | u64::from(attempt)),
                )
            };
            let cfg = RunConfig {
                channels,
                failures: self.failure_plan(),
                loss,
                max_retries: retries,
                record_trace: true,
                ..RunConfig::default()
            };
            let out = self.net.broadcast_from(protocol, src, &cfg);
            let delivery_ppm = (out.delivery_ratio() * 1e6).round() as i64;
            let fields = vec![
                ("rounds".into(), out.rounds as i64),
                ("delivered".into(), out.delivered as i64),
                ("targets".into(), out.targets as i64),
                ("collisions".into(), out.collisions.map_or(-1, |c| c as i64)),
                ("max_awake".into(), out.max_awake() as i64),
                ("delivery_ppm".into(), delivery_ppm),
                ("version".into(), self.net.structure_version() as i64),
            ];
            if delivery_ppm as u64 >= u64::from(min_delivery_ppm) {
                return (CommandStatus::Applied, attempt, fields);
            }
            if attempt >= max_attempts {
                return (
                    CommandStatus::Rejected(format!(
                        "delivery {delivery_ppm} ppm below floor {min_delivery_ppm} after {attempt} attempts"
                    )),
                    attempt,
                    fields,
                );
            }
        }
    }

    fn exec_multicast(
        &mut self,
        group: GroupId,
        source: Option<u32>,
    ) -> (CommandStatus, u32, Vec<(String, i64)>) {
        if self.spec.groups == 0 || group >= self.spec.groups {
            return (
                CommandStatus::Rejected(format!(
                    "unknown group {group} (session has {})",
                    self.spec.groups
                )),
                1,
                Vec::new(),
            );
        }
        let src = match self.resolve_source(source) {
            Ok(s) => s,
            Err(e) => return (CommandStatus::Rejected(e), 1, Vec::new()),
        };
        let cfg = RunConfig {
            failures: self.failure_plan(),
            ..RunConfig::default()
        };
        let out = self.net.multicast_from(group, src, &cfg);
        let fields = vec![
            ("group".into(), i64::from(group)),
            ("rounds".into(), out.rounds as i64),
            ("delivered".into(), out.delivered as i64),
            ("targets".into(), out.targets as i64),
            ("max_awake".into(), out.max_awake() as i64),
            ("version".into(), self.net.structure_version() as i64),
        ];
        (CommandStatus::Applied, 1, fields)
    }

    fn exec_move_in(
        &mut self,
        x_milli: i64,
        y_milli: i64,
        groups: &[GroupId],
    ) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let p = Point2::new(x_milli as f64 / 1000.0, y_milli as f64 / 1000.0);
        match self.net.join(p, groups) {
            Ok(report) => {
                let fields = vec![
                    ("node".into(), i64::from(report.node.0)),
                    (
                        "parent".into(),
                        report.parent.map_or(-1, |p| i64::from(p.0)),
                    ),
                    ("cost".into(), report.cost.total() as i64),
                    ("nodes".into(), self.net.len() as i64),
                    ("version".into(), self.net.structure_version() as i64),
                ];
                (CommandStatus::Applied, 1, fields)
            }
            Err(e) => (
                CommandStatus::Rejected(format!("move_in: {e:?}")),
                1,
                Vec::new(),
            ),
        }
    }

    fn exec_move_out(&mut self, node: u32) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let id = NodeId(node);
        match self.net.leave(id) {
            Ok(report) => {
                self.killed.remove(&id);
                let fields = vec![
                    ("node".into(), i64::from(node)),
                    ("rehomed".into(), report.rehomed.len() as i64),
                    ("cost".into(), report.cost.total() as i64),
                    ("nodes".into(), self.net.len() as i64),
                    ("version".into(), self.net.structure_version() as i64),
                ];
                (CommandStatus::Applied, 1, fields)
            }
            Err(e) => (
                CommandStatus::Rejected(format!("move_out: {e:?}")),
                1,
                Vec::new(),
            ),
        }
    }

    fn exec_kill(&mut self, node: u32) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let id = NodeId(node);
        if !self.net.net().tree().contains(id) {
            return (
                CommandStatus::Rejected(format!("node {node} is not attached")),
                1,
                Vec::new(),
            );
        }
        if id == self.net.sink() {
            return (
                CommandStatus::Rejected("cannot kill the sink".into()),
                1,
                Vec::new(),
            );
        }
        if !self.killed.insert(id) {
            return (
                CommandStatus::Rejected(format!("node {node} is already killed")),
                1,
                Vec::new(),
            );
        }
        let fields = vec![
            ("node".into(), i64::from(node)),
            ("killed_total".into(), self.killed.len() as i64),
        ];
        (CommandStatus::Applied, 1, fields)
    }

    fn exec_revive(&mut self, node: u32) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let id = NodeId(node);
        if !self.killed.remove(&id) {
            return (
                CommandStatus::Rejected(format!("node {node} is not killed")),
                1,
                Vec::new(),
            );
        }
        let fields = vec![
            ("node".into(), i64::from(node)),
            ("killed_total".into(), self.killed.len() as i64),
        ];
        (CommandStatus::Applied, 1, fields)
    }

    fn exec_repair(&mut self, node: u32) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let id = NodeId(node);
        match self.net.repair_crash(id, &RepairConfig::default()) {
            Ok(report) => {
                self.killed.remove(&id);
                let fields = vec![
                    ("node".into(), i64::from(node)),
                    ("orphaned".into(), report.orphaned as i64),
                    ("rehomed".into(), report.rehomed.len() as i64),
                    ("lost".into(), report.lost.len() as i64),
                    ("slot_churn".into(), report.slot_churn as i64),
                    ("detection_rounds".into(), report.detection_rounds as i64),
                    ("repair_rounds".into(), report.repair_rounds() as i64),
                    ("nodes".into(), self.net.len() as i64),
                    ("version".into(), self.net.structure_version() as i64),
                ];
                (CommandStatus::Applied, 1, fields)
            }
            Err(e) => (
                CommandStatus::Rejected(format!("repair: {e:?}")),
                1,
                Vec::new(),
            ),
        }
    }

    fn exec_mobility(
        &mut self,
        seq: u64,
        epochs: u32,
        movers: u32,
        step_milli: u32,
    ) -> (CommandStatus, u32, Vec<(String, i64)>) {
        if epochs == 0 || movers == 0 {
            return (
                CommandStatus::Rejected("epochs and movers must be >= 1".into()),
                1,
                Vec::new(),
            );
        }
        let side = f64::from(self.spec.field_milli) / 1000.0;
        let step = f64::from(step_milli) / 1000.0;
        let (mut attempted, mut moved, mut rejected, mut lost) = (0i64, 0i64, 0i64, 0i64);
        for epoch in 0..u64::from(epochs) {
            let mut rng = rng_from_seed(derive_seed(self.spec.seed, (seq << 24) | epoch));
            for _ in 0..movers {
                let sink = self.net.sink();
                let candidates: Vec<NodeId> = self
                    .net
                    .net()
                    .tree()
                    .nodes()
                    .filter(|&u| u != sink)
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                attempted += 1;
                let u = candidates[rng.random_range(0..candidates.len())];
                let here = self.net.position(u);
                let theta = rng.random_range(0.0..std::f64::consts::TAU);
                let target = Point2::new(
                    (here.x + step * theta.cos()).clamp(0.0, side),
                    (here.y + step * theta.sin()).clamp(0.0, side),
                );
                if self.net.leave(u).is_err() {
                    rejected += 1;
                    continue;
                }
                self.killed.remove(&u);
                if self.net.join(target, &[]).is_ok() {
                    moved += 1;
                } else if self.net.join(here, &[]).is_ok() {
                    // Out of range at the target: the node snaps back to
                    // where it was (fresh id, same position).
                    rejected += 1;
                } else {
                    lost += 1;
                }
            }
        }
        let fields = vec![
            ("epochs".into(), i64::from(epochs)),
            ("attempted".into(), attempted),
            ("moved".into(), moved),
            ("rejected".into(), rejected),
            ("lost".into(), lost),
            ("nodes".into(), self.net.len() as i64),
            ("version".into(), self.net.structure_version() as i64),
        ];
        (CommandStatus::Applied, 1, fields)
    }

    fn exec_snapshot(&mut self) -> (CommandStatus, u32, Vec<(String, i64)>) {
        let k = self.net.knowledge();
        let (hits, misses, patched) = self.net.knowledge_stats();
        let fields = vec![
            ("version".into(), self.net.structure_version() as i64),
            ("nodes".into(), k.nodes as i64),
            ("backbone".into(), k.backbone_size as i64),
            ("height".into(), i64::from(k.height)),
            ("delta_b".into(), i64::from(k.delta_b)),
            ("delta_l".into(), i64::from(k.delta_l)),
            ("cache_hits".into(), hits as i64),
            ("cache_misses".into(), misses as i64),
            ("cache_patched".into(), patched as i64),
        ];
        (CommandStatus::Applied, 1, fields)
    }
}

/// Minimal JSON string escaping for deterministic reason texts.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one record as a single JSON line. With `include_timing = false`
/// the wall-clock field is omitted and the line is deterministic.
pub fn render_record(r: &CommandRecord, include_timing: bool) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(s, "{{\"seq\": {}, \"cmd\": \"{}\"", r.seq, r.kind);
    match &r.status {
        CommandStatus::Applied => s.push_str(", \"status\": \"ok\""),
        CommandStatus::Rejected(reason) => {
            let _ = write!(
                s,
                ", \"status\": \"rejected\", \"reason\": \"{}\"",
                escape_json(reason)
            );
        }
    }
    let _ = write!(s, ", \"attempts\": {}", r.attempts);
    if include_timing {
        let _ = write!(s, ", \"wall_us\": {}", r.wall_us);
    }
    s.push_str(", \"fields\": {");
    for (i, (k, v)) in r.fields.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}\"{}\": {v}", escape_json(k));
    }
    s.push_str("}}");
    s
}

/// Render a session's full event stream: a header line describing the
/// spec, then one line per record. With `include_timing = false` the
/// result is a pure function of `(spec, command sequence)` — the
/// byte-identical server-vs-library contract compares exactly this.
pub fn render_stream(
    spec: &SessionSpec,
    records: &[CommandRecord],
    include_timing: bool,
) -> String {
    let mut s = String::with_capacity(64 + 128 * records.len());
    let _ = writeln!(
        s,
        "{{\"stream\": \"{STREAM_SCHEMA}\", \"nodes\": {}, \"seed\": {}, \"field_milli\": {}, \"groups\": {}, \"membership_ppm\": {}}}",
        spec.nodes, spec.seed, spec.field_milli, spec.groups, spec.membership_ppm
    );
    for r in records {
        s.push_str(&render_record(r, include_timing));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nodes: usize, seed: u64) -> SessionSpec {
        SessionSpec {
            nodes,
            seed,
            ..SessionSpec::default()
        }
    }

    fn demo_script() -> Vec<SessionCommand> {
        vec![
            SessionCommand::Snapshot,
            SessionCommand::Broadcast {
                protocol: Protocol::ImprovedCff,
                source: None,
                channels: 1,
                loss_ppm: 0,
                retries: 0,
                min_delivery_ppm: 0,
            },
            SessionCommand::Kill { node: 5 },
            SessionCommand::Broadcast {
                protocol: Protocol::Dfo,
                source: None,
                channels: 1,
                loss_ppm: 0,
                retries: 0,
                min_delivery_ppm: 0,
            },
            SessionCommand::Revive { node: 5 },
            SessionCommand::MoveOut { node: 7 },
            SessionCommand::MoveIn {
                x_milli: 5_000,
                y_milli: 5_000,
                groups: vec![],
            },
            SessionCommand::Mobility {
                epochs: 2,
                movers: 2,
                step_milli: 300,
            },
            SessionCommand::Snapshot,
        ]
    }

    #[test]
    fn scripted_session_is_deterministic() {
        let run = |_: u32| {
            let mut s = NetSession::new(spec(50, 33)).unwrap();
            for cmd in demo_script() {
                s.apply(&cmd);
            }
            render_stream(s.spec(), s.records(), false)
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a, b, "identical scripts must render identical streams");
        assert!(a.starts_with("{\"stream\": \"dsnet-session/1\""));
        assert_eq!(a.lines().count(), 1 + demo_script().len());
    }

    #[test]
    fn kill_degrades_and_revive_restores_broadcast() {
        let mut s = NetSession::new(spec(60, 7)).unwrap();
        let bcast = SessionCommand::Broadcast {
            protocol: Protocol::ImprovedCff,
            source: None,
            channels: 1,
            loss_ppm: 0,
            retries: 0,
            min_delivery_ppm: 0,
        };
        let clean = s.apply(&bcast);
        assert!(clean.status.is_applied());
        let full = clean
            .fields
            .iter()
            .find(|(k, _)| k == "delivered")
            .unwrap()
            .1;

        // Kill a non-sink node: it still counts as a target but is dead.
        let victim = s
            .network()
            .net()
            .tree()
            .nodes()
            .find(|&u| u != s.network().sink())
            .unwrap();
        assert!(s
            .apply(&SessionCommand::Kill { node: victim.0 })
            .status
            .is_applied());
        let degraded = s.apply(&bcast);
        let partial = degraded
            .fields
            .iter()
            .find(|(k, _)| k == "delivered")
            .unwrap()
            .1;
        assert!(partial < full, "{partial} !< {full}");

        assert!(s
            .apply(&SessionCommand::Revive { node: victim.0 })
            .status
            .is_applied());
        let restored = s.apply(&bcast);
        assert_eq!(
            restored
                .fields
                .iter()
                .find(|(k, _)| k == "delivered")
                .unwrap()
                .1,
            full
        );
    }

    #[test]
    fn validation_rejects_without_mutating() {
        let mut s = NetSession::new(spec(40, 9)).unwrap();
        let v0 = s.network().structure_version();
        for cmd in [
            SessionCommand::Broadcast {
                protocol: Protocol::ImprovedCff,
                source: Some(9_999),
                channels: 1,
                loss_ppm: 0,
                retries: 0,
                min_delivery_ppm: 0,
            },
            SessionCommand::Broadcast {
                protocol: Protocol::ImprovedCff,
                source: None,
                channels: 0,
                loss_ppm: 0,
                retries: 0,
                min_delivery_ppm: 0,
            },
            SessionCommand::Multicast {
                group: 0,
                source: None,
            },
            SessionCommand::MoveOut { node: 9_999 },
            SessionCommand::Kill { node: 9_999 },
            SessionCommand::Revive { node: 3 },
            SessionCommand::Kill {
                node: s.network().sink().0,
            },
        ] {
            let rec = s.apply(&cmd);
            assert!(
                matches!(rec.status, CommandStatus::Rejected(_)),
                "{cmd:?} should be rejected"
            );
        }
        assert_eq!(s.network().structure_version(), v0);
        assert_eq!(s.records().len(), 7);
    }

    #[test]
    fn broadcast_retries_are_bounded_and_recorded() {
        let mut s = NetSession::new(spec(50, 21)).unwrap();
        // An impossible floor (loss present, 100% required of a huge
        // sample) exhausts the retry budget.
        let rec = s.apply(&SessionCommand::Broadcast {
            protocol: Protocol::BasicCff,
            source: None,
            channels: 1,
            loss_ppm: 400_000,
            retries: 2,
            min_delivery_ppm: 1_000_000,
        });
        if matches!(rec.status, CommandStatus::Rejected(_)) {
            assert_eq!(rec.attempts, 3, "budget = retries + 1");
        } else {
            // The lossy run can still deliver everything; then it must
            // have stopped as soon as the floor was met.
            assert!(rec.attempts <= 3);
        }
        // A floor of zero never retries.
        let rec = s.apply(&SessionCommand::Broadcast {
            protocol: Protocol::BasicCff,
            source: None,
            channels: 1,
            loss_ppm: 400_000,
            retries: 5,
            min_delivery_ppm: 0,
        });
        assert_eq!(rec.attempts, 1);
        assert!(rec.status.is_applied());
    }

    #[test]
    fn snapshot_reports_cache_and_version_movement() {
        let mut s = NetSession::new(spec(40, 4)).unwrap();
        let a = s.apply(&SessionCommand::Snapshot);
        let b = s.apply(&SessionCommand::Snapshot);
        let field = |r: &CommandRecord, k: &str| {
            r.fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(field(&a, "version"), field(&b, "version"));
        assert!(field(&b, "cache_hits") > field(&a, "cache_hits") - 1);
        s.apply(&SessionCommand::MoveOut { node: 11 });
        let c = s.apply(&SessionCommand::Snapshot);
        assert!(field(&c, "version") > field(&b, "version"));
    }

    #[test]
    fn rendering_separates_timing_from_determinism() {
        let mut s = NetSession::new(spec(30, 2)).unwrap();
        s.apply(&SessionCommand::Snapshot);
        s.apply(&SessionCommand::MoveOut { node: 9_999 });
        let with = render_stream(s.spec(), s.records(), true);
        let without = render_stream(s.spec(), s.records(), false);
        assert!(with.contains("wall_us"));
        assert!(!without.contains("wall_us"));
        assert!(without.contains("\"status\": \"rejected\""));
        assert!(without.contains("\"reason\""));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
