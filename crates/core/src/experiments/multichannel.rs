//! **E5 — multi-channel scaling** (Section 3.3 "Multi-Channels",
//! Theorem 1(3)).
//!
//! With `k` radio channels the TDM windows shrink by a factor `k`: slot
//! `s` maps to round `⌈s/k⌉` on channel `(s−1) mod k`. The paper claims
//! rounds and awake time divide by `k`; this sweep holds n fixed at the
//! largest configured size and varies `k`.

use crate::experiments::common::SweepConfig;
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::runner::{run_cff_basic, run_improved, RunConfig};

/// Channel counts swept.
pub const CHANNELS: [u8; 4] = [1, 2, 4, 8];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let mut table = SweepTable::new(
        format!("E5 — k-channel scaling of Algorithm 2 (n = {n})"),
        "k",
        CHANNELS.iter().map(|&k| k as f64).collect(),
    );
    let mut rounds = Series::new("CFF rounds (Alg 2)");
    let mut cff1_rounds = Series::new("CFF rounds (Alg 1)");
    let mut awake = Series::new("CFF max awake");
    let mut bound = Series::new("Theorem 1(3) bound");
    let mut delivery = Series::new("delivery ratio");

    for &k in &CHANNELS {
        let (mut a, mut b, mut c, mut d, mut e) = (vec![], vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let rcfg = RunConfig {
                channels: k,
                ..Default::default()
            };
            let out = run_improved(net.net(), net.sink(), &rcfg);
            let cff1 = run_cff_basic(net.net(), net.sink(), &rcfg);
            assert!(cff1.completed(), "Alg 1 k={k}");
            a.push(out.rounds as f64);
            e.push(cff1.rounds as f64);
            b.push(out.energy.max_awake as f64);
            c.push(out.bound as f64);
            d.push(out.delivery_ratio());
        }
        rounds.push(Summary::of(a));
        cff1_rounds.push(Summary::of(e));
        awake.push(Summary::of(b));
        bound.push(Summary::of(c));
        delivery.push(Summary::of(d));
    }
    table.add(rounds);
    table.add(cff1_rounds);
    table.add(awake);
    table.add(bound);
    table.add(delivery);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_channels_never_slower_and_always_delivering() {
        let t = run(&SweepConfig::quick());
        for i in 1..t.xs.len() {
            assert!(
                t.series[0].points[i].mean <= t.series[0].points[i - 1].mean + 1e-9,
                "k={} slower than k={}",
                t.xs[i],
                t.xs[i - 1]
            );
        }
        for p in &t.series[4].points {
            assert!((p.mean - 1.0).abs() < 1e-9, "delivery dropped: {}", p.mean);
        }
    }
}
