//! Regeneration of the paper's evaluation (Section 6).
//!
//! One module per figure/table; each returns a
//! `SweepTable` that the `figures` binary in
//! `dsnet-bench` prints and EXPERIMENTS.md records:
//!
//! * [`fig8`] — broadcast latency, CFF vs DFO (paper Figure 8);
//! * [`fig9`] — awake rounds, CFF vs DFO (paper Figure 9);
//! * [`fig10`] — backbone size and height (paper Figure 10);
//! * [`fig11`] — `D`, `d`, `Δ`, `δ` (paper Figure 11);
//! * [`multichannel`] — the `k`-channel scaling of Theorem 1(3) (E5);
//! * [`robustness`] — coverage under backbone failures (E6);
//! * [`multicast`] — multicast vs broadcast across group densities (E7);
//! * [`reconfig`] — move-in/move-out round costs vs Theorems 2/3 (E8);
//! * [`slotbounds`] — measured slots vs the Lemma-3 bounds (E9);
//! * [`fields`] — the 8×8 / 10×10 / 12×12 field sweep (E10);
//! * [`discovery`] — the O(d_new) neighbour-discovery primitive (E11);
//! * [`modefidelity`] — strict vs paper-faithful slot modes (E12);
//! * [`parentrule`] — parent-selection ablation (E13);
//! * [`multisink`] — multi-sink failover robustness (E14);
//! * [`floodbase`] — unstructured randomized-flooding baseline (E15);
//! * [`backbone_quality`] — BT(G) vs greedy CDS backbones (E16).

pub mod backbone_quality;
pub mod common;
pub mod discovery;
pub mod fields;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod floodbase;
pub mod modefidelity;
pub mod multicast;
pub mod multichannel;
pub mod multisink;
pub mod parentrule;
pub mod reconfig;
pub mod robustness;
pub mod slotbounds;

pub use common::SweepConfig;

use dsnet_metrics::SweepTable;

/// Every experiment of the evaluation, in presentation order.
pub fn all_tables(cfg: &SweepConfig) -> Vec<SweepTable> {
    vec![
        fig8::run(cfg),
        fig9::run(cfg),
        fig10::run(cfg),
        fig11::run(cfg),
        multichannel::run(cfg),
        robustness::run(cfg),
        multicast::run(cfg),
        reconfig::run(cfg),
        slotbounds::run(cfg),
        fields::run(cfg),
        discovery::run(cfg),
        modefidelity::run(cfg),
        parentrule::run(cfg),
        multisink::run(cfg),
        floodbase::run(cfg),
        backbone_quality::run(cfg),
    ]
}
