//! **E8 — reconfiguration cost** (Theorems 2 and 3).
//!
//! Move-in: every build replays n arrivals, so the per-node move-in cost
//! (discovery + slot repair + root propagation ≤ O(d) + 2h + 2d + D) comes
//! straight from the build reports. Move-out: remove a sample of interior
//! nodes from a fresh network and account the repair work against the
//! Theorem-3 `O(h + |T|·D²)` form.

use crate::experiments::common::SweepConfig;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "E8 — reconfiguration round costs (Theorems 2/3)",
        "n",
        cfg.xs(),
    );
    let mut movein = Series::new("move-in rounds (mean/node)");
    let mut movein_slot = Series::new("move-in slot-repair rounds");
    let mut moveout = Series::new("move-out rounds (mean)");
    let mut moveout_rehomed = Series::new("move-out rehomed |T|-1");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let mut net = cfg.network(n, rep);
            for r in net.build_reports() {
                a.push(r.cost.total() as f64);
                b.push(r.cost.slot_update as f64);
            }
            // Try to remove up to 5 interior (non-root) nodes; skip cut
            // vertices, which the operation legitimately refuses.
            let candidates: Vec<_> = net
                .net()
                .tree()
                .nodes()
                .filter(|&u| u != net.sink())
                .step_by(7)
                .take(10)
                .collect();
            let mut removed = 0;
            for u in candidates {
                if removed >= 5 {
                    break;
                }
                if let Ok(report) = net.leave(u) {
                    c.push(report.cost.total() as f64);
                    d.push(report.rehomed.len() as f64);
                    removed += 1;
                }
            }
        }
        movein.push(Summary::of(a));
        movein_slot.push(Summary::of(b));
        moveout.push(Summary::of(c));
        moveout_rehomed.push(Summary::of(d));
    }
    table.add(movein);
    table.add(movein_slot);
    table.add(moveout);
    table.add(moveout_rehomed);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_positive_and_modest() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let n = t.xs[i];
            let move_in = t.series[0].points[i].mean;
            assert!(move_in >= 1.0);
            // Theorem 2: far below n rounds per insertion.
            assert!(move_in < n, "move-in {move_in} at n={n}");
        }
    }

    #[test]
    fn move_out_was_exercised() {
        let t = run(&SweepConfig::quick());
        for p in &t.series[2].points {
            assert!(p.n > 0, "no move-out succeeded");
        }
    }
}
