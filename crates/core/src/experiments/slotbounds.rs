//! **E9 — slot-bound ablation** (Lemma 3 and the end of Section 4).
//!
//! The paper proves `δ ≤ d(d+1)/2 + 1` and `Δ ≤ D(D+1)/2 + 1`, then
//! observes the measured values are *much* smaller — around a quarter of
//! the bound analytically, and below `d` and `D` in the simulations. This
//! table puts the measured maxima next to both the quadratic bounds and
//! the degrees, so the gap is visible at every n.

use crate::experiments::common::SweepConfig;
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::analytic::slot_bounds;

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "E9 — measured slot maxima vs the Lemma-3 bounds",
        "n",
        cfg.xs(),
    );
    let mut delta_b = Series::new("δ measured");
    let mut b_bound = Series::new("δ bound d(d+1)/2+1");
    let mut delta_l = Series::new("Δ measured");
    let mut l_bound = Series::new("Δ bound D(D+1)/2+1");
    let mut ratio = Series::new("Δ / bound");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d, mut e) = (vec![], vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let s = cfg.network(n, rep).stats();
            let (bb, lb) = slot_bounds(s.backbone_max_degree as u32, s.max_degree as u32);
            a.push(s.delta_b as f64);
            b.push(bb as f64);
            c.push(s.delta_l as f64);
            d.push(lb as f64);
            e.push(s.delta_l as f64 / lb as f64);
        }
        delta_b.push(Summary::of(a));
        b_bound.push(Summary::of(b));
        delta_l.push(Summary::of(c));
        l_bound.push(Summary::of(d));
        ratio.push(Summary::of(e));
    }
    table.add(delta_b);
    table.add(b_bound);
    table.add(delta_l);
    table.add(l_bound);
    table.add(ratio);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_slots_respect_bounds_with_large_margin() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            assert!(t.series[0].points[i].max <= t.series[1].points[i].min);
            assert!(t.series[2].points[i].max <= t.series[3].points[i].min);
            // The paper's "much smaller in practice" observation.
            assert!(
                t.series[4].points[i].mean < 0.5,
                "Δ/bound ratio {} not ≪ 1",
                t.series[4].points[i].mean
            );
        }
    }
}
