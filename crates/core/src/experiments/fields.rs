//! **E10 — field-size sweep** (the 8×8 / 10×10 / 12×12 settings of
//! Section 6).
//!
//! The paper tested all three fields but plotted only 10×10 "because of
//! the space limitation"; this table fills in the other two at a fixed n:
//! smaller fields are denser, so D grows, while the backbone (a function
//! of area) shrinks — and the CFF advantage persists everywhere.

use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Field sides swept (units of 100 m).
pub const SIDES: [f64; 3] = [8.0, 10.0, 12.0];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let mut table = SweepTable::new(
        format!("E10 — field-size sweep at n = {n} (sides in units of 100 m)"),
        "side",
        SIDES.to_vec(),
    );
    let mut cff = Series::new("CFF rounds");
    let mut dfo = Series::new("DFO rounds");
    let mut bt = Series::new("backbone size");
    let mut big_d = Series::new("D");

    for &side in &SIDES {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let sub = SweepConfig {
                field_side: side,
                ..cfg.clone()
            };
            let net = sub.network(n, rep);
            let cff_out = net.broadcast(Protocol::ImprovedCff);
            let dfo_out = net.broadcast(Protocol::Dfo);
            let stats = net.stats();
            a.push(cff_out.rounds as f64);
            b.push(dfo_out.rounds as f64);
            c.push(stats.backbone_size as f64);
            d.push(stats.max_degree as f64);
        }
        cff.push(Summary::of(a));
        dfo.push(Summary::of(b));
        bt.push(Summary::of(c));
        big_d.push(Summary::of(d));
    }
    table.add(cff);
    table.add(dfo);
    table.add(bt);
    table.add(big_d);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cff_wins_on_every_field() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            assert!(
                t.series[0].points[i].mean < t.series[1].points[i].mean,
                "side {}",
                t.xs[i]
            );
        }
    }
}
