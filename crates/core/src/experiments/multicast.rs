//! **E7 — multicast vs broadcast** (Section 3.4).
//!
//! Sweep the group density: for each membership probability the multicast
//! session prunes the sub-trees without group members, saving relays and
//! radio-on time; the paper additionally expects the multicast to finish
//! no later than the broadcast. Delivery ratio is reported honestly (see
//! the pruning caveat in `dsnet-protocols::multicast`).

use crate::builder::{GroupPlan, NetworkBuilder};
use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::multicast::relay_count;
use dsnet_protocols::runner::{run_multicast_reliable, RunConfig};

/// Group membership probabilities swept.
pub const DENSITIES: [f64; 5] = [0.02, 0.05, 0.10, 0.25, 1.0];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let mut table = SweepTable::new(
        format!("E7 — multicast vs broadcast across group densities (n = {n})"),
        "membership",
        DENSITIES.to_vec(),
    );
    let mut rounds = Series::new("multicast rounds");
    let mut reliable_rounds = Series::new("reliable multicast rounds");
    let mut bcast_rounds = Series::new("broadcast rounds");
    let mut relays = Series::new("#relays");
    let mut listen = Series::new("total radio-on rounds");
    let mut bcast_listen = Series::new("broadcast radio-on rounds");
    let mut delivery = Series::new("delivery ratio");
    let mut reliable_delivery = Series::new("reliable delivery");

    for &p in &DENSITIES {
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h) = (
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
        );
        for rep in 0..cfg.reps {
            let net = NetworkBuilder::paper_field(cfg.field_side, n, cfg.seed(n, rep))
                .groups(GroupPlan {
                    groups: 1,
                    membership: p,
                })
                .build()
                .expect("build");
            let m = net.multicast(0);
            let rel = run_multicast_reliable(net.mcnet(), net.sink(), 0, &RunConfig::default());
            let bc = net.broadcast(Protocol::ImprovedCff);
            a.push(m.rounds as f64);
            g.push(rel.rounds as f64);
            b.push(bc.rounds as f64);
            c.push(relay_count(net.mcnet(), 0) as f64);
            d.push((m.energy.total_listen + m.energy.total_tx) as f64);
            e.push((bc.energy.total_listen + bc.energy.total_tx) as f64);
            f.push(m.delivery_ratio());
            h.push(rel.delivery_ratio());
        }
        rounds.push(Summary::of(a));
        reliable_rounds.push(Summary::of(g));
        bcast_rounds.push(Summary::of(b));
        relays.push(Summary::of(c));
        listen.push(Summary::of(d));
        bcast_listen.push(Summary::of(e));
        delivery.push(Summary::of(f));
        reliable_delivery.push(Summary::of(h));
    }
    table.add(rounds);
    table.add(reliable_rounds);
    table.add(bcast_rounds);
    table.add(relays);
    table.add(listen);
    table.add(bcast_listen);
    table.add(delivery);
    table.add(reliable_delivery);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparser_groups_use_fewer_relays_and_less_energy() {
        let t = run(&SweepConfig::quick());
        let relays = &t.series[3];
        let energy = &t.series[4];
        let last = t.xs.len() - 1;
        assert!(relays.points[0].mean <= relays.points[last].mean);
        assert!(energy.points[0].mean <= energy.points[last].mean);
    }

    #[test]
    fn multicast_never_slower_than_broadcast() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            // Paper-faithful pruning: no slower than broadcast.
            assert!(t.series[0].points[i].mean <= t.series[2].points[i].mean + 1e-9);
            // Session-slot multicast re-assigns slots from scratch, so its
            // windows are usually (not provably) no larger; allow slack.
            // What *is* guaranteed is exact delivery.
            assert!(
                t.series[1].points[i].mean <= t.series[2].points[i].mean * 1.3 + 4.0,
                "density {}",
                t.xs[i]
            );
            assert_eq!(t.series[7].points[i].mean, 1.0, "density {}", t.xs[i]);
        }
    }

    #[test]
    fn delivery_stays_high() {
        let t = run(&SweepConfig::quick());
        for p in &t.series[6].points {
            assert!(p.mean >= 0.95, "delivery {}", p.mean);
        }
    }
}
