//! **Figure 10** — size and height of the backbone BT(G).
//!
//! The paper's observation: the backbone height stays far below the
//! backbone size and both grow slowly with n, which is what makes the
//! `δ·h` term of the CFF bound small.

use crate::experiments::common::SweepConfig;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new("Fig. 10 — backbone size and height", "n", cfg.xs());
    let mut size = Series::new("backbone size |BT|");
    let mut height = Series::new("backbone height h_BT");
    let mut clusters = Series::new("#clusters (heads)");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c) = (vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let s = cfg.network(n, rep).stats();
            a.push(s.backbone_size as f64);
            b.push(s.backbone_height as f64);
            c.push(s.heads as f64);
        }
        size.push(Summary::of(a));
        height.push(Summary::of(b));
        clusters.push(Summary::of(c));
    }
    table.add(size);
    table.add(height);
    table.add(clusters);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_is_much_smaller_than_size() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let size = t.series[0].points[i].mean;
            let height = t.series[1].points[i].mean;
            assert!(height < size, "n={}", t.xs[i]);
        }
    }

    #[test]
    fn backbone_respects_property_1() {
        // |BT| ≤ 2·#clusters − 1 holds per run, so it holds for the means
        // by linearity (mixing max of one rep with min of another would
        // compare different deployments).
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let size = t.series[0].points[i].mean;
            let clusters = t.series[2].points[i].mean;
            assert!(size <= 2.0 * clusters - 1.0 + 1e-9);
        }
    }
}
