//! **E12 — slot-mode fidelity ablation** (the DESIGN.md §4 substitution).
//!
//! The paper's Time-Slot Condition 2 constrains a leaf's transmitter set
//! to internal nodes *one depth above it*, but Algorithm 2's phase 2 puts
//! every internal node (all depths) into a single window, so cross-depth
//! collisions are possible that the literal condition does not rule out.
//! `SlotMode::PaperFaithful` implements the literal condition;
//! `SlotMode::Strict` extends it to every internal G-neighbour, making
//! phase 2 provably collision-free. This table measures what the gap
//! costs: delivery ratio and the slot maxima in both modes.

use crate::builder::NetworkBuilder;
use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_cluster::SlotMode;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "E12 — strict vs paper-faithful slot modes (Algorithm 2)",
        "n",
        cfg.xs(),
    );
    let mut strict_delivery = Series::new("strict delivery");
    let mut paper_delivery = Series::new("paper-faithful delivery");
    let mut strict_delta = Series::new("strict Δ");
    let mut paper_delta = Series::new("paper-faithful Δ");
    let mut paper_collisions = Series::new("paper-faithful collisions");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d, mut e) = (vec![], vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let seed = cfg.seed(n, rep);
            let strict = NetworkBuilder::paper_field(cfg.field_side, n, seed)
                .slot_mode(SlotMode::Strict)
                .build()
                .expect("build");
            let paper = NetworkBuilder::paper_field(cfg.field_side, n, seed)
                .slot_mode(SlotMode::PaperFaithful)
                .build()
                .expect("build");
            let so = strict.broadcast(Protocol::ImprovedCff);
            let po = paper.broadcast(Protocol::ImprovedCff);
            a.push(so.delivery_ratio());
            b.push(po.delivery_ratio());
            c.push(strict.stats().delta_l as f64);
            d.push(paper.stats().delta_l as f64);
            e.push(po.collisions.expect("fidelity runs record traces") as f64);
        }
        strict_delivery.push(Summary::of(a));
        paper_delivery.push(Summary::of(b));
        strict_delta.push(Summary::of(c));
        paper_delta.push(Summary::of(d));
        paper_collisions.push(Summary::of(e));
    }
    table.add(strict_delivery);
    table.add(paper_delivery);
    table.add(strict_delta);
    table.add(paper_delta);
    table.add(paper_collisions);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_mode_always_delivers_fully() {
        let t = run(&SweepConfig::quick());
        for p in &t.series[0].points {
            assert_eq!(p.mean, 1.0);
        }
    }

    #[test]
    fn paper_mode_loses_real_deliveries_strict_mode_never() {
        // Headline finding of this ablation (recorded in EXPERIMENTS.md):
        // under the *physical* collision model, the literal Time-Slot
        // Condition 2 delivers only ~55–80% of the leaves, because phase 2
        // shares one window across depths while the condition only
        // deconflicts the depth directly above each leaf. The strict
        // extension restores 100% delivery.
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let paper = t.series[1].points[i].mean;
            let strict = t.series[0].points[i].mean;
            assert_eq!(strict, 1.0);
            assert!(
                paper >= 0.4,
                "paper-mode delivery collapsed entirely: {paper}"
            );
            assert!(paper < 1.0, "expected the documented fidelity gap to show");
            // The gap is caused by actual receiver-side collisions.
            assert!(t.series[4].points[i].mean > 0.0);
        }
    }
}
