//! **Figure 9** — rounds a node must stay awake: CFF vs DFO.
//!
//! In DFO no node can tell when the broadcast finished, so every radio
//! stays on for the whole tour: the per-node awake time tracks Figure 8's
//! total rounds. Under CFF a node is awake only for its listening window
//! and its own transmissions (Theorem 1(2): ≤ 2δ + Δ), which is why the
//! paper calls the protocol energy-saving. We report the max (the paper's
//! plotted series) and the mean.

use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "Fig. 9 — rounds a node must be awake, CFF vs DFO",
        "n",
        cfg.xs(),
    );
    let mut cff_max = Series::new("CFF max awake");
    let mut cff_mean = Series::new("CFF mean awake");
    let mut dfo_max = Series::new("DFO max awake [19]");
    let mut dfo_mean = Series::new("DFO mean awake [19]");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let improved = net.broadcast(Protocol::ImprovedCff);
            let baseline = net.broadcast(Protocol::Dfo);
            a.push(improved.energy.max_awake as f64);
            b.push(improved.energy.mean_awake);
            c.push(baseline.energy.max_awake as f64);
            d.push(baseline.energy.mean_awake);
        }
        cff_max.push(Summary::of(a));
        cff_mean.push(Summary::of(b));
        dfo_max.push(Summary::of(c));
        dfo_mean.push(Summary::of(d));
    }
    table.add(cff_max);
    table.add(cff_mean);
    table.add(dfo_max);
    table.add(dfo_mean);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cff_awake_is_far_below_dfo() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let cff = t.series[0].points[i].mean;
            let dfo = t.series[2].points[i].mean;
            assert!(cff < dfo, "n={}: {cff} !< {dfo}", t.xs[i]);
        }
    }

    #[test]
    fn dfo_awake_equals_total_rounds() {
        // Every node listens or transmits every round of the tour.
        let cfg = SweepConfig::quick();
        let net = cfg.network(60, 0);
        let out = net.broadcast(Protocol::Dfo);
        assert_eq!(out.energy.max_awake, out.rounds);
    }
}
