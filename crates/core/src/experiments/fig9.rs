//! **Figure 9** — rounds a node must stay awake: CFF vs DFO.
//!
//! In DFO no node can tell when the broadcast finished, so every radio
//! stays on for the whole tour: the per-node awake time tracks Figure 8's
//! total rounds. Under CFF a node is awake only for its listening window
//! and its own transmissions (Theorem 1(2): ≤ 2δ + Δ), which is why the
//! paper calls the protocol energy-saving. We report the max (the paper's
//! plotted series) and the mean.
//!
//! Like Figure 8, this driver rides the campaign engine: same
//! deployments as the legacy sequential loop, executed in parallel.

use crate::campaign::sweep_spec;
use crate::experiments::common::SweepConfig;
use dsnet_campaign::{CampaignResult, ProtocolSpec};
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table, using every
/// available core.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    table_of(&run_campaign(cfg, 0))
}

/// The campaign behind the figure, on `threads` workers (0 = all cores).
pub fn run_campaign(cfg: &SweepConfig, threads: usize) -> CampaignResult {
    let spec = sweep_spec(
        "fig9-awake-rounds",
        cfg,
        vec![ProtocolSpec::ImprovedCff, ProtocolSpec::Dfo],
    );
    crate::campaign::run(&spec, threads, None)
}

/// Fold a figure-9 campaign result into the published table.
pub fn table_of(result: &CampaignResult) -> SweepTable {
    let ns = &result.spec.ns;
    let mut table = SweepTable::new(
        "Fig. 9 — rounds a node must be awake, CFF vs DFO",
        "n",
        ns.iter().map(|&n| n as f64).collect(),
    );
    let series = [
        ("CFF max awake", ProtocolSpec::ImprovedCff, true),
        ("CFF mean awake", ProtocolSpec::ImprovedCff, false),
        ("DFO max awake [19]", ProtocolSpec::Dfo, true),
        ("DFO mean awake [19]", ProtocolSpec::Dfo, false),
    ];
    for (name, protocol, take_max) in series {
        let mut s = Series::new(name);
        for &n in ns {
            s.push(Summary::of(
                result
                    .select(|t| t.protocol == protocol && t.n == n)
                    .map(|(_, r)| {
                        if take_max {
                            r.max_awake as f64
                        } else {
                            r.mean_awake
                        }
                    }),
            ));
        }
        table.add(s);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Protocol;

    #[test]
    fn cff_awake_is_far_below_dfo() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let cff = t.series[0].points[i].mean;
            let dfo = t.series[2].points[i].mean;
            assert!(cff < dfo, "n={}: {cff} !< {dfo}", t.xs[i]);
        }
    }

    #[test]
    fn dfo_awake_equals_total_rounds() {
        // Every node listens or transmits every round of the tour.
        let cfg = SweepConfig::quick();
        let net = cfg.network(60, 0);
        let out = net.broadcast(Protocol::Dfo);
        assert_eq!(out.energy.max_awake, out.rounds);
    }

    #[test]
    fn table_is_thread_count_invariant() {
        let cfg = SweepConfig::quick();
        let serial = table_of(&run_campaign(&cfg, 1));
        let parallel = table_of(&run_campaign(&cfg, 4));
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
    }
}
