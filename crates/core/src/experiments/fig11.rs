//! **Figure 11** — `D`, `d`, `Δ` and `δ`.
//!
//! The paper's key empirical point (end of Section 4): the largest
//! assigned time-slots `δ` and `Δ` stay *far* below their worst-case
//! bounds `d(d+1)/2 + 1` and `D(D+1)/2 + 1` — in the paper's runs they
//! even stay below `d` and `D` themselves — and `d ≪ D`, so the improved
//! protocol keeps getting better as the network densifies.

use crate::experiments::common::SweepConfig;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "Fig. 11 — degrees (D, d) and largest time-slots (Δ, δ)",
        "n",
        cfg.xs(),
    );
    let mut big_d = Series::new("D (max degree of G)");
    let mut small_d = Series::new("d (max degree of G(V_BT))");
    let mut delta_l = Series::new("Δ (largest l-slot)");
    let mut delta_b = Series::new("δ (largest b-slot)");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let s = cfg.network(n, rep).stats();
            a.push(s.max_degree as f64);
            b.push(s.backbone_max_degree as f64);
            c.push(s.delta_l as f64);
            d.push(s.delta_b as f64);
        }
        big_d.push(Summary::of(a));
        small_d.push(Summary::of(b));
        delta_l.push(Summary::of(c));
        delta_b.push(Summary::of(d));
    }
    table.add(big_d);
    table.add(small_d);
    table.add(delta_l);
    table.add(delta_b);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_degree_is_below_graph_degree() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            assert!(t.series[1].points[i].mean <= t.series[0].points[i].mean);
        }
    }

    #[test]
    fn slots_stay_below_lemma3_bounds() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let big_d = t.series[0].points[i].max;
            let small_d = t.series[1].points[i].max;
            let delta_l = t.series[2].points[i].max;
            let delta_b = t.series[3].points[i].max;
            assert!(delta_l <= big_d * (big_d + 1.0) / 2.0 + 1.0);
            assert!(delta_b <= small_d * (small_d + 1.0) / 2.0 + 1.0);
        }
    }
}
