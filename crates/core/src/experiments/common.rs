//! Shared sweep configuration and network construction.

use crate::builder::NetworkBuilder;
use crate::network::SensorNetwork;
use dsnet_geom::rng::derive_seed;

/// Parameters of an evaluation sweep. The defaults reproduce the paper's
/// plotted setting: the 10×10-unit field (1 unit = 100 m, 50 m range) with
/// n from 100 to 500, averaged over several seeded repetitions.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Square field side, in units of 100 m.
    pub field_side: f64,
    /// The node counts swept.
    pub ns: Vec<usize>,
    /// Repetitions per configuration (different deployment seeds).
    pub reps: u64,
    /// Base seed all per-run seeds derive from.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            field_side: 10.0,
            ns: vec![100, 200, 300, 400, 500],
            reps: 5,
            base_seed: 2007,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for fast test runs.
    pub fn quick() -> Self {
        Self {
            field_side: 10.0,
            ns: vec![60, 120],
            reps: 2,
            base_seed: 2007,
        }
    }

    /// X-axis values as floats.
    pub fn xs(&self) -> Vec<f64> {
        self.ns.iter().map(|&n| n as f64).collect()
    }

    /// The deployment seed of repetition `rep` at size `n`.
    pub fn seed(&self, n: usize, rep: u64) -> u64 {
        derive_seed(self.base_seed, (n as u64) << 20 | rep)
    }

    /// Build the network for `(n, rep)` on the configured field.
    pub fn network(&self, n: usize, rep: u64) -> SensorNetwork {
        NetworkBuilder::paper_field(self.field_side, n, self.seed(n, rep))
            .build()
            .expect("incremental deployments always build")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_across_reps_and_sizes() {
        let cfg = SweepConfig::default();
        assert_ne!(cfg.seed(100, 0), cfg.seed(100, 1));
        assert_ne!(cfg.seed(100, 0), cfg.seed(200, 0));
        assert_eq!(cfg.seed(100, 0), cfg.seed(100, 0));
    }

    #[test]
    fn quick_networks_build() {
        let cfg = SweepConfig::quick();
        let net = cfg.network(60, 0);
        assert_eq!(net.len(), 60);
    }
}
