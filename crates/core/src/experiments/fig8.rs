//! **Figure 8** — rounds to complete a broadcast: CFF vs DFO.
//!
//! The paper plots the number of rounds the collision-free-flooding
//! broadcast (Algorithm 2) and the depth-first-order broadcast of \[19\]
//! need on the 10×10 field as n grows, and finds CFF dramatically faster
//! with a gap that widens with n (DFO grows linearly with the backbone
//! size, CFF with `δ·h + Δ`). We additionally report Algorithm 1 and the
//! Theorem-1 analytic bound for context.
//!
//! Since the campaign engine landed this driver is a thin shell over it:
//! the sweep expands to a (protocol × n × rep) grid executed in parallel,
//! and the table is folded from the per-trial records. Results are
//! identical to the old sequential loop — trials run on the same
//! deployments (`SweepConfig::seed`) — just faster.

use crate::campaign::sweep_spec;
use crate::experiments::common::SweepConfig;
use dsnet_campaign::{CampaignResult, ProtocolSpec};
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table, using every
/// available core.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    table_of(&run_campaign(cfg, 0))
}

/// The campaign behind the figure, on `threads` workers (0 = all cores).
pub fn run_campaign(cfg: &SweepConfig, threads: usize) -> CampaignResult {
    let spec = sweep_spec(
        "fig8-broadcast-rounds",
        cfg,
        vec![
            ProtocolSpec::ImprovedCff,
            ProtocolSpec::BasicCff,
            ProtocolSpec::Dfo,
        ],
    );
    crate::campaign::run(&spec, threads, None)
}

/// Fold a figure-8 campaign result into the published table.
pub fn table_of(result: &CampaignResult) -> SweepTable {
    let ns = &result.spec.ns;
    let mut table = SweepTable::new(
        "Fig. 8 — broadcast latency (rounds), CFF vs DFO",
        "n",
        ns.iter().map(|&n| n as f64).collect(),
    );
    let series = [
        ("CFF rounds (Alg 2)", ProtocolSpec::ImprovedCff),
        ("CFF basic rounds (Alg 1)", ProtocolSpec::BasicCff),
        ("DFO rounds [19]", ProtocolSpec::Dfo),
    ];
    for (name, protocol) in series {
        let mut s = Series::new(name);
        for &n in ns {
            let recs: Vec<u64> = result
                .select(|t| t.protocol == protocol && t.n == n)
                .map(|(t, r)| {
                    assert!(
                        r.completed(),
                        "{} failed at n={n} rep={}: {}/{}",
                        protocol.name(),
                        t.rep,
                        r.delivered,
                        r.targets
                    );
                    r.rounds
                })
                .collect();
            s.push(Summary::of_u64(recs));
        }
        table.add(s);
    }
    let mut bound = Series::new("Theorem 1 bound (δ·h_BT + Δ)");
    for &n in ns {
        bound.push(Summary::of_u64(
            result
                .select(|t| t.protocol == ProtocolSpec::ImprovedCff && t.n == n)
                .map(|(_, r)| r.bound),
        ));
    }
    table.add(bound);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cff_beats_dfo_at_every_size() {
        let t = run(&SweepConfig::quick());
        let cff = &t.series[0];
        let dfo = &t.series[2];
        for i in 0..t.xs.len() {
            assert!(
                cff.points[i].mean < dfo.points[i].mean,
                "n={}: CFF {} !< DFO {}",
                t.xs[i],
                cff.points[i].mean,
                dfo.points[i].mean
            );
        }
    }

    #[test]
    fn measured_rounds_stay_below_the_bound() {
        let t = run(&SweepConfig::quick());
        let cff = &t.series[0];
        let bound = &t.series[3];
        for i in 0..t.xs.len() {
            assert!(cff.points[i].max <= bound.points[i].max + 2.0);
        }
    }

    #[test]
    fn table_is_thread_count_invariant() {
        let cfg = SweepConfig::quick();
        let serial = table_of(&run_campaign(&cfg, 1));
        let parallel = table_of(&run_campaign(&cfg, 4));
        assert_eq!(serial.to_markdown(), parallel.to_markdown());
    }
}
