//! **Figure 8** — rounds to complete a broadcast: CFF vs DFO.
//!
//! The paper plots the number of rounds the collision-free-flooding
//! broadcast (Algorithm 2) and the depth-first-order broadcast of \[19\]
//! need on the 10×10 field as n grows, and finds CFF dramatically faster
//! with a gap that widens with n (DFO grows linearly with the backbone
//! size, CFF with `δ·h + Δ`). We additionally report Algorithm 1 and the
//! Theorem-1 analytic bound for context.

use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "Fig. 8 — broadcast latency (rounds), CFF vs DFO",
        "n",
        cfg.xs(),
    );
    let mut cff = Series::new("CFF rounds (Alg 2)");
    let mut cff1 = Series::new("CFF basic rounds (Alg 1)");
    let mut dfo = Series::new("DFO rounds [19]");
    let mut bound = Series::new("Theorem 1 bound (δ·h_BT + Δ)");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let improved = net.broadcast(Protocol::ImprovedCff);
            assert!(improved.completed(), "CFF2 failed at n={n} rep={rep}");
            let basic = net.broadcast(Protocol::BasicCff);
            assert!(basic.completed(), "CFF1 failed at n={n} rep={rep}");
            let baseline = net.broadcast(Protocol::Dfo);
            assert!(baseline.completed(), "DFO failed at n={n} rep={rep}");
            a.push(improved.rounds);
            b.push(basic.rounds);
            c.push(baseline.rounds);
            d.push(improved.bound);
        }
        cff.push(Summary::of_u64(a));
        cff1.push(Summary::of_u64(b));
        dfo.push(Summary::of_u64(c));
        bound.push(Summary::of_u64(d));
    }
    table.add(cff);
    table.add(cff1);
    table.add(dfo);
    table.add(bound);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cff_beats_dfo_at_every_size() {
        let t = run(&SweepConfig::quick());
        let cff = &t.series[0];
        let dfo = &t.series[2];
        for i in 0..t.xs.len() {
            assert!(
                cff.points[i].mean < dfo.points[i].mean,
                "n={}: CFF {} !< DFO {}",
                t.xs[i],
                cff.points[i].mean,
                dfo.points[i].mean
            );
        }
    }

    #[test]
    fn measured_rounds_stay_below_the_bound() {
        let t = run(&SweepConfig::quick());
        let cff = &t.series[0];
        let bound = &t.series[3];
        for i in 0..t.xs.len() {
            assert!(cff.points[i].max <= bound.points[i].max + 2.0);
        }
    }
}
