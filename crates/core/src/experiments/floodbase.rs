//! **E15 — unstructured flooding baseline** (the broadcast-storm
//! motivation of Section 1, reference \[16\]).
//!
//! Randomized-backoff flooding needs no structure at all — so why pay for
//! CNet(G)? This table answers with the classic reliability/latency
//! dilemma: at small contention windows the flood collides and orphans a
//! big part of the network; at windows wide enough to be reliable it is
//! slower and keeps radios on longer than the slotted CFF broadcast, which
//! is simultaneously exact, faster and asleep almost always.

use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_geom::rng::derive_seed;
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::flooding::run_flooding;
use dsnet_radio::FailurePlan;

/// Contention windows swept.
pub const WINDOWS: [u64; 5] = [1, 2, 4, 8, 16];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let mut table = SweepTable::new(
        format!("E15 — randomized flooding vs CFF (n = {n})"),
        "window W",
        WINDOWS.iter().map(|&w| w as f64).collect(),
    );
    let mut delivery = Series::new("flooding delivery");
    let mut rounds = Series::new("flooding last delivery round");
    let mut awake = Series::new("flooding max awake");
    let mut cff_rounds = Series::new("CFF rounds");
    let mut cff_awake = Series::new("CFF max awake");

    for &w in &WINDOWS {
        let (mut a, mut b, mut c, mut d, mut e) = (vec![], vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let flood = run_flooding(
                net.net().graph(),
                net.sink(),
                w,
                derive_seed(cfg.base_seed, 0xF100D + w * 100 + rep),
                FailurePlan::new(),
            );
            let cff = net.broadcast(Protocol::ImprovedCff);
            a.push(flood.delivery_ratio());
            b.push(flood.last_delivery_round as f64);
            c.push(flood.energy.max_awake as f64);
            d.push(cff.rounds as f64);
            e.push(cff.energy.max_awake as f64);
        }
        delivery.push(Summary::of(a));
        rounds.push(Summary::of(b));
        awake.push(Summary::of(c));
        cff_rounds.push(Summary::of(d));
        cff_awake.push(Summary::of(e));
    }
    table.add(delivery);
    table.add(rounds);
    table.add(awake);
    table.add(cff_rounds);
    table.add(cff_awake);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cff_always_sleeps_more_than_flooding() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            assert!(
                t.series[4].points[i].mean < t.series[2].points[i].mean,
                "W={}: CFF awake {} !< flooding awake {}",
                t.xs[i],
                t.series[4].points[i].mean,
                t.series[2].points[i].mean
            );
        }
    }

    #[test]
    fn tiny_windows_lose_deliveries() {
        let t = run(&SweepConfig::quick());
        // W = 1 must show real loss on unit-disk densities; wide windows
        // recover (monotone trend up to noise).
        assert!(t.series[0].points[0].mean < 1.0);
        let last = t.xs.len() - 1;
        assert!(t.series[0].points[last].mean > t.series[0].points[0].mean);
    }
}
