//! **E13 — parent-selection ablation.**
//!
//! Definition 1 leaves the choice among eligible parents to the
//! application ("based on the criteria an application needs, such as on
//! energy level"). This table compares the two built-in rules — lowest id
//! (arbitrary/deterministic) vs highest degree (prefer hubs) — on the
//! structural quantities that drive the broadcast bounds.

use crate::builder::NetworkBuilder;
use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_cluster::ParentRule;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "E13 — parent-rule ablation (lowest-id vs highest-degree)",
        "n",
        cfg.xs(),
    );
    let mut bt_low = Series::new("|BT| lowest-id");
    let mut bt_high = Series::new("|BT| highest-degree");
    let mut h_low = Series::new("height lowest-id");
    let mut h_high = Series::new("height highest-degree");
    let mut r_low = Series::new("CFF rounds lowest-id");
    let mut r_high = Series::new("CFF rounds highest-degree");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d, mut e, mut f) =
            (vec![], vec![], vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let seed = cfg.seed(n, rep);
            for (rule, bt, h, r) in [
                (ParentRule::LowestId, &mut a, &mut c, &mut e),
                (ParentRule::HighestDegree, &mut b, &mut d, &mut f),
            ] {
                let net = NetworkBuilder::paper_field(cfg.field_side, n, seed)
                    .parent_rule(rule)
                    .build()
                    .expect("build");
                let stats = net.stats();
                let out = net.broadcast(Protocol::ImprovedCff);
                assert!(out.completed(), "{rule:?} n={n}");
                bt.push(stats.backbone_size as f64);
                h.push(stats.cnet_height as f64);
                r.push(out.rounds as f64);
            }
        }
        bt_low.push(Summary::of(a));
        bt_high.push(Summary::of(b));
        h_low.push(Summary::of(c));
        h_high.push(Summary::of(d));
        r_low.push(Summary::of(e));
        r_high.push(Summary::of(f));
    }
    table.add(bt_low);
    table.add(bt_high);
    table.add(h_low);
    table.add(h_high);
    table.add(r_low);
    table.add(r_high);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_rules_produce_working_structures() {
        // The run() itself asserts completion; here just exercise it and
        // sanity-check the series shape.
        let t = run(&SweepConfig::quick());
        assert_eq!(t.series.len(), 6);
        for s in &t.series {
            assert!(s.points.iter().all(|p| p.mean > 0.0));
        }
    }
}
