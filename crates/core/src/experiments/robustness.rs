//! **E6 — robustness under node failures** (Section 3.3 "Robustness").
//!
//! The paper's qualitative claim, made quantitative: kill `f` random
//! backbone nodes at round 1 and measure what fraction of the network
//! each protocol still reaches. DFO freezes the moment the token hits a
//! dead node; CFF keeps flooding through every surviving path.

use crate::experiments::common::SweepConfig;
use crate::network::Protocol;
use dsnet_geom::rng::{derive_seed, rng_from_seed};
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::runner::RunConfig;
use rand::seq::SliceRandom as _;

/// Backbone failure counts swept.
pub const FAILURES: [usize; 5] = [0, 1, 2, 4, 8];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let mut table = SweepTable::new(
        format!("E6 — delivery ratio under f backbone failures (n = {n})"),
        "f",
        FAILURES.iter().map(|&f| f as f64).collect(),
    );
    let mut cff = Series::new("CFF delivery ratio");
    let mut dfo = Series::new("DFO delivery ratio [19]");

    for &f in &FAILURES {
        let (mut a, mut b) = (vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            // Choose victims among non-root backbone nodes, deterministically
            // per (f, rep).
            let mut victims: Vec<_> = net
                .net()
                .backbone_nodes()
                .into_iter()
                .filter(|&u| u != net.sink())
                .collect();
            let mut rng = rng_from_seed(derive_seed(cfg.base_seed, 0xFA11 + rep * 131 + f as u64));
            victims.shuffle(&mut rng);
            victims.truncate(f);

            let mut rcfg = RunConfig::default();
            for &v in &victims {
                rcfg.failures.kill_node(v, 1);
            }
            let cff_out = net.broadcast_from(Protocol::ImprovedCff, net.sink(), &rcfg);
            let dfo_out = net.broadcast_from(Protocol::Dfo, net.sink(), &rcfg);
            a.push(cff_out.delivery_ratio());
            b.push(dfo_out.delivery_ratio());
        }
        cff.push(Summary::of(a));
        dfo.push(Summary::of(b));
    }
    table.add(cff);
    table.add(dfo);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_means_full_delivery() {
        let t = run(&SweepConfig::quick());
        assert!((t.series[0].points[0].mean - 1.0).abs() < 1e-9);
        assert!((t.series[1].points[0].mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cff_dominates_dfo_under_failures() {
        let t = run(&SweepConfig::quick());
        for i in 1..t.xs.len() {
            assert!(
                t.series[0].points[i].mean >= t.series[1].points[i].mean,
                "f={}: CFF {} < DFO {}",
                t.xs[i],
                t.series[0].points[i].mean,
                t.series[1].points[i].mean
            );
        }
    }
}
