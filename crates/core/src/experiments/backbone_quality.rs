//! **E16 — backbone quality vs the CDS literature.**
//!
//! The paper positions its architecture against dominating-set-based
//! backbone constructions (\[6\], \[20\], \[22\]): BT(G) is built *incrementally
//! in O(1)–O(d) rounds per arrival*, whereas CDS algorithms recompute from
//! global views. The price should be backbone size. This table quantifies
//! it: BT(G) against the greedy MIS-plus-connectors CDS on the same
//! graphs, plus the Property-1(3) bracket (#clusters vs 5·|greedy DS|).

use crate::experiments::common::SweepConfig;
use dsnet_graph::domset;
use dsnet_metrics::{Series, Summary, SweepTable};

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new("E16 — BT(G) vs greedy CDS backbone size", "n", cfg.xs());
    let mut bt = Series::new("|BT(G)| (incremental)");
    let mut cds = Series::new("|greedy CDS| (global)");
    let mut heads = Series::new("#clusters");
    let mut five_ds = Series::new("5·|greedy DS| (Property 1(3) cap)");

    for &n in &cfg.ns {
        let (mut a, mut b, mut c, mut d) = (vec![], vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let g = net.net().graph();
            let stats = net.stats();
            let cds_set = domset::greedy_connected_dominating_set(g);
            assert!(domset::is_dominating(g, &cds_set));
            assert!(domset::is_connected_in(g, &cds_set));
            let ds = domset::greedy_dominating_set(g);
            a.push(stats.backbone_size as f64);
            b.push(cds_set.len() as f64);
            c.push(stats.heads as f64);
            d.push(5.0 * ds.len() as f64);
        }
        bt.push(Summary::of(a));
        cds.push(Summary::of(b));
        heads.push(Summary::of(c));
        five_ds.push(Summary::of(d));
    }
    table.add(bt);
    table.add(cds);
    table.add(heads);
    table.add(five_ds);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_1_3_cap_holds() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            assert!(
                t.series[2].points[i].mean <= t.series[3].points[i].mean,
                "n={}: clusters exceed the 5·DS cap",
                t.xs[i]
            );
        }
    }

    #[test]
    fn incremental_backbone_is_within_a_small_factor_of_cds() {
        let t = run(&SweepConfig::quick());
        for i in 0..t.xs.len() {
            let bt = t.series[0].points[i].mean;
            let cds = t.series[1].points[i].mean;
            assert!(bt <= 4.0 * cds, "n={}: |BT|={bt} vs CDS={cds}", t.xs[i]);
        }
    }
}
