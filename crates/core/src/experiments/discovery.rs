//! **E11 — neighbour-discovery cost** (the `O(d_new)` primitive of
//! Theorem 2, inherited from \[19\]).
//!
//! For joining nodes of increasing degree, run the windowed-ALOHA
//! discovery session on the radio simulator and report the rounds until
//! the last neighbour was found (the paper's quantity) and the total
//! session length including the termination tail.

use crate::experiments::common::SweepConfig;
use dsnet_geom::rng::derive_seed;
use dsnet_graph::{Graph, NodeId};
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::join::simulate_join;

/// Joining-node degrees swept.
pub const DEGREES: [usize; 5] = [2, 4, 8, 16, 32];

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let mut table = SweepTable::new(
        "E11 — randomized neighbour discovery vs degree (Theorem 2's O(d_new))",
        "d_new",
        DEGREES.iter().map(|&d| d as f64).collect(),
    );
    let mut discovery = Series::new("discovery rounds");
    let mut session = Series::new("total session rounds");
    let mut success = Series::new("complete fraction");

    for &d in &DEGREES {
        let (mut a, mut b, mut c) = (vec![], vec![], vec![]);
        // A star of degree d: the joining node hears exactly d nodes.
        let mut g = Graph::with_nodes(d + 1);
        for i in 1..=d {
            g.add_edge(NodeId(0), NodeId(i as u32));
        }
        for rep in 0..cfg.reps * 4 {
            let out = simulate_join(
                &g,
                NodeId(0),
                d,
                derive_seed(cfg.base_seed, d as u64 * 1000 + rep),
            );
            a.push(out.discovery_rounds as f64);
            b.push(out.rounds as f64);
            c.push(if out.complete { 1.0 } else { 0.0 });
        }
        discovery.push(Summary::of(a));
        session.push(Summary::of(b));
        success.push(Summary::of(c));
    }
    table.add(discovery);
    table.add(session);
    table.add(success);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_grows_roughly_linearly() {
        let t = run(&SweepConfig::quick());
        // Sessions complete with high probability — not certainty: the
        // newcomer stops after two empty windows, and without collision
        // detection two straggling neighbours can (rarely) collide
        // through both. The "complete fraction" series exists to measure
        // exactly this, so the test asserts the whp bound, not 1.0.
        for p in &t.series[2].points {
            assert!(p.mean >= 0.85, "completion fraction {} too low", p.mean);
        }
        // d=32 discovery is within a generous linear factor of d=4's.
        let d4 = t.series[0].points[1].mean;
        let d32 = t.series[0].points[4].mean;
        assert!(d32 <= 24.0 * d4 + 50.0, "d4={d4}, d32={d32}");
    }
}
