//! **E14 — multi-sink failover** (the Section-2 robustness remark).
//!
//! Build 1–3 cluster structures over the same deployment (one per sink)
//! and broadcast under backbone failures with failover: coverage lost by
//! the primary structure is recovered through the others at the cost of
//! extra rounds.

use crate::experiments::common::SweepConfig;
use crate::multinet::MultiNet;
use crate::network::SensorNetwork;
use dsnet_geom::rng::{derive_seed, rng_from_seed};
use dsnet_graph::NodeId;
use dsnet_metrics::{Series, Summary, SweepTable};
use dsnet_protocols::runner::RunConfig;
use rand::seq::SliceRandom as _;

/// Numbers of sinks swept.
pub const SINK_COUNTS: [usize; 3] = [1, 2, 3];

fn pick_sinks(net: &SensorNetwork, k: usize) -> Vec<NodeId> {
    // The original sink plus geometrically far nodes, for well-separated
    // structures.
    let mut sinks = vec![net.sink()];
    let origin = net.position(net.sink());
    let mut nodes: Vec<NodeId> = net
        .net()
        .tree()
        .nodes()
        .filter(|&u| u != net.sink())
        .collect();
    nodes.sort_by(|&a, &b| {
        net.position(b)
            .dist_sq(origin)
            .total_cmp(&net.position(a).dist_sq(origin))
    });
    sinks.extend(nodes.into_iter().take(k - 1));
    sinks
}

/// Run this experiment over `cfg` and return its table.
pub fn run(cfg: &SweepConfig) -> SweepTable {
    let n = *cfg.ns.last().expect("sweep has sizes");
    let failures = 6usize;
    let mut table = SweepTable::new(
        format!("E14 — multi-sink failover under {failures} backbone failures (n = {n})"),
        "sinks",
        SINK_COUNTS.iter().map(|&k| k as f64).collect(),
    );
    let mut delivery = Series::new("union delivery ratio");
    let mut rounds = Series::new("total rounds (all attempts)");
    let mut attempts = Series::new("attempts used");

    for &k in &SINK_COUNTS {
        let (mut a, mut b, mut c) = (vec![], vec![], vec![]);
        for rep in 0..cfg.reps {
            let net = cfg.network(n, rep);
            let multi = MultiNet::from_network(&net, &pick_sinks(&net, k));
            // Kill random backbone nodes of the primary structure.
            let primary = &multi.structures()[0];
            let mut victims: Vec<NodeId> = primary
                .backbone_nodes()
                .into_iter()
                .filter(|&u| u != primary.root())
                .collect();
            // The victim draw must not depend on `k`: the sweep compares
            // sink counts against each other, so every k must face the
            // same failures for the union-coverage comparison to be fair
            // (and monotone).
            let mut rng = rng_from_seed(derive_seed(cfg.base_seed, 0x51C + rep * 7));
            victims.shuffle(&mut rng);
            victims.truncate(failures);
            let mut rcfg = RunConfig::default();
            for &v in &victims {
                rcfg.failures.kill_node(v, 1);
            }
            let out = multi.broadcast_failover(&rcfg);
            a.push(out.delivery_ratio());
            b.push(out.total_rounds as f64);
            c.push(out.attempts.len() as f64);
        }
        delivery.push(Summary::of(a));
        rounds.push(Summary::of(b));
        attempts.push(Summary::of(c));
    }
    table.add(delivery);
    table.add(rounds);
    table.add(attempts);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_sinks_cover_at_least_as_much() {
        let t = run(&SweepConfig::quick());
        let d = &t.series[0];
        for i in 1..t.xs.len() {
            assert!(
                d.points[i].mean >= d.points[i - 1].mean - 1e-9,
                "{} sinks deliver less than {}",
                t.xs[i],
                t.xs[i - 1]
            );
        }
    }
}
