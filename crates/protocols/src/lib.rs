#![warn(missing_docs)]

//! Broadcast and multicast protocols of Section 3, executed as per-node
//! state machines on the [`dsnet_radio`] simulator.
//!
//! * [`dfo`] — the **depth-first-order** baseline of reference \[19\]
//!   (Section 3.2): a token carries the message along an Eulerian tour of
//!   the backbone; one transmitter per round; every node stays awake until
//!   the tour ends. Fast to describe, slow and fragile in practice — the
//!   paper's comparison target.
//! * [`cff`] — **Algorithm 1**: collision-free flooding over the whole
//!   CNet(G), one TDM window of `Δ'` rounds per tree depth.
//! * [`improved`] — **Algorithm 2**: phase 1 floods the backbone using
//!   b-time-slots (`δ`-round windows), phase 2 delivers to the
//!   pure-member leaves in a single `Δ`-round window using l-time-slots;
//!   supports `k` radio channels (Section 3.3 "Multi-Channels") and
//!   relay-list pruning for multicast (Section 3.4).
//! * [`reliable`] — bounded-retry **reliable CFF**: Algorithm 1 extended
//!   with per-hop NACK/retransmit epochs and deterministic backoff, so
//!   delivery degrades gracefully on lossy channels instead of silencing
//!   whole subtrees on a single drop.
//! * [`multicast`] — the multicast front-end over MCNet(G).
//! * [`knowledge`] — extraction of the per-node knowledge (I)+(II) the
//!   paper assumes (depth, slots, height, δ, Δ, backbone adjacency) from a
//!   built [`ClusterNet`](dsnet_cluster::ClusterNet).
//! * [`arrival`] — the end-to-end distributed `node-move-in` session
//!   (radio discovery + local Definition-1 parent choice + structural
//!   attachment), the composed object Theorem 2 prices.
//! * [`flooding`] — the unstructured randomized-backoff flooding
//!   baseline (the broadcast-storm strawman of the introduction, \[16\]).
//! * [`join`] — the randomized neighbour-discovery primitive behind
//!   `node-move-in` (the `O(d_new)` expected-round procedure Theorem 2
//!   inherits from \[19\]), as a windowed-ALOHA session on the simulator.
//! * [`runner`] — one-call experiment drivers returning a uniform
//!   `BroadcastOutcome` (rounds, delivery,
//!   awake/energy, collisions), with optional failure injection.
//! * [`analytic`] — closed-form completion-round predictions used to
//!   cross-check the simulated executions against Lemma 1 / Theorem 1.

pub mod analytic;
pub mod arrival;
pub mod cff;
pub mod dfo;
pub mod flooding;
pub mod improved;
pub mod join;
pub mod knowledge;
pub mod multicast;
pub mod reliable;
pub mod runner;

pub use knowledge::{KnowledgeCache, NetKnowledge, NodeKnowledge};
pub use runner::{BroadcastOutcome, Coverage, RunConfig};
