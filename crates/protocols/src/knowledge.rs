//! Extraction of the paper's per-node knowledge (I) + (II).
//!
//! Section 5 lists what each node of CNet(G) must know for the protocols
//! to run: its neighbours, parent and status (knowledge I); its depth,
//! b-/l-time-slots, and — at the root — the height and largest slots
//! (knowledge II). The cluster crate maintains all of this; here it is
//! snapshotted into plain per-node structs that the protocol state
//! machines carry, mirroring how a real deployment would cache the values
//! locally.
//!
//! The snapshot also precomputes, for every receiver, *which* transmitter
//! slot is guaranteed collision-free (`expected_*_slot`). The base
//! single-channel protocols do not need it (they listen through the whole
//! window), but the multi-channel variants use it to tune the radio to the
//! right (round, channel) pair — legitimate under knowledge (I), which
//! includes the neighbours' knowledge.
//!
//! ## Layout
//!
//! The snapshot is flat: [`NodeKnowledge`] is `Copy` (no per-node heap
//! allocation), and the DFO tour lists live in one shared CSR pool
//! ([`NetKnowledge::bt_pool`]) addressed by per-node `(bt_off, bt_len)`
//! ranges. The canonical pool layout is the concatenation of every
//! attached node's tour list in increasing-id order, with `bt_off` equal
//! to the pool length at that node's turn even when the list is empty —
//! both the full build and the patch path emit exactly this layout, so
//! derived `PartialEq` remains byte-meaningful.
//!
//! ## Incremental maintenance
//!
//! [`KnowledgeCache::get`] no longer rebuilds from scratch on every
//! structure change: when the cached version is stale it asks
//! [`ClusterNet::dirty_since`] for the journal of dirty nodes `T`,
//! clones the per-node table (one flat memcpy), and recomputes
//! knowledge only over the dirty closure `R = L ∪ N_G(L)`,
//! `L = T ∪ parent(T)` — the same closure rules the dirty invariant
//! audit uses (DESIGN §12/§17). Flood slots re-run Algorithm 1's
//! assignment over a worklist seeded from `R` in the exact `(depth, id)`
//! order of the full pass, cascading to same-depth co-transmitters when
//! a slot actually changes, so the patched assignment is byte-equal to
//! [`assign_flood_slots`] from scratch. Global scalars are maintained in
//! the same fused flat sweep that rebuilds the CSR pool. Past a
//! staleness/size threshold (or when the journal cannot vouch for the
//! cached version) the cache falls back to a full rebuild.

use dsnet_cluster::slots::validate::assign_flood_slots;
use dsnet_cluster::slots::view::NetView;
use dsnet_cluster::{ClusterNet, NodeStatus};
use dsnet_graph::NodeId;
use std::sync::{Arc, Mutex};

/// Everything one node knows before a broadcast session starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKnowledge {
    /// The node's own id.
    pub id: NodeId,
    /// Depth in CNet(G) (root = 0).
    pub depth: u32,
    /// Head / gateway / pure-member role.
    pub status: NodeStatus,
    /// CNet parent (`None` for the root).
    pub parent: Option<NodeId>,
    /// Phase-1 transmission slot (BT-internal nodes only).
    pub b_slot: Option<u32>,
    /// Phase-2 transmission slot (CNet-internal nodes only).
    pub l_slot: Option<u32>,
    /// Algorithm-1 transmission slot (CNet-internal nodes only).
    pub flood_slot: Option<u32>,
    /// Transmits in phase 1 (backbone node with a backbone child).
    pub bt_internal: bool,
    /// Transmits in phase 2 (has children).
    pub cnet_internal: bool,
    /// The collision-free slot this backbone receiver should expect in
    /// phase 1 (None for the root and for non-backbone nodes).
    pub expected_b_slot: Option<u32>,
    /// The collision-free slot this member leaf should expect in phase 2.
    pub expected_l_slot: Option<u32>,
    /// The collision-free slot this node should expect in Algorithm 1.
    pub expected_flood_slot: Option<u32>,
    /// Start of this node's DFO tour list in [`NetKnowledge::bt_pool`]
    /// (backbone children followed by the backbone parent, in tour-visit
    /// order; empty for pure members). Canonically the pool length at
    /// this node's increasing-id emission turn.
    pub bt_off: u32,
    /// Length of the tour list.
    pub bt_len: u32,
}

/// Network-wide constants of a session (what the paper stores at the root
/// and ships inside the first packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetKnowledge {
    /// Per-node knowledge, indexed by id (`None` off-structure).
    pub per_node: Vec<Option<NodeKnowledge>>,
    /// CSR pool backing every node's DFO tour list (`bt_off`/`bt_len`).
    pub bt_pool: Vec<NodeId>,
    /// The sink.
    pub root: NodeId,
    /// Height of CNet(G).
    pub height: u32,
    /// Height of BT(G) (= deepest backbone node).
    pub bt_height: u32,
    /// δ — largest b-slot.
    pub delta_b: u32,
    /// Δ — largest l-slot.
    pub delta_l: u32,
    /// Δ' — largest Algorithm-1 flood slot.
    pub delta_flood: u32,
    /// Number of attached nodes.
    pub nodes: usize,
    /// Number of backbone nodes.
    pub backbone_size: usize,
}

impl NetKnowledge {
    /// Knowledge of one attached node (panics otherwise).
    pub fn of(&self, u: NodeId) -> &NodeKnowledge {
        self.per_node[u.index()]
            .as_ref()
            .expect("node has no knowledge (not attached)")
    }

    /// The node's DFO tour list: backbone children followed by the
    /// backbone parent. Empty for pure members.
    pub fn bt_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.bt_neighbors_of(self.of(u))
    }

    /// [`NetKnowledge::bt_neighbors`] for an already-fetched entry.
    pub fn bt_neighbors_of(&self, nk: &NodeKnowledge) -> &[NodeId] {
        &self.bt_pool[nk.bt_off as usize..(nk.bt_off + nk.bt_len) as usize]
    }
}

/// Find the smallest slot value occurring exactly once in the sorted-in-
/// place scratch (the receiver's guaranteed-clean slot), if any.
fn unique_slot_sorted(scratch: &mut [u32]) -> Option<u32> {
    scratch.sort_unstable();
    let mut i = 0;
    while i < scratch.len() {
        let mut j = i + 1;
        while j < scratch.len() && scratch[j] == scratch[i] {
            j += 1;
        }
        if j - i == 1 {
            return Some(scratch[i]);
        }
        i = j;
    }
    None
}

/// Iterator convenience over [`unique_slot_sorted`] — used by the tests
/// that pin the scratch-based replacement to the old BTreeMap semantics.
#[cfg(test)]
fn unique_slot(slots: impl IntoIterator<Item = Option<u32>>) -> Option<u32> {
    let mut scratch: Vec<u32> = slots.into_iter().flatten().collect();
    unique_slot_sorted(&mut scratch)
}

/// Number of slot values occurring exactly once in the *sorted* scratch
/// (mirrors the cluster crate's internal helper; Procedure 1's "two
/// already-unique transmitters" receiver-skip rule).
fn unique_run_count(sorted: &[u32]) -> usize {
    let mut unique = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i == 1 {
            unique += 1;
        }
        i = j;
    }
    unique
}

/// Minimum positive integer absent from `used` (sorted in place).
fn mex(used: &mut [u32]) -> u32 {
    used.sort_unstable();
    let mut candidate = 1u32;
    for &u in used.iter() {
        match u.cmp(&candidate) {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Equal => candidate += 1,
            std::cmp::Ordering::Greater => break,
        }
    }
    candidate
}

/// Allocation-free equivalent of
/// `dsnet_cluster::slots::validate::flood_transmitters`: the internal
/// depth-(i−1) G-neighbours of `v` — the transmitters `v` hears in
/// Algorithm 1's depth window. (Naturally empty at depth 0: no neighbour
/// sits at depth −1.)
fn flood_tx_iter<'a>(view: NetView<'a>, v: NodeId) -> impl Iterator<Item = NodeId> + 'a {
    let depth = view.tree.depth(v);
    view.graph.neighbors(v).iter().copied().filter(move |&y| {
        view.attached(y) && view.cnet_internal(y) && view.tree.depth(y) + 1 == depth
    })
}

/// Snapshot the knowledge of every attached node for a *session* with its
/// own slot table and transmitter set — used by reliable multicast, where
/// the initiator re-assigns slots over the participating transmitters
/// (see `dsnet_cluster::slots::session`). Expected receiver slots are
/// computed against the participating transmitters only.
pub fn build_session_knowledge(
    net: &ClusterNet,
    session_slots: &dsnet_cluster::SlotTable,
    tx: &dyn Fn(NodeId) -> bool,
) -> NetKnowledge {
    build_session_knowledge_from(net, &build_knowledge(net), session_slots, tx)
}

/// Like [`build_session_knowledge`], but starting from an already-built
/// base snapshot of the same `net` (e.g. one served by a
/// [`KnowledgeCache`]) instead of rebuilding it — the session rewrite
/// only touches slots and expected slots, so the expensive base pass can
/// be amortised across sessions. The base is cloned internally (two flat
/// memcpys thanks to the CSR layout); callers holding an `Arc` no longer
/// deep-clone per session.
pub fn build_session_knowledge_from(
    net: &ClusterNet,
    base: &NetKnowledge,
    session_slots: &dsnet_cluster::SlotTable,
    tx: &dyn Fn(NodeId) -> bool,
) -> NetKnowledge {
    let mut k = base.clone();
    let view = net.view();
    let tree = net.tree();
    let mode = net.mode();
    let mut scratch: Vec<u32> = Vec::new();
    for u in tree.nodes() {
        let nk = k.per_node[u.index()].as_mut().expect("attached node");
        nk.b_slot = session_slots.b(u);
        nk.l_slot = session_slots.l(u);
        nk.expected_b_slot = if nk.status.in_backbone() && nk.depth >= 1 {
            scratch.clear();
            scratch.extend(
                view.p_b_iter(u)
                    .filter(|&y| tx(y))
                    .filter_map(|y| session_slots.b(y)),
            );
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        nk.expected_l_slot = if view.is_member_leaf(u) {
            scratch.clear();
            scratch.extend(
                view.p_l_iter(u, mode)
                    .filter(|&y| tx(y))
                    .filter_map(|y| session_slots.l(y)),
            );
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
    }
    k.delta_b = session_slots.max_b();
    k.delta_l = session_slots.max_l();
    k
}

/// Snapshot the knowledge of every attached node of `net`.
pub fn build_knowledge(net: &ClusterNet) -> NetKnowledge {
    let view = net.view();
    let tree = net.tree();
    let slots = net.slots();
    let mode = net.mode();
    let (flood, delta_flood) = assign_flood_slots(&view);

    let mut per_node: Vec<Option<NodeKnowledge>> = vec![None; net.graph().capacity()];
    let mut bt_pool: Vec<NodeId> = Vec::new();
    let mut bt_height = 0u32;
    let mut backbone_size = 0usize;
    let mut scratch: Vec<u32> = Vec::new();

    for u in tree.nodes() {
        let status = net.status(u);
        let depth = tree.depth(u);
        if status.in_backbone() {
            bt_height = bt_height.max(depth);
            backbone_size += 1;
        }

        let expected_b_slot = if status.in_backbone() && depth >= 1 {
            scratch.clear();
            scratch.extend(view.p_b_iter(u).filter_map(|y| slots.b(y)));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        let expected_l_slot = if view.is_member_leaf(u) {
            scratch.clear();
            scratch.extend(view.p_l_iter(u, mode).filter_map(|y| slots.l(y)));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        let expected_flood_slot = if depth >= 1 {
            scratch.clear();
            scratch.extend(flood_tx_iter(view, u).filter_map(|y| flood[y.index()]));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };

        // Canonical CSR emission: increasing-id order, bt_off = pool
        // length at this node's turn (even when the list stays empty).
        let bt_off = bt_pool.len() as u32;
        if status.in_backbone() {
            bt_pool.extend(tree.children(u).filter(|&c| net.status(c).in_backbone()));
            if let Some(p) = tree.parent(u) {
                bt_pool.push(p);
            }
        }
        let bt_len = bt_pool.len() as u32 - bt_off;

        per_node[u.index()] = Some(NodeKnowledge {
            id: u,
            depth,
            status,
            parent: tree.parent(u),
            b_slot: slots.b(u),
            l_slot: slots.l(u),
            flood_slot: flood[u.index()],
            bt_internal: view.bt_internal(u),
            cnet_internal: view.cnet_internal(u),
            expected_b_slot,
            expected_l_slot,
            expected_flood_slot,
            bt_off,
            bt_len,
        });
    }

    NetKnowledge {
        per_node,
        bt_pool,
        root: tree.root(),
        height: tree.height(),
        bt_height,
        delta_b: net.delta_b(),
        delta_l: net.delta_l(),
        delta_flood,
        nodes: tree.len(),
        backbone_size,
    }
}

/// Patch `base` (a snapshot of the same net at `base_version`) up to the
/// net's current structure, recomputing knowledge only over the dirty
/// closure. Returns the patched snapshot and the closure size, or `None`
/// when the journal cannot vouch for `base_version` or the dirty set
/// exceeds `limit` — the caller then falls back to a full rebuild.
///
/// Correctness contract (pinned by `knowledge_patch_props` and
/// `tests/cache_equivalence.rs`): the result is byte-equal to
/// [`build_knowledge`] run from scratch at the current version.
fn patch_knowledge(
    net: &ClusterNet,
    base: &NetKnowledge,
    base_version: u64,
    limit: usize,
) -> Option<(NetKnowledge, usize)> {
    if net.is_empty() {
        return None;
    }
    // T: journalled dirty nodes (tuple writes + surviving edge endpoints).
    let mut t: Vec<NodeId> = net.dirty_since(base_version)?.collect();
    t.sort_unstable();
    t.dedup();
    if t.len() > limit {
        return None;
    }

    let view = net.view();
    let tree = net.tree();
    let slots = net.slots();
    let mode = net.mode();
    let cap = net.graph().capacity();

    // One flat memcpy: the per-node table. The CSR pool is *not* cloned —
    // the fused sweep below rebuilds it into a fresh vector, reading the
    // base pool for untouched segments.
    let mut k = NetKnowledge {
        per_node: base.per_node.clone(),
        bt_pool: Vec::new(),
        root: base.root,
        height: base.height,
        bt_height: base.bt_height,
        delta_b: base.delta_b,
        delta_l: base.delta_l,
        delta_flood: base.delta_flood,
        nodes: base.nodes,
        backbone_size: base.backbone_size,
    };
    if k.per_node.len() < cap {
        k.per_node.resize(cap, None);
    }

    // L = T ∪ parent(T), R = L ∪ N_G(L): every node whose knowledge can
    // have changed (the dirty-closure rules of DESIGN §12, applied to
    // knowledge in §17). Dead/detached members of T contribute no
    // parent/neighbours — their surviving endpoints were journalled
    // explicitly at removal time.
    let mut l = t.clone();
    for &u in &t {
        if tree.contains(u) {
            if let Some(p) = tree.parent(u) {
                l.push(p);
            }
        }
    }
    l.sort_unstable();
    l.dedup();
    let mut r = l.clone();
    for &u in &l {
        if net.graph().is_live(u) {
            r.extend_from_slice(net.graph().neighbors(u));
        }
    }
    r.sort_unstable();
    r.dedup();

    // Phase A: recompute every non-flood field over R; tombstone the
    // departed. Flood fields keep their stale values until phases B/C.
    let mut scratch: Vec<u32> = Vec::new();
    for &u in &r {
        if !tree.contains(u) {
            k.per_node[u.index()] = None;
            continue;
        }
        let status = net.status(u);
        let depth = tree.depth(u);
        let expected_b_slot = if status.in_backbone() && depth >= 1 {
            scratch.clear();
            scratch.extend(view.p_b_iter(u).filter_map(|y| slots.b(y)));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        let expected_l_slot = if view.is_member_leaf(u) {
            scratch.clear();
            scratch.extend(view.p_l_iter(u, mode).filter_map(|y| slots.l(y)));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        let old = &k.per_node[u.index()];
        k.per_node[u.index()] = Some(NodeKnowledge {
            id: u,
            depth,
            status,
            parent: tree.parent(u),
            b_slot: slots.b(u),
            l_slot: slots.l(u),
            flood_slot: old.as_ref().and_then(|nk| nk.flood_slot),
            bt_internal: view.bt_internal(u),
            cnet_internal: view.cnet_internal(u),
            expected_b_slot,
            expected_l_slot,
            expected_flood_slot: old.as_ref().and_then(|nk| nk.expected_flood_slot),
            bt_off: 0, // set by the pool sweep below
            bt_len: 0,
        });
    }

    // Phase B: re-run Algorithm 1's assignment over a worklist, in the
    // exact (depth, id) order of the full pass. Seeds: every attached
    // node of R plus the flood transmitters of every attached node of R
    // (structure around a dirty node changed ⇒ its transmitters' inputs
    // may have). When a recomputed slot differs from the stale value the
    // change cascades to same-depth co-transmitters with larger id — the
    // only nodes whose full-pass computation could observe it — and the
    // shared receivers are marked for expected-slot recomputation.
    //
    // At y's turn the full pass sees assigned slots exactly on the
    // (depth, id)-earlier transmitters; processing the worklist in that
    // same order keeps every input final by the time it is read.
    let mut queue: std::collections::BTreeSet<(u32, NodeId)> = std::collections::BTreeSet::new();
    for &u in &r {
        if tree.contains(u) {
            queue.insert((tree.depth(u), u));
            for y in flood_tx_iter(view, u) {
                queue.insert((tree.depth(y), y));
            }
        }
    }
    let mut flood_rx_dirty: Vec<NodeId> = Vec::new();
    let mut forbidden: Vec<u32> = Vec::new();
    let mut others: Vec<u32> = Vec::new();
    while let Some(&(depth, y)) = queue.iter().next() {
        queue.remove(&(depth, y));
        if !tree.contains(y) {
            continue; // tombstoned: its disappearance was seeded via R
        }
        let new_slot = if view.cnet_internal(y) {
            forbidden.clear();
            for v in view
                .attached_neighbors(y)
                .filter(|&v| view.tree.depth(v) == depth + 1)
            {
                others.clear();
                others.extend(
                    flood_tx_iter(view, v)
                        .filter(|&t| t != y && t < y)
                        .filter_map(|t| k.per_node[t.index()].as_ref()?.flood_slot),
                );
                others.sort_unstable();
                if unique_run_count(&others) >= 2 {
                    continue;
                }
                forbidden.extend_from_slice(&others);
            }
            Some(mex(&mut forbidden))
        } else {
            None
        };
        let entry = k.per_node[y.index()].as_mut().expect("attached node");
        if entry.flood_slot != new_slot {
            entry.flood_slot = new_slot;
            for v in view
                .attached_neighbors(y)
                .filter(|&v| view.tree.depth(v) == depth + 1)
            {
                flood_rx_dirty.push(v);
                for t in flood_tx_iter(view, v) {
                    if t > y {
                        queue.insert((depth, t));
                    }
                }
            }
        }
    }

    // Phase C: expected flood slots over R plus the receivers marked in
    // phase B (their transmitter slot values are now final).
    flood_rx_dirty.extend(r.iter().copied());
    flood_rx_dirty.sort_unstable();
    flood_rx_dirty.dedup();
    for &u in &flood_rx_dirty {
        if !tree.contains(u) {
            continue;
        }
        let expected = if tree.depth(u) >= 1 {
            scratch.clear();
            scratch.extend(flood_tx_iter(view, u).filter_map(|y| {
                k.per_node[y.index()]
                    .as_ref()
                    .expect("attached transmitter")
                    .flood_slot
            }));
            unique_slot_sorted(&mut scratch)
        } else {
            None
        };
        k.per_node[u.index()]
            .as_mut()
            .expect("attached node")
            .expected_flood_slot = expected;
    }

    // Fused flat sweep: rebuild the CSR pool in canonical increasing-id
    // order and recompute the global max/count scalars the closure may
    // have touched. Nodes in R re-derive their tour list from the tree;
    // maximal runs of untouched nodes keep their old segments, copied in
    // one memcpy per run with offsets shifted by the accumulated drift.
    // Run contiguity holds because the base pool is written in the same
    // increasing-id order and any node whose attachment changed since
    // `base` is necessarily in R (the journal recorded it) — so a run is
    // only ever interrupted at an R index, where it is flushed.
    let mut bt_pool: Vec<NodeId> = Vec::with_capacity(base.bt_pool.len() + 8);
    let mut bt_height = 0u32;
    let mut backbone_size = 0usize;
    let mut delta_flood = 0u32;
    let mut r_cursor = r.iter().peekable();
    // Pending run: `[run_old, run_old + run_len)` in the base pool,
    // destined for the current end of `bt_pool` once flushed.
    let (mut run_old, mut run_len) = (0u32, 0u32);
    for idx in 0..k.per_node.len() {
        let u = NodeId(idx as u32);
        while r_cursor.next_if(|&&d| d < u).is_some() {}
        let in_r = r_cursor.peek().is_some_and(|&&d| d == u);
        if in_r && run_len > 0 {
            let start = run_old as usize;
            bt_pool.extend_from_slice(&base.bt_pool[start..start + run_len as usize]);
            run_len = 0;
        }
        let Some(entry) = k.per_node[idx].as_mut() else {
            continue;
        };
        if entry.status.in_backbone() {
            bt_height = bt_height.max(entry.depth);
            backbone_size += 1;
        }
        if let Some(f) = entry.flood_slot {
            delta_flood = delta_flood.max(f);
        }
        if in_r {
            let bt_off = bt_pool.len() as u32;
            if entry.status.in_backbone() {
                bt_pool.extend(tree.children(u).filter(|&c| net.status(c).in_backbone()));
                if let Some(p) = tree.parent(u) {
                    bt_pool.push(p);
                }
            }
            entry.bt_off = bt_off;
            entry.bt_len = bt_pool.len() as u32 - bt_off;
        } else {
            if run_len == 0 {
                run_old = entry.bt_off;
            }
            debug_assert_eq!(
                entry.bt_off,
                run_old + run_len,
                "untouched pool segments must stay id-ordered and contiguous"
            );
            entry.bt_off = bt_pool.len() as u32 + run_len;
            run_len += entry.bt_len;
        }
    }
    if run_len > 0 {
        let start = run_old as usize;
        bt_pool.extend_from_slice(&base.bt_pool[start..start + run_len as usize]);
    }
    k.bt_pool = bt_pool;
    k.root = tree.root();
    k.height = tree.height();
    k.bt_height = bt_height;
    k.delta_b = net.delta_b();
    k.delta_l = net.delta_l();
    k.delta_flood = delta_flood;
    k.nodes = tree.len();
    k.backbone_size = backbone_size;

    Some((k, r.len()))
}

/// A version-keyed cache for [`NetKnowledge`] snapshots.
///
/// The cache keys snapshots on [`ClusterNet::structure_version`]:
/// repeated broadcasts over an unchanged structure reuse the `Arc`ed
/// snapshot. When the version moved, the cache first tries the
/// dirty-scoped **patch path** ([`patch_knowledge`]) against the freshest
/// retained entry, and only falls back to a from-scratch
/// [`build_knowledge`] when the mutation journal cannot vouch for the
/// cached version or the dirty set exceeds the staleness threshold
/// (`max(64, nodes/8)` by default). Correctness leans on the version
/// contract — equal versions imply identical structure — plus the
/// patched-equals-rebuilt property pinned by `knowledge_patch_props` and
/// `tests/cache_equivalence.rs`, so the cached path is observably
/// indistinguishable from rebuilding every time.
///
/// The cache keeps the **last two** `(version, knowledge)` entries in
/// MRU order. One entry is enough for static workloads, but callers that
/// alternate between two structures per epoch (a mobility probe against
/// the pre- and post-repair structure, an A/B comparison harness) would
/// thrash a single slot every access.
///
/// Counter semantics: a `get` is a *hit* when the version matches a
/// retained entry and a *miss* otherwise; `patched` counts the subset of
/// misses served by the patch path instead of a full rebuild (so
/// `hits + misses` equals the number of `get` calls regardless of how a
/// miss was served). [`KnowledgeCache::full_stats`] additionally exposes
/// the summed patch closure size and the fallback count. Setting the
/// environment variable `DSNET_KNOWLEDGE_PATCH=off` (read at cache
/// construction) disables the patch path entirely — the determinism
/// smoke diffs traced streams between both modes.
#[derive(Debug, Default)]
struct CacheState {
    /// MRU-ordered entries: index 0 is the most recently used.
    entries: Vec<(u64, Arc<NetKnowledge>)>,
    hits: u64,
    misses: u64,
    patched: u64,
    patched_scope: u64,
    fallbacks: u64,
}

/// Lifetime counters of a [`KnowledgeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Gets served from a retained entry (version match).
    pub hits: u64,
    /// Gets that had to produce a new snapshot (patched or rebuilt).
    pub misses: u64,
    /// Misses served by the dirty-scoped patch path.
    pub patched: u64,
    /// Total nodes in the patched closures (scope of all patches).
    pub patched_scope: u64,
    /// Misses where a retained entry existed but patching was refused
    /// (journal poisoned/evicted, or dirty set over the threshold).
    pub fallbacks: u64,
}

/// See the type-level docs above; this is the shared handle.
#[derive(Debug)]
pub struct KnowledgeCache {
    state: Mutex<CacheState>,
    patch_enabled: bool,
    patch_limit: Option<usize>,
}

impl Default for KnowledgeCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Dirty sets of at most `max(64, nodes/8)` nodes take the patch path.
const PATCH_MIN_LIMIT: usize = 64;

impl KnowledgeCache {
    /// An empty cache. The patch path is enabled unless the environment
    /// variable `DSNET_KNOWLEDGE_PATCH` is set to `off` or `0`.
    pub fn new() -> Self {
        let patch_enabled = !matches!(
            std::env::var("DSNET_KNOWLEDGE_PATCH").as_deref(),
            Ok("off") | Ok("0")
        );
        Self {
            state: Mutex::new(CacheState::default()),
            patch_enabled,
            patch_limit: None,
        }
    }

    /// A cache with a fixed dirty-set size threshold instead of the
    /// default `max(64, nodes/8)` — lets tests force fallback crossings
    /// deterministically.
    pub fn with_patch_limit(limit: usize) -> Self {
        Self {
            patch_limit: Some(limit),
            ..Self::new()
        }
    }

    /// The knowledge snapshot for `net`'s current structure — served from
    /// cache when the structure version matches either retained entry,
    /// patched from the freshest stale entry when the mutation journal
    /// covers the gap, rebuilt otherwise.
    pub fn get(&self, net: &ClusterNet) -> Arc<NetKnowledge> {
        let version = net.structure_version();
        let mut state = self.state.lock().expect("knowledge cache poisoned");
        if let Some(pos) = state.entries.iter().position(|(v, _)| *v == version) {
            state.hits += 1;
            let entry = state.entries.remove(pos);
            let k = Arc::clone(&entry.1);
            state.entries.insert(0, entry);
            return k;
        }
        state.misses += 1;
        let base = if self.patch_enabled {
            state
                .entries
                .iter()
                .filter(|(v, _)| *v < version)
                .max_by_key(|(v, _)| *v)
                .map(|(v, k)| (*v, Arc::clone(k)))
        } else {
            None
        };
        if let Some((base_version, base)) = base {
            let limit = self
                .patch_limit
                .unwrap_or_else(|| PATCH_MIN_LIMIT.max(net.len() / 8));
            match patch_knowledge(net, &base, base_version, limit) {
                Some((patched, scope)) => {
                    state.patched += 1;
                    state.patched_scope += scope as u64;
                    let k = Arc::new(patched);
                    state.entries.insert(0, (version, Arc::clone(&k)));
                    state.entries.truncate(2);
                    return k;
                }
                None => state.fallbacks += 1,
            }
        }
        let k = Arc::new(build_knowledge(net));
        state.entries.insert(0, (version, Arc::clone(&k)));
        state.entries.truncate(2);
        k
    }

    /// Lifetime totals of `(hits, misses, patched)` across every
    /// [`KnowledgeCache::get`] call (including gets after a
    /// [`KnowledgeCache::clear`]). `patched` is the subset of misses
    /// served by the dirty-scoped patch path.
    pub fn stats(&self) -> (u64, u64, u64) {
        let state = self.state.lock().expect("knowledge cache poisoned");
        (state.hits, state.misses, state.patched)
    }

    /// All lifetime counters, including patch scope and fallbacks.
    pub fn full_stats(&self) -> CacheStats {
        let state = self.state.lock().expect("knowledge cache poisoned");
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            patched: state.patched,
            patched_scope: state.patched_scope,
            fallbacks: state.fallbacks,
        }
    }

    /// Drop any cached snapshots (the next [`KnowledgeCache::get`]
    /// rebuilds). Never needed for correctness — the version key already
    /// invalidates — but lets callers release memory early. Statistics
    /// are retained.
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("knowledge cache poisoned")
            .entries
            .clear();
    }
}

impl Clone for KnowledgeCache {
    fn clone(&self) -> Self {
        // Snapshot under the lock — `Arc` clones, no deep copies — and
        // build the clone outside the critical section.
        let (entries, hits, misses, patched, patched_scope, fallbacks) = {
            let state = self.state.lock().expect("knowledge cache poisoned");
            (
                state.entries.clone(),
                state.hits,
                state.misses,
                state.patched,
                state.patched_scope,
                state.fallbacks,
            )
        };
        Self {
            state: Mutex::new(CacheState {
                entries,
                hits,
                misses,
                patched,
                patched_scope,
                fallbacks,
            }),
            patch_enabled: self.patch_enabled,
            patch_limit: self.patch_limit,
        }
    }
}

/// Knowledge plus the session parameters a run is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// The broadcast origin.
    pub source: NodeId,
    /// Rounds consumed by the uplink from the source to the root (=
    /// depth of the source; 0 when the source is the root).
    pub offset: u64,
    /// Radio channels available (k ≥ 1).
    pub channels: u8,
}

impl Session {
    /// Describe a session from `source` over `channels` radios.
    pub fn new(k: &NetKnowledge, source: NodeId, channels: u8) -> Self {
        assert!(channels >= 1);
        let offset = k.of(source).depth as u64;
        Self {
            source,
            offset,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_cluster::ClusterNet;

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    #[test]
    fn knowledge_covers_all_nodes() {
        let net = chain_net(12);
        let k = build_knowledge(&net);
        assert_eq!(k.nodes, 12);
        assert_eq!(k.root, NodeId(0));
        for u in net.tree().nodes() {
            let nk = k.of(u);
            assert_eq!(nk.depth, net.tree().depth(u));
            assert_eq!(nk.status, net.status(u));
        }
    }

    #[test]
    fn slots_present_exactly_on_transmitters() {
        let net = chain_net(15);
        let k = build_knowledge(&net);
        for u in net.tree().nodes() {
            let nk = k.of(u);
            assert_eq!(nk.b_slot.is_some(), nk.bt_internal, "{u} b");
            assert_eq!(nk.l_slot.is_some(), nk.cnet_internal, "{u} l");
            assert_eq!(nk.flood_slot.is_some(), nk.cnet_internal, "{u} flood");
        }
    }

    #[test]
    fn expected_slots_exist_for_receivers() {
        let net = chain_net(15);
        let k = build_knowledge(&net);
        for u in net.tree().nodes() {
            let nk = k.of(u);
            if nk.status.in_backbone() && nk.depth >= 1 {
                assert!(nk.expected_b_slot.is_some(), "{u} lacks expected b-slot");
            }
            if nk.status == dsnet_cluster::NodeStatus::PureMember {
                assert!(nk.expected_l_slot.is_some(), "{u} lacks expected l-slot");
            }
            if nk.depth >= 1 {
                assert!(nk.expected_flood_slot.is_some(), "{u} lacks flood slot");
            }
        }
    }

    #[test]
    fn bt_height_and_sizes() {
        let net = chain_net(9);
        let k = build_knowledge(&net);
        let bt = net.backbone_tree();
        assert_eq!(k.bt_height as usize, bt.height() as usize);
        assert_eq!(k.backbone_size, bt.len());
        assert!(k.bt_height <= k.height);
    }

    #[test]
    fn csr_pool_matches_tree_tour_lists() {
        let net = chain_net(13);
        let k = build_knowledge(&net);
        for u in net.tree().nodes() {
            let expected: Vec<NodeId> = if net.status(u).in_backbone() {
                let mut v: Vec<NodeId> = net
                    .tree()
                    .children(u)
                    .filter(|&c| net.status(c).in_backbone())
                    .collect();
                if let Some(p) = net.tree().parent(u) {
                    v.push(p);
                }
                v
            } else {
                Vec::new()
            };
            assert_eq!(k.bt_neighbors(u), expected.as_slice(), "node {u}");
        }
        // The pool is exactly the concatenation — no gaps, no garbage.
        let total: usize = net.tree().nodes().map(|u| k.of(u).bt_len as usize).sum();
        assert_eq!(k.bt_pool.len(), total);
    }

    #[test]
    fn session_offset_is_source_depth() {
        let net = chain_net(9);
        let k = build_knowledge(&net);
        assert_eq!(Session::new(&k, NodeId(0), 1).offset, 0);
        let deep = net
            .tree()
            .nodes()
            .max_by_key(|&u| net.tree().depth(u))
            .unwrap();
        assert_eq!(
            Session::new(&k, deep, 1).offset,
            net.tree().depth(deep) as u64
        );
    }

    #[test]
    fn cache_hits_on_unchanged_structure_and_misses_after_mutation() {
        let mut net = chain_net(10);
        let cache = KnowledgeCache::new();
        let a = cache.get(&net);
        let b = cache.get(&net);
        assert!(Arc::ptr_eq(&a, &b), "unchanged structure must hit");
        assert_eq!(*a, build_knowledge(&net), "cached == freshly built");
        net.move_in(&[NodeId(9)]).unwrap();
        let c = cache.get(&net);
        assert!(!Arc::ptr_eq(&a, &c), "mutation must invalidate");
        assert_eq!(*c, build_knowledge(&net));
    }

    #[test]
    fn patched_snapshot_is_byte_equal_to_full_rebuild() {
        let mut net = chain_net(24);
        let cache = KnowledgeCache::new();
        let _ = cache.get(&net); // prime
        for step in 0..10u32 {
            match step % 3 {
                0 => {
                    let deepest = net
                        .tree()
                        .nodes()
                        .max_by_key(|&u| (net.tree().depth(u), u))
                        .unwrap();
                    net.move_in(&[deepest]).unwrap();
                }
                1 => {
                    // Leaf departure (deepest node is always a leaf).
                    let leaf = net
                        .tree()
                        .nodes()
                        .max_by_key(|&u| (net.tree().depth(u), u))
                        .unwrap();
                    if net.can_move_out(leaf).is_ok() {
                        net.move_out(leaf).unwrap();
                    }
                }
                _ => {
                    let victim = net.tree().nodes().nth(net.len() / 2).unwrap();
                    if victim != net.root() {
                        net.repair_failure(victim, &Default::default()).unwrap();
                    }
                }
            }
            let k = cache.get(&net);
            assert_eq!(*k, build_knowledge(&net), "step {step}");
        }
        let stats = cache.full_stats();
        assert!(stats.patched >= 1, "patch path must engage: {stats:?}");
    }

    #[test]
    fn patch_counters_and_hit_miss_totals_stay_consistent() {
        let mut net = chain_net(20);
        let cache = KnowledgeCache::new();
        let mut gets = 0u64;
        let _ = cache.get(&net);
        gets += 1;
        let _ = cache.get(&net);
        gets += 1;
        for _ in 0..4 {
            net.move_in(&[NodeId(0)]).unwrap();
            let _ = cache.get(&net);
            gets += 1;
        }
        let s = cache.full_stats();
        assert_eq!(s.hits + s.misses, gets, "{s:?}");
        assert!(s.patched <= s.misses, "patched is a subset of misses");
        assert_eq!(cache.stats(), (s.hits, s.misses, s.patched));
    }

    #[test]
    fn patch_limit_forces_fallback() {
        let mut net = chain_net(16);
        let cache = KnowledgeCache::with_patch_limit(0);
        let _ = cache.get(&net);
        net.move_in(&[NodeId(15)]).unwrap();
        let k = cache.get(&net);
        assert_eq!(*k, build_knowledge(&net));
        let s = cache.full_stats();
        assert_eq!(s.patched, 0);
        assert_eq!(s.fallbacks, 1, "{s:?}");
    }

    #[test]
    fn cache_clear_releases_but_stays_correct() {
        let net = chain_net(6);
        let cache = KnowledgeCache::new();
        let a = cache.get(&net);
        cache.clear();
        let b = cache.get(&net);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
    }

    #[test]
    fn cloned_cache_shares_nothing_but_reads_the_same() {
        let mut net = chain_net(8);
        let cache = KnowledgeCache::new();
        let _ = cache.get(&net);
        let cloned = cache.clone();
        assert_eq!(cloned.stats(), cache.stats());
        net.move_in(&[NodeId(0)]).unwrap();
        let _ = cloned.get(&net);
        assert_ne!(cloned.stats(), cache.stats(), "clones diverge");
    }

    #[test]
    fn session_knowledge_from_cached_base_matches_fresh() {
        let net = chain_net(14);
        let cache = KnowledgeCache::new();
        let base = cache.get(&net);
        let tx = |_u: NodeId| true;
        let rx = |_u: NodeId| true;
        let slots =
            dsnet_cluster::slots::session::assign_session_slots(&net.view(), net.mode(), &tx, &rx);
        let fresh = build_session_knowledge(&net, &slots, &tx);
        let cached = build_session_knowledge_from(&net, &base, &slots, &tx);
        assert_eq!(fresh, cached);
    }

    #[test]
    fn unique_slot_helper() {
        assert_eq!(unique_slot([Some(1), Some(1), Some(2)]), Some(2));
        assert_eq!(unique_slot([Some(3), Some(3)]), None);
        assert_eq!(unique_slot([None, Some(5)]), Some(5));
        assert_eq!(unique_slot(std::iter::empty()), None);
    }
}
