//! Extraction of the paper's per-node knowledge (I) + (II).
//!
//! Section 5 lists what each node of CNet(G) must know for the protocols
//! to run: its neighbours, parent and status (knowledge I); its depth,
//! b-/l-time-slots, and — at the root — the height and largest slots
//! (knowledge II). The cluster crate maintains all of this; here it is
//! snapshotted into plain per-node structs that the protocol state
//! machines carry, mirroring how a real deployment would cache the values
//! locally.
//!
//! The snapshot also precomputes, for every receiver, *which* transmitter
//! slot is guaranteed collision-free (`expected_*_slot`). The base
//! single-channel protocols do not need it (they listen through the whole
//! window), but the multi-channel variants use it to tune the radio to the
//! right (round, channel) pair — legitimate under knowledge (I), which
//! includes the neighbours' knowledge.

use dsnet_cluster::slots::validate::{assign_flood_slots, flood_transmitters};
use dsnet_cluster::{ClusterNet, NodeStatus};
use dsnet_graph::NodeId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Everything one node knows before a broadcast session starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeKnowledge {
    /// The node's own id.
    pub id: NodeId,
    /// Depth in CNet(G) (root = 0).
    pub depth: u32,
    /// Head / gateway / pure-member role.
    pub status: NodeStatus,
    /// CNet parent (`None` for the root).
    pub parent: Option<NodeId>,
    /// Phase-1 transmission slot (BT-internal nodes only).
    pub b_slot: Option<u32>,
    /// Phase-2 transmission slot (CNet-internal nodes only).
    pub l_slot: Option<u32>,
    /// Algorithm-1 transmission slot (CNet-internal nodes only).
    pub flood_slot: Option<u32>,
    /// Transmits in phase 1 (backbone node with a backbone child).
    pub bt_internal: bool,
    /// Transmits in phase 2 (has children).
    pub cnet_internal: bool,
    /// The collision-free slot this backbone receiver should expect in
    /// phase 1 (None for the root and for non-backbone nodes).
    pub expected_b_slot: Option<u32>,
    /// The collision-free slot this member leaf should expect in phase 2.
    pub expected_l_slot: Option<u32>,
    /// The collision-free slot this node should expect in Algorithm 1.
    pub expected_flood_slot: Option<u32>,
    /// For the DFO tour: backbone children followed by the backbone
    /// parent, in tour-visit order. Empty for pure members.
    pub bt_neighbors: Vec<NodeId>,
}

/// Network-wide constants of a session (what the paper stores at the root
/// and ships inside the first packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetKnowledge {
    /// Per-node knowledge, indexed by id (`None` off-structure).
    pub per_node: Vec<Option<NodeKnowledge>>,
    /// The sink.
    pub root: NodeId,
    /// Height of CNet(G).
    pub height: u32,
    /// Height of BT(G) (= deepest backbone node).
    pub bt_height: u32,
    /// δ — largest b-slot.
    pub delta_b: u32,
    /// Δ — largest l-slot.
    pub delta_l: u32,
    /// Δ' — largest Algorithm-1 flood slot.
    pub delta_flood: u32,
    /// Number of attached nodes.
    pub nodes: usize,
    /// Number of backbone nodes.
    pub backbone_size: usize,
}

impl NetKnowledge {
    /// Knowledge of one attached node (panics otherwise).
    pub fn of(&self, u: NodeId) -> &NodeKnowledge {
        self.per_node[u.index()]
            .as_ref()
            .expect("node has no knowledge (not attached)")
    }
}

/// Find a slot value occurring exactly once in `slots` (the receiver's
/// guaranteed-clean slot), if any.
fn unique_slot(slots: impl IntoIterator<Item = Option<u32>>) -> Option<u32> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for s in slots.into_iter().flatten() {
        *counts.entry(s).or_insert(0) += 1;
    }
    counts.iter().find(|(_, &c)| c == 1).map(|(&s, _)| s)
}

/// Snapshot the knowledge of every attached node for a *session* with its
/// own slot table and transmitter set — used by reliable multicast, where
/// the initiator re-assigns slots over the participating transmitters
/// (see `dsnet_cluster::slots::session`). Expected receiver slots are
/// computed against the participating transmitters only.
pub fn build_session_knowledge(
    net: &ClusterNet,
    session_slots: &dsnet_cluster::SlotTable,
    tx: &dyn Fn(NodeId) -> bool,
) -> NetKnowledge {
    build_session_knowledge_from(net, build_knowledge(net), session_slots, tx)
}

/// Like [`build_session_knowledge`], but starting from an already-built
/// base snapshot of the same `net` (e.g. one served by a
/// [`KnowledgeCache`]) instead of rebuilding it — the session rewrite
/// only touches slots and expected slots, so the expensive base pass can
/// be amortised across sessions.
pub fn build_session_knowledge_from(
    net: &ClusterNet,
    base: NetKnowledge,
    session_slots: &dsnet_cluster::SlotTable,
    tx: &dyn Fn(NodeId) -> bool,
) -> NetKnowledge {
    let mut k = base;
    let view = net.view();
    let tree = net.tree();
    let mode = net.mode();
    for u in tree.nodes() {
        let nk = k.per_node[u.index()].as_mut().expect("attached node");
        nk.b_slot = session_slots.b(u);
        nk.l_slot = session_slots.l(u);
        nk.expected_b_slot = (nk.status.in_backbone() && nk.depth >= 1)
            .then(|| {
                unique_slot(
                    view.p_b(u)
                        .into_iter()
                        .filter(|&y| tx(y))
                        .map(|y| session_slots.b(y)),
                )
            })
            .flatten();
        nk.expected_l_slot = view
            .is_member_leaf(u)
            .then(|| {
                unique_slot(
                    view.p_l(u, mode)
                        .into_iter()
                        .filter(|&y| tx(y))
                        .map(|y| session_slots.l(y)),
                )
            })
            .flatten();
    }
    k.delta_b = session_slots.max_b();
    k.delta_l = session_slots.max_l();
    k
}

/// Snapshot the knowledge of every attached node of `net`.
pub fn build_knowledge(net: &ClusterNet) -> NetKnowledge {
    let view = net.view();
    let tree = net.tree();
    let slots = net.slots();
    let mode = net.mode();
    let (flood, delta_flood) = assign_flood_slots(&view);

    let mut per_node: Vec<Option<NodeKnowledge>> = vec![None; net.graph().capacity()];
    let mut bt_height = 0u32;
    let mut backbone_size = 0usize;

    for u in tree.nodes() {
        let status = net.status(u);
        if status.in_backbone() {
            bt_height = bt_height.max(tree.depth(u));
            backbone_size += 1;
        }

        let expected_b_slot = (status.in_backbone() && tree.depth(u) >= 1)
            .then(|| unique_slot(view.p_b(u).into_iter().map(|y| slots.b(y))))
            .flatten();
        let expected_l_slot = view
            .is_member_leaf(u)
            .then(|| unique_slot(view.p_l(u, mode).into_iter().map(|y| slots.l(y))))
            .flatten();
        let expected_flood_slot = (tree.depth(u) >= 1)
            .then(|| {
                unique_slot(
                    flood_transmitters(&view, u)
                        .into_iter()
                        .map(|y| flood[y.index()]),
                )
            })
            .flatten();

        let mut bt_neighbors: Vec<NodeId> = Vec::new();
        if status.in_backbone() {
            bt_neighbors.extend(tree.children(u).filter(|&c| net.status(c).in_backbone()));
            if let Some(p) = tree.parent(u) {
                bt_neighbors.push(p);
            }
        }

        per_node[u.index()] = Some(NodeKnowledge {
            id: u,
            depth: tree.depth(u),
            status,
            parent: tree.parent(u),
            b_slot: slots.b(u),
            l_slot: slots.l(u),
            flood_slot: flood[u.index()],
            bt_internal: view.bt_internal(u),
            cnet_internal: view.cnet_internal(u),
            expected_b_slot,
            expected_l_slot,
            expected_flood_slot,
            bt_neighbors,
        });
    }

    NetKnowledge {
        per_node,
        root: tree.root(),
        height: tree.height(),
        bt_height,
        delta_b: net.delta_b(),
        delta_l: net.delta_l(),
        delta_flood,
        nodes: tree.len(),
        backbone_size,
    }
}

/// A version-keyed cache for [`NetKnowledge`] snapshots.
///
/// `build_knowledge` is the dominant per-broadcast cost on static
/// networks (it re-derives flood slots, expected receiver slots and
/// backbone facts from scratch). The cache keys snapshots on
/// [`ClusterNet::structure_version`]: repeated broadcasts over an
/// unchanged structure reuse the `Arc`ed snapshot, while *any* mutation
/// (churn, move-out, repair, mobility maintenance) bumps the version and
/// forces a rebuild on next access. Correctness leans only on the
/// version contract — equal versions imply identical structure — so the
/// cached path is observably indistinguishable from rebuilding every
/// time (see `tests/cache_equivalence.rs`).
///
/// The cache keeps the **last two** `(version, knowledge)` entries in
/// MRU order. One entry is enough for static workloads, but callers that
/// alternate between two structures per epoch (a mobility probe against
/// the pre- and post-repair structure, an A/B comparison harness) would
/// thrash a single slot every access. Hit/miss totals are readable via
/// [`KnowledgeCache::stats`].
#[derive(Debug, Default)]
struct CacheState {
    /// MRU-ordered entries: index 0 is the most recently used.
    entries: Vec<(u64, Arc<NetKnowledge>)>,
    hits: u64,
    misses: u64,
}

/// See the type-level docs above; this is the shared handle.
#[derive(Debug, Default)]
pub struct KnowledgeCache {
    state: Mutex<CacheState>,
}

impl KnowledgeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The knowledge snapshot for `net`'s current structure — served from
    /// cache when the structure version matches either retained entry,
    /// rebuilt otherwise.
    pub fn get(&self, net: &ClusterNet) -> Arc<NetKnowledge> {
        let version = net.structure_version();
        let mut state = self.state.lock().expect("knowledge cache poisoned");
        if let Some(pos) = state.entries.iter().position(|(v, _)| *v == version) {
            state.hits += 1;
            let entry = state.entries.remove(pos);
            let k = Arc::clone(&entry.1);
            state.entries.insert(0, entry);
            return k;
        }
        state.misses += 1;
        let k = Arc::new(build_knowledge(net));
        state.entries.insert(0, (version, Arc::clone(&k)));
        state.entries.truncate(2);
        k
    }

    /// Lifetime totals of `(hits, misses)` across every
    /// [`KnowledgeCache::get`] call (including gets after a
    /// [`KnowledgeCache::clear`]).
    pub fn stats(&self) -> (u64, u64) {
        let state = self.state.lock().expect("knowledge cache poisoned");
        (state.hits, state.misses)
    }

    /// Drop any cached snapshots (the next [`KnowledgeCache::get`]
    /// rebuilds). Never needed for correctness — the version key already
    /// invalidates — but lets callers release memory early. Statistics
    /// are retained.
    pub fn clear(&self) {
        self.state
            .lock()
            .expect("knowledge cache poisoned")
            .entries
            .clear();
    }
}

impl Clone for KnowledgeCache {
    fn clone(&self) -> Self {
        let state = self.state.lock().expect("knowledge cache poisoned");
        Self {
            state: Mutex::new(CacheState {
                entries: state.entries.clone(),
                hits: state.hits,
                misses: state.misses,
            }),
        }
    }
}

/// Knowledge plus the session parameters a run is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// The broadcast origin.
    pub source: NodeId,
    /// Rounds consumed by the uplink from the source to the root (=
    /// depth of the source; 0 when the source is the root).
    pub offset: u64,
    /// Radio channels available (k ≥ 1).
    pub channels: u8,
}

impl Session {
    /// Describe a session from `source` over `channels` radios.
    pub fn new(k: &NetKnowledge, source: NodeId, channels: u8) -> Self {
        assert!(channels >= 1);
        let offset = k.of(source).depth as u64;
        Self {
            source,
            offset,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_cluster::ClusterNet;

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    #[test]
    fn knowledge_covers_all_nodes() {
        let net = chain_net(12);
        let k = build_knowledge(&net);
        assert_eq!(k.nodes, 12);
        assert_eq!(k.root, NodeId(0));
        for u in net.tree().nodes() {
            let nk = k.of(u);
            assert_eq!(nk.depth, net.tree().depth(u));
            assert_eq!(nk.status, net.status(u));
        }
    }

    #[test]
    fn slots_present_exactly_on_transmitters() {
        let net = chain_net(15);
        let k = build_knowledge(&net);
        for u in net.tree().nodes() {
            let nk = k.of(u);
            assert_eq!(nk.b_slot.is_some(), nk.bt_internal, "{u} b");
            assert_eq!(nk.l_slot.is_some(), nk.cnet_internal, "{u} l");
            assert_eq!(nk.flood_slot.is_some(), nk.cnet_internal, "{u} flood");
        }
    }

    #[test]
    fn expected_slots_exist_for_receivers() {
        let net = chain_net(15);
        let k = build_knowledge(&net);
        for u in net.tree().nodes() {
            let nk = k.of(u);
            if nk.status.in_backbone() && nk.depth >= 1 {
                assert!(nk.expected_b_slot.is_some(), "{u} lacks expected b-slot");
            }
            if nk.status == dsnet_cluster::NodeStatus::PureMember {
                assert!(nk.expected_l_slot.is_some(), "{u} lacks expected l-slot");
            }
            if nk.depth >= 1 {
                assert!(nk.expected_flood_slot.is_some(), "{u} lacks flood slot");
            }
        }
    }

    #[test]
    fn bt_height_and_sizes() {
        let net = chain_net(9);
        let k = build_knowledge(&net);
        let bt = net.backbone_tree();
        assert_eq!(k.bt_height as usize, bt.height() as usize);
        assert_eq!(k.backbone_size, bt.len());
        assert!(k.bt_height <= k.height);
    }

    #[test]
    fn session_offset_is_source_depth() {
        let net = chain_net(9);
        let k = build_knowledge(&net);
        assert_eq!(Session::new(&k, NodeId(0), 1).offset, 0);
        let deep = net
            .tree()
            .nodes()
            .max_by_key(|&u| net.tree().depth(u))
            .unwrap();
        assert_eq!(
            Session::new(&k, deep, 1).offset,
            net.tree().depth(deep) as u64
        );
    }

    #[test]
    fn cache_hits_on_unchanged_structure_and_misses_after_mutation() {
        let mut net = chain_net(10);
        let cache = KnowledgeCache::new();
        let a = cache.get(&net);
        let b = cache.get(&net);
        assert!(Arc::ptr_eq(&a, &b), "unchanged structure must hit");
        assert_eq!(*a, build_knowledge(&net), "cached == freshly built");
        net.move_in(&[NodeId(9)]).unwrap();
        let c = cache.get(&net);
        assert!(!Arc::ptr_eq(&a, &c), "mutation must invalidate");
        assert_eq!(*c, build_knowledge(&net));
    }

    #[test]
    fn cache_clear_releases_but_stays_correct() {
        let net = chain_net(6);
        let cache = KnowledgeCache::new();
        let a = cache.get(&net);
        cache.clear();
        let b = cache.get(&net);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(*a, *b);
    }

    #[test]
    fn session_knowledge_from_cached_base_matches_fresh() {
        let net = chain_net(14);
        let cache = KnowledgeCache::new();
        let base = cache.get(&net);
        let tx = |_u: NodeId| true;
        let rx = |_u: NodeId| true;
        let slots =
            dsnet_cluster::slots::session::assign_session_slots(&net.view(), net.mode(), &tx, &rx);
        let fresh = build_session_knowledge(&net, &slots, &tx);
        let cached = build_session_knowledge_from(&net, (*base).clone(), &slots, &tx);
        assert_eq!(fresh, cached);
    }

    #[test]
    fn unique_slot_helper() {
        assert_eq!(unique_slot([Some(1), Some(1), Some(2)]), Some(2));
        assert_eq!(unique_slot([Some(3), Some(3)]), None);
        assert_eq!(unique_slot([None, Some(5)]), Some(5));
        assert_eq!(unique_slot(std::iter::empty()), None);
    }
}
