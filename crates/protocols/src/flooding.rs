//! Probabilistic flooding — the unstructured baseline.
//!
//! The paper's introduction motivates structure by pointing at the
//! *broadcast storm problem* \[16\]: naive flooding, where every node
//! re-transmits on reception, collapses under its own collisions. The
//! standard mitigation is randomized backoff: on first reception a node
//! re-transmits exactly once, at a uniformly random round within a
//! contention window of `W` rounds. Small `W` floods fast but collides
//! (orphaning parts of the network — there is no retry); large `W` is
//! slow and keeps radios on long. The E15 experiment sweeps `W` against
//! the CFF broadcast to show why the paper's TDM slots are worth their
//! maintenance cost.
//!
//! The protocol needs no cluster structure at all — it runs on the bare
//! connectivity graph, which is exactly its appeal and its downfall.

use dsnet_geom::rng::{derive_seed, rng_from_seed};
use dsnet_graph::{Graph, NodeId};
use dsnet_radio::{
    Action, EnergyReport, Engine, EngineConfig, FailurePlan, NodeCtx, NodeProgram, Round,
};
use rand::Rng as _;

/// Per-node state machine for randomized-backoff flooding.
pub struct FloodProgram {
    /// Pre-drawn backoff (1..=window) applied relative to reception.
    backoff: u64,
    /// Holds the message.
    pub received: bool,
    /// Round of first reception (0 for the source).
    pub received_round: Option<Round>,
    tx_round: Option<u64>,
    sent: bool,
}

impl FloodProgram {
    /// The flood origin: transmits in round 1.
    pub fn source(window: u64, seed: u64) -> Self {
        let mut p = Self::idle(window, seed);
        p.received = true;
        p.received_round = Some(0);
        p.tx_round = Some(1); // the source opens the flood immediately
        p
    }

    /// A node waiting to hear the message.
    pub fn idle(window: u64, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        Self {
            backoff: rng.random_range(1..=window.max(1)),
            received: false,
            received_round: None,
            tx_round: None,
            sent: false,
        }
    }
}

impl NodeProgram for FloodProgram {
    type Msg = ();

    fn act(&mut self, ctx: &NodeCtx) -> Action<()> {
        if let Some(tx) = self.tx_round {
            if !self.sent && ctx.round == tx {
                self.sent = true;
                return Action::transmit(());
            }
        }
        if self.received && self.sent {
            // Optimistically power down after the single mandated
            // re-transmission (flattering the baseline).
            return Action::Sleep;
        }
        Action::listen()
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, _msg: &()) {
        if !self.received {
            self.received = true;
            self.received_round = Some(ctx.round);
            self.tx_round = Some(ctx.round + self.backoff);
        }
    }

    fn done(&self) -> bool {
        self.received && self.sent
    }
}

/// Result of one flooding run.
#[derive(Debug, Clone)]
pub struct FloodOutcome {
    /// Rounds until the run ended. When any node is orphaned this equals
    /// the engine's round limit (orphans listen forever); use
    /// [`FloodOutcome::last_delivery_round`] for the useful latency.
    pub rounds: u64,
    /// Round of the final successful delivery (0 when nothing delivered).
    pub last_delivery_round: u64,
    /// Nodes that received the message.
    pub delivered: usize,
    /// Live nodes in the graph.
    pub targets: usize,
    /// Per-run energy aggregate.
    pub energy: EnergyReport,
    /// Receiver-side collision events.
    pub collisions: usize,
}

impl FloodOutcome {
    /// Fraction of nodes that received the message.
    pub fn delivery_ratio(&self) -> f64 {
        if self.targets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.targets as f64
        }
    }
}

/// Run randomized-backoff flooding on the bare graph from `source` with
/// contention window `window`. Deterministic per `seed`.
pub fn run_flooding(
    graph: &Graph,
    source: NodeId,
    window: u64,
    seed: u64,
    failures: FailurePlan,
) -> FloodOutcome {
    // Worst case: the message crosses the whole graph one window at a time.
    let max_rounds = 2 + window.max(1) * (graph.node_count() as u64 + 2);
    let mut engine = Engine::new(
        graph,
        EngineConfig {
            max_rounds,
            record_trace: true,
            ..Default::default()
        },
        |u| {
            let node_seed = derive_seed(seed, u.0 as u64);
            if u == source {
                FloodProgram::source(window, node_seed)
            } else {
                FloodProgram::idle(window, node_seed)
            }
        },
    );
    engine.set_failures(failures);
    let out = engine.run();
    let collisions = engine.trace().collision_count();
    let energy = engine.energy_report();
    let programs = engine.into_programs();
    let mut delivered = 0usize;
    let mut last_delivery_round = 0u64;
    for u in graph.nodes() {
        if let Some(p) = programs[u.index()].as_ref() {
            if p.received {
                delivered += 1;
                last_delivery_round = last_delivery_round.max(p.received_round.unwrap_or(0));
            }
        }
    }
    FloodOutcome {
        rounds: out.rounds,
        last_delivery_round,
        delivered,
        targets: graph.node_count(),
        energy,
        collisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        g
    }

    #[test]
    fn flooding_covers_a_path_reliably() {
        // On a path there is only one transmitter per frontier: collisions
        // can only come from both-side overlaps, rare with W = 4.
        let g = path(12);
        let mut ok = 0;
        for seed in 0..10 {
            let out = run_flooding(&g, NodeId(0), 4, seed, FailurePlan::new());
            if out.delivered == out.targets {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/10 full coverage on a path");
    }

    #[test]
    fn tiny_window_on_dense_graph_collides_and_orphans() {
        // A clique-ish hub-and-spokes: every spoke hears every other spoke
        // through the hub? Use a two-level star: source → 8 middles → 8
        // leaves, middles all mutually adjacent so W=1 guarantees their
        // re-transmissions collide at the leaves... construct: source 0
        // adjacent to middles 1..=8; middles pairwise adjacent; each leaf
        // 9..=16 adjacent to ALL middles (so ≥2 transmitters collide).
        let mut g = Graph::with_nodes(17);
        for m in 1..=8u32 {
            g.add_edge(NodeId(0), NodeId(m));
            for m2 in (m + 1)..=8 {
                g.add_edge(NodeId(m), NodeId(m2));
            }
            for l in 9..=16u32 {
                g.add_edge(NodeId(m), NodeId(l));
            }
        }
        // W = 1: all middles re-transmit in the same round → every leaf
        // sees 8 colliding transmitters and nothing afterwards.
        let out = run_flooding(&g, NodeId(0), 1, 3, FailurePlan::new());
        assert!(out.delivered < out.targets, "W=1 should orphan the leaves");
        assert!(out.collisions > 0);
    }

    #[test]
    fn larger_window_recovers_coverage() {
        let mut g = Graph::with_nodes(17);
        for m in 1..=8u32 {
            g.add_edge(NodeId(0), NodeId(m));
            for m2 in (m + 1)..=8 {
                g.add_edge(NodeId(m), NodeId(m2));
            }
            for l in 9..=16u32 {
                g.add_edge(NodeId(m), NodeId(l));
            }
        }
        let mut best = 0;
        for seed in 0..5 {
            let out = run_flooding(&g, NodeId(0), 32, seed, FailurePlan::new());
            best = best.max(out.delivered);
        }
        assert_eq!(best, 17, "a wide window should usually cover everyone");
    }

    #[test]
    fn flooding_is_deterministic_per_seed() {
        let g = path(8);
        let a = run_flooding(&g, NodeId(0), 4, 9, FailurePlan::new());
        let b = run_flooding(&g, NodeId(0), 4, 9, FailurePlan::new());
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn singleton_source_finishes() {
        let g = path(1);
        let out = run_flooding(&g, NodeId(0), 4, 1, FailurePlan::new());
        assert_eq!(out.delivered, 1);
    }
}
