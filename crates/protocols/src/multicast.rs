//! Multicast participation (Section 3.4).
//!
//! A multicast for group `g` is Algorithm 2 with the transmitter set
//! pruned by MCNet's relay-lists: a node forwards iff some descendant
//! belongs to `g`, and listens iff it needs the message itself or must
//! forward it. Sub-trees without any group member drop out of the session
//! entirely — the energy (and often latency) win the paper claims.
//!
//! One honest caveat, measured rather than hidden: pruning *removes*
//! transmitters, and Time-Slot Condition 2 only guarantees a unique slot
//! among the *full* transmitter set. If a receiver's uniquely-slotted
//! neighbour happens not to relay group `g` while two same-slot
//! neighbours do, that receiver can still lose a round to a collision.
//! The paper does not discuss this; the multicast experiments report the
//! measured delivery ratio so the effect is visible (it is rare in
//! practice because most receivers hear few transmitters).

use crate::improved::Participation;
use dsnet_cluster::{GroupId, McNet};
use dsnet_graph::NodeId;

/// Participation of node `u` in a group-`g` multicast session.
pub fn participation(mc: &McNet, g: GroupId, u: NodeId) -> Participation {
    let relays = mc.should_relay(u, g);
    let wants = mc.is_target(u, g);
    Participation {
        rx: wants || relays,
        tx: relays,
    }
}

/// Per-node participation table for a whole session.
pub fn participation_table(mc: &McNet, g: GroupId) -> Vec<Participation> {
    let cap = mc.net().graph().capacity();
    let mut out = vec![Participation::NONE; cap];
    for u in mc.net().tree().nodes() {
        out[u.index()] = participation(mc, g, u);
    }
    out
}

/// Nodes that must *receive* in a group-`g` session (the delivery targets).
pub fn targets(mc: &McNet, g: GroupId) -> Vec<NodeId> {
    mc.group_members(g)
}

/// Number of relays the pruned session activates (the nodes that actually
/// forward — the paper's saving is everyone else staying asleep).
pub fn relay_count(mc: &McNet, g: GroupId) -> usize {
    mc.net()
        .tree()
        .nodes()
        .filter(|&u| mc.should_relay(u, g))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grow(n: u32) -> McNet {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[]).unwrap();
        for i in 1..n {
            let groups: &[GroupId] = if i % 4 == 0 { &[1] } else { &[] };
            mc.move_in(&[NodeId(i - 1)], groups).unwrap();
        }
        mc
    }

    #[test]
    fn relays_are_ancestors_of_targets() {
        let mc = grow(17);
        let tree = mc.net().tree();
        for u in tree.nodes() {
            let p = participation(&mc, 1, u);
            if p.tx {
                // Must have a descendant in the group.
                let sub = tree.subtree_nodes(u);
                assert!(
                    sub.iter().any(|&d| d != u && mc.is_target(d, 1)),
                    "{u} relays but has no group descendant"
                );
            }
        }
    }

    #[test]
    fn targets_listen_nontargets_sleep() {
        let mc = grow(17);
        for u in mc.net().tree().nodes() {
            let p = participation(&mc, 1, u);
            if mc.is_target(u, 1) {
                assert!(p.rx, "{u} is a target but rx disabled");
            }
            if !mc.is_target(u, 1) && !mc.should_relay(u, 1) {
                assert_eq!(p, Participation::NONE);
            }
        }
    }

    #[test]
    fn empty_group_has_no_participants() {
        let mc = grow(10);
        let table = participation_table(&mc, 42);
        assert!(table.iter().all(|&p| p == Participation::NONE));
        assert!(targets(&mc, 42).is_empty());
        assert_eq!(relay_count(&mc, 42), 0);
    }
}
