//! One-call experiment drivers.
//!
//! Each `run_*` function snapshots the knowledge of a built
//! [`ClusterNet`], instantiates the per-node programs, executes them on
//! the radio engine (optionally under a failure plan) and condenses the
//! run into a [`BroadcastOutcome`] — the unit every bench and figure in
//! the evaluation is built from.

use crate::cff::CffProgram;
use crate::dfo::DfoProgram;
use crate::improved::{Cff2Program, Cff2Schedule, Participation};
use crate::knowledge::{build_knowledge, build_session_knowledge_from, NetKnowledge, Session};
use crate::reliable::ReliableCffProgram;
use crate::{analytic, multicast};
use dsnet_cluster::{ClusterNet, GroupId, McNet, NodeStatus};
use dsnet_graph::NodeId;
use dsnet_radio::{
    EnergyReport, Engine, EngineConfig, FailurePlan, LossModel, NodeProgram, ShardPlan, StopReason,
    Trace, TraceEvent,
};
use std::sync::Arc;

/// Options shared by all protocol runs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Radio channels `k ≥ 1`.
    pub channels: u8,
    /// Fail-stop / outage schedule (empty by default).
    pub failures: FailurePlan,
    /// Per-link Bernoulli loss (lossless by default).
    pub loss: LossModel,
    /// Retry budget for the reliable flood (`run_cff_reliable` only).
    pub max_retries: u32,
    /// Record the event trace (needed for collision counts and
    /// [`BroadcastOutcome::coverage`]). On by default; turn off for large
    /// sweeps that don't read either.
    pub record_trace: bool,
    /// Spatial cell partition for sharded delivery resolution (see
    /// `SensorNetwork::shard_plan`). `None` = one implicit cell. The
    /// partition is invisible in every output — traces, meters and
    /// counters are byte-identical with or without it.
    pub shards: Option<Arc<ShardPlan>>,
    /// Worker threads for intra-run parallel delivery (`> 1` resolves
    /// the shard cells concurrently; outputs stay byte-identical).
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            channels: 1,
            failures: FailurePlan::new(),
            loss: LossModel::none(),
            max_retries: 2,
            record_trace: true,
            shards: None,
            threads: 1,
        }
    }
}

/// Coverage-over-time quantiles extracted from the delivery trace:
/// the first round by which 50% / 90% / all of the targets held the
/// message (the source counts as covered at round 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// First round by which ≥ 50% of the targets were covered.
    pub t50: Option<u64>,
    /// First round by which ≥ 90% of the targets were covered.
    pub t90: Option<u64>,
    /// Round the last target was covered; `None` unless all were.
    pub t_full: Option<u64>,
}

/// Condensed result of one protocol execution.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Rounds until the engine stopped (completion or schedule end).
    pub rounds: u64,
    /// Why the engine stopped.
    pub stop: StopReason,
    /// Targets that actually received the message.
    pub delivered: usize,
    /// Number of intended receivers.
    pub targets: usize,
    /// Targets still alive when the run ended (a node in a fail-stop
    /// plan or an open outage window at the final round is dead; a node
    /// whose outage ended is alive).
    pub targets_alive: usize,
    /// Delivered targets among [`Self::targets_alive`].
    pub delivered_alive: usize,
    /// Energy over every node that carried a program.
    pub energy: EnergyReport,
    /// Receiver-side collision events; `None` when the run was executed
    /// with `record_trace: false` and the count is unknowable.
    pub collisions: Option<usize>,
    /// Coverage-over-time quantiles; `None` without a trace.
    pub coverage: Option<Coverage>,
    /// The analytic round bound for this protocol and network.
    pub bound: u64,
}

impl BroadcastOutcome {
    /// Fraction of **all** targets that received the message — dead ones
    /// count against the protocol. The honest headline number.
    pub fn delivery_ratio(&self) -> f64 {
        if self.targets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.targets as f64
        }
    }

    /// Fraction of the targets *alive at the end of the run* that
    /// received the message — the protocol's performance on the nodes it
    /// could possibly have served. Always ≥ [`Self::delivery_ratio`].
    pub fn delivery_ratio_alive(&self) -> f64 {
        if self.targets_alive == 0 {
            1.0
        } else {
            self.delivered_alive as f64 / self.targets_alive as f64
        }
    }

    /// Whether every target received the message.
    pub fn completed(&self) -> bool {
        self.delivered == self.targets
    }

    /// The paper's Figure-9 metric: rounds the worst-off node stayed awake.
    pub fn max_awake(&self) -> u64 {
        self.energy.max_awake
    }
}

/// Extract [`Coverage`] from a run's trace. `None` if tracing was off.
fn coverage_from_trace(trace: &Trace, source: NodeId, targets: &[NodeId]) -> Option<Coverage> {
    if !trace.is_enabled() {
        return None;
    }
    let mut first = std::collections::BTreeMap::new();
    first.insert(source, 0u64);
    for ev in trace.events() {
        if let TraceEvent::Deliver { round, to, .. } = *ev {
            first.entry(to).or_insert(round);
        }
    }
    let mut times: Vec<u64> = targets
        .iter()
        .filter_map(|u| first.get(u).copied())
        .collect();
    times.sort_unstable();
    let n = targets.len();
    let quantile = |num: usize, den: usize| {
        if n == 0 {
            return Some(0);
        }
        times.get(((n * num).div_ceil(den)).max(1) - 1).copied()
    };
    Some(Coverage {
        t50: quantile(1, 2),
        t90: quantile(9, 10),
        t_full: if times.len() == n {
            times.last().copied().or(Some(0))
        } else {
            None
        },
    })
}

/// Fold the raw engine outputs and per-node reception bitmap into a
/// [`BroadcastOutcome`], splitting delivery by the alive-at-end
/// denominator.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site per runner
fn condense(
    rounds: u64,
    stop: StopReason,
    energy: EnergyReport,
    collisions: Option<usize>,
    coverage: Option<Coverage>,
    failures: &FailurePlan,
    targets: &[NodeId],
    received: &[bool],
    bound: u64,
) -> BroadcastOutcome {
    let delivered = targets.iter().filter(|&&u| received[u.index()]).count();
    let mut targets_alive = 0;
    let mut delivered_alive = 0;
    for &u in targets {
        if failures.node_dead(u, rounds + 1) {
            continue;
        }
        targets_alive += 1;
        if received[u.index()] {
            delivered_alive += 1;
        }
    }
    BroadcastOutcome {
        rounds,
        stop,
        delivered,
        targets: targets.len(),
        targets_alive,
        delivered_alive,
        energy,
        collisions,
        coverage,
        bound,
    }
}

fn engine_config(cfg: &RunConfig, max_rounds: u64) -> EngineConfig {
    EngineConfig {
        channels: cfg.channels,
        max_rounds,
        record_trace: cfg.record_trace,
    }
}

/// Uplink positions: `pos[u] = j` when `u` is the `j`-th node on the
/// source→root path (source = 0).
fn uplink_positions(net: &ClusterNet, source: NodeId) -> Vec<Option<u64>> {
    let mut pos = vec![None; net.graph().capacity()];
    for (j, &u) in net.tree().path_to_root(source).iter().enumerate() {
        pos[u.index()] = Some(j as u64);
    }
    pos
}

/// Shared tail of every runner: bind programs to the graph, execute under
/// the configured failures/loss, then condense outcome, delivery bitmap
/// and trace. One body instead of four copies — and the trace comes back
/// by value (via `Engine::into_parts`) so traced variants cost no clone.
#[allow(clippy::too_many_arguments)] // internal plumbing, one call site per runner
fn drive<P: NodeProgram + Send>(
    net: &ClusterNet,
    source: NodeId,
    cfg: &RunConfig,
    max_rounds: u64,
    bound: u64,
    targets: &[NodeId],
    make: impl FnMut(NodeId) -> P,
    received_flag: impl Fn(&P) -> bool,
) -> (BroadcastOutcome, Vec<bool>, Trace)
where
    P::Msg: Send + Sync,
{
    let mut engine = Engine::new(net.graph(), engine_config(cfg, max_rounds), make);
    engine.set_failures(cfg.failures.clone());
    engine.set_loss(cfg.loss);
    if let Some(plan) = &cfg.shards {
        engine.set_shards((**plan).clone(), cfg.threads);
    }
    let out = if cfg.threads > 1 {
        engine.run_parallel()
    } else {
        engine.run()
    };
    let collisions = engine.trace().try_collision_count();
    let energy = engine.energy_report();
    let coverage = coverage_from_trace(engine.trace(), source, targets);
    let (trace, programs) = engine.into_parts();
    let received: Vec<bool> = (0..net.graph().capacity())
        .map(|i| programs[i].as_ref().is_some_and(&received_flag))
        .collect();
    let outcome = condense(
        out.rounds,
        out.stop,
        energy,
        collisions,
        coverage,
        &cfg.failures,
        targets,
        &received,
        bound,
    );
    (outcome, received, trace)
}

/// Run the DFO baseline broadcast (Section 3.2, from \[19\]).
pub fn run_dfo(net: &ClusterNet, source: NodeId, cfg: &RunConfig) -> BroadcastOutcome {
    run_dfo_with(net, &build_knowledge(net), source, cfg)
}

/// [`run_dfo`] over a prebuilt knowledge snapshot of the same `net`
/// (e.g. served by a [`crate::knowledge::KnowledgeCache`]).
pub fn run_dfo_with(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_dfo_traced(net, k, source, cfg).0
}

/// [`run_dfo_with`], additionally returning the run's event trace.
pub fn run_dfo_traced(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> (BroadcastOutcome, Trace) {
    let bound = analytic::dfo_rounds(
        k.backbone_size,
        k.of(source).status == NodeStatus::PureMember,
    );
    let targets: Vec<NodeId> = net.tree().nodes().collect();
    let (outcome, _, trace) = drive(
        net,
        source,
        cfg,
        bound + 8,
        bound,
        &targets,
        |u| DfoProgram::new(k, u, source),
        |p| p.received,
    );
    (outcome, trace)
}

/// Run Algorithm 1 (basic collision-free flooding), with the paper's
/// "Multi-Channels" remark honoured when `cfg.channels > 1`.
pub fn run_cff_basic(net: &ClusterNet, source: NodeId, cfg: &RunConfig) -> BroadcastOutcome {
    run_cff_basic_with(net, &build_knowledge(net), source, cfg)
}

/// [`run_cff_basic`] over a prebuilt knowledge snapshot of the same `net`.
pub fn run_cff_basic_with(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_cff_basic_traced(net, k, source, cfg).0
}

/// [`run_cff_basic_with`], additionally returning the run's event trace.
pub fn run_cff_basic_traced(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> (BroadcastOutcome, Trace) {
    let session = Session::new(k, source, cfg.channels);
    let bound = analytic::cff_basic_bound(k, session.offset, cfg.channels);
    let pos = uplink_positions(net, source);
    let targets: Vec<NodeId> = net.tree().nodes().collect();
    let (outcome, _, trace) = drive(
        net,
        source,
        cfg,
        bound + 4,
        bound,
        &targets,
        |u| CffProgram::new(k, &session, u, pos[u.index()]),
        |p| p.received,
    );
    (outcome, trace)
}

/// Run the bounded-retry **reliable** flood: Algorithm 1 extended with
/// per-depth feedback windows, NACK/retransmit and `cfg.max_retries`
/// retry epochs (see [`crate::reliable`]). Strictly slower than
/// [`run_cff_basic`] when nothing is lost; strictly better at delivering
/// when something is.
pub fn run_cff_reliable(net: &ClusterNet, source: NodeId, cfg: &RunConfig) -> BroadcastOutcome {
    run_cff_reliable_with(net, &build_knowledge(net), source, cfg)
}

/// [`run_cff_reliable`] over a prebuilt knowledge snapshot of the same
/// `net`.
pub fn run_cff_reliable_with(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_cff_reliable_traced(net, k, source, cfg).0
}

/// [`run_cff_reliable_with`], additionally returning the run's trace.
pub fn run_cff_reliable_traced(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> (BroadcastOutcome, Trace) {
    let session = Session::new(k, source, cfg.channels);
    let bound = analytic::cff_reliable_bound(k, session.offset, cfg.channels, cfg.max_retries);
    let pos = uplink_positions(net, source);
    let targets: Vec<NodeId> = net.tree().nodes().collect();
    let (outcome, _, trace) = drive(
        net,
        source,
        cfg,
        bound + 4,
        bound,
        &targets,
        |u| ReliableCffProgram::new(k, &session, u, pos[u.index()], cfg.max_retries),
        |p| p.received,
    );
    (outcome, trace)
}

/// Run Algorithm 2 (improved CFF) with `cfg.channels` radios.
pub fn run_improved(net: &ClusterNet, source: NodeId, cfg: &RunConfig) -> BroadcastOutcome {
    run_improved_with(net, &build_knowledge(net), source, cfg)
}

/// [`run_improved`] over a prebuilt knowledge snapshot of the same `net`.
pub fn run_improved_with(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_improved_traced(net, k, source, cfg).0
}

/// [`run_improved_with`], additionally returning the run's event trace
/// (including the benign k=1 leaf-window collision note, when it applies).
pub fn run_improved_traced(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
) -> (BroadcastOutcome, Trace) {
    let all: Vec<NodeId> = net.tree().nodes().collect();
    let (outcome, _, trace) =
        run_improved_inner(net, k, source, cfg, |_u| Participation::FULL, &all);
    (outcome, trace)
}

/// Run a group-`g` multicast over MCNet (Algorithm 2 pruned by
/// relay-lists). Targets are the group members.
pub fn run_multicast(
    mc: &McNet,
    source: NodeId,
    group: GroupId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_multicast_with(mc, &build_knowledge(mc.net()), source, group, cfg)
}

/// [`run_multicast`] over a prebuilt knowledge snapshot of `mc.net()`.
pub fn run_multicast_with(
    mc: &McNet,
    k: &NetKnowledge,
    source: NodeId,
    group: GroupId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    let net = mc.net();
    let table = multicast::participation_table(mc, group);
    let targets = multicast::targets(mc, group);
    run_improved_inner(net, k, source, cfg, |u| table[u.index()], &targets).0
}

/// Run a group-`g` multicast with **session slots**: the initiator
/// re-assigns time-slots over the participating transmitter set (see
/// `dsnet_cluster::slots::session`), so Time-Slot Condition 2 holds for
/// the pruned session and delivery is guaranteed — and because sessions
/// have fewer transmitters, the session `δ`/`Δ` (hence the windows) are
/// usually smaller than the broadcast ones.
pub fn run_multicast_reliable(
    mc: &McNet,
    source: NodeId,
    group: GroupId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    run_multicast_reliable_with(mc, &build_knowledge(mc.net()), source, group, cfg)
}

/// [`run_multicast_reliable`] starting from a prebuilt *base* knowledge
/// snapshot of `mc.net()` — the session rewrite is applied on a clone of
/// the base, so the expensive base pass is amortised across sessions.
pub fn run_multicast_reliable_with(
    mc: &McNet,
    base: &NetKnowledge,
    source: NodeId,
    group: GroupId,
    cfg: &RunConfig,
) -> BroadcastOutcome {
    let net = mc.net();
    let table = multicast::participation_table(mc, group);
    let tx = |u: NodeId| table[u.index()].tx;
    let rx = |u: NodeId| table[u.index()].rx;
    let session_slots =
        dsnet_cluster::slots::session::assign_session_slots(&net.view(), net.mode(), &tx, &rx);
    let k = build_session_knowledge_from(net, base, &session_slots, &tx);
    let targets = multicast::targets(mc, group);
    run_improved_inner(net, &k, source, cfg, |u| table[u.index()], &targets).0
}

/// Like [`run_improved`], additionally returning the per-node delivery
/// bitmap (indexed by node id) — used by multi-sink failover to merge
/// coverage across structures.
pub fn run_improved_detailed(
    net: &ClusterNet,
    source: NodeId,
    cfg: &RunConfig,
) -> (BroadcastOutcome, Vec<bool>) {
    let k = build_knowledge(net);
    let all: Vec<NodeId> = net.tree().nodes().collect();
    let (outcome, received, _) =
        run_improved_inner(net, &k, source, cfg, |_u| Participation::FULL, &all);
    (outcome, received)
}

fn run_improved_inner(
    net: &ClusterNet,
    k: &NetKnowledge,
    source: NodeId,
    cfg: &RunConfig,
    part: impl Fn(NodeId) -> Participation,
    targets: &[NodeId],
) -> (BroadcastOutcome, Vec<bool>, Trace) {
    let session = Session::new(k, source, cfg.channels);
    let sched = Cff2Schedule::new(k, &session);
    let bound = analytic::improved_bound(k, session.offset, cfg.channels);
    let pos = uplink_positions(net, source);
    let (outcome, received, mut trace) = drive(
        net,
        source,
        cfg,
        sched.end_round + 4,
        bound,
        targets,
        |u| Cff2Program::new(k, &session, sched, u, pos[u.index()], part(u)),
        |p| p.received,
    );
    // The documented k=1 contract (see `tests/protocol_properties.rs`):
    // leaves listening through the shared phase-2 window legally observe
    // collisions at duplicated slots they are not assigned to. That is a
    // diagnostic fact, not a fault — it travels on the trace instead of
    // stderr, so quiet runs stay quiet.
    if cfg.channels == 1 {
        if let Some(c) = outcome.collisions.filter(|&c| c > 0) {
            trace.warn(format!(
                "improved CFF on k=1 observed {c} benign leaf-window \
                 collision(s): leaves listen through the whole shared \
                 phase-2 window and may hear collisions at duplicated \
                 slots they are not assigned to; each leaf's designated \
                 slot stays clean (Time-Slot Condition 2)"
            ));
        }
    }
    (outcome, received, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_cluster::ClusterNet;

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn all_three_protocols_cover_the_network() {
        let net = chain_net(20);
        let cfg = RunConfig::default();
        for out in [
            run_dfo(&net, net.root(), &cfg),
            run_cff_basic(&net, net.root(), &cfg),
            run_improved(&net, net.root(), &cfg),
        ] {
            // Time-Slot Condition 2 guarantees delivery (every receiver has
            // at least one clean slot); stray collision events at duplicated
            // slots are legal and harmless.
            assert!(
                out.completed(),
                "delivery {}/{}",
                out.delivered,
                out.targets
            );
            assert!(
                out.rounds <= out.bound + 2,
                "rounds {} bound {}",
                out.rounds,
                out.bound
            );
        }
    }

    #[test]
    fn improved_beats_dfo_on_rounds_and_awake() {
        let net = chain_net(40);
        let cfg = RunConfig::default();
        let dfo = run_dfo(&net, net.root(), &cfg);
        let cff2 = run_improved(&net, net.root(), &cfg);
        assert!(
            cff2.rounds < dfo.rounds,
            "cff2 {} !< dfo {}",
            cff2.rounds,
            dfo.rounds
        );
        assert!(
            cff2.max_awake() < dfo.max_awake(),
            "cff2 awake {} !< dfo awake {}",
            cff2.max_awake(),
            dfo.max_awake()
        );
    }

    #[test]
    fn failure_stalls_dfo_but_not_improved() {
        // A topology with genuine redundancy: two parallel gateway/head
        // branches under the root, and node 5 in range of both heads.
        //   0 (head) — members 1, 2 → promoted to gateways for heads 3, 4;
        //   5 = member of head 3 but also hears head 4; 6 = member of 4.
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap(); // 0
        net.move_in(&[NodeId(0)]).unwrap(); // 1 member
        net.move_in(&[NodeId(0)]).unwrap(); // 2 member
        net.move_in(&[NodeId(1)]).unwrap(); // 3 head (1 → gateway)
        net.move_in(&[NodeId(2)]).unwrap(); // 4 head (2 → gateway)
        net.move_in(&[NodeId(3), NodeId(4)]).unwrap(); // 5 member of 3, hears 4
        net.move_in(&[NodeId(4)]).unwrap(); // 6 member of 4
        let victim = NodeId(3);
        assert!(net.status(victim).in_backbone());

        let mut cfg = RunConfig::default();
        cfg.failures.kill_node(victim, 1);

        let dfo = run_dfo(&net, net.root(), &cfg);
        assert!(!dfo.completed(), "DFO must stall on a dead token holder");

        let cff2 = run_improved(&net, net.root(), &cfg);
        // Flooding routes around the dead head: everyone else receives.
        assert_eq!(
            cff2.delivered,
            cff2.targets - 1,
            "{}/{}",
            cff2.delivered,
            cff2.targets
        );
        assert!(cff2.delivered > dfo.delivered);
    }

    #[test]
    fn multicast_reaches_group_and_spares_others() {
        let mut mc = McNet::with_defaults();
        mc.move_in(&[], &[]).unwrap();
        for i in 1..25u32 {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            let groups: &[GroupId] = if i % 5 == 0 { &[1] } else { &[] };
            mc.move_in(&nbrs, groups).unwrap();
        }
        let cfg = RunConfig::default();
        let root = mc.net().root();
        let out = run_multicast(&mc, root, 1, &cfg);
        assert!(out.targets > 0);
        assert!(
            out.completed(),
            "multicast delivery {}/{}",
            out.delivered,
            out.targets
        );
        // An empty group costs nothing and completes instantly.
        let empty = run_multicast(&mc, root, 99, &cfg);
        assert_eq!(empty.targets, 0);
        assert_eq!(empty.delivery_ratio(), 1.0);
    }

    #[test]
    fn multichannel_improved_still_covers() {
        let net = chain_net(25);
        let cfg = RunConfig {
            channels: 2,
            ..Default::default()
        };
        let out = run_improved(&net, net.root(), &cfg);
        assert!(out.completed());
        let cfg1 = RunConfig::default();
        let base = run_improved(&net, net.root(), &cfg1);
        assert!(out.rounds <= base.rounds);
    }

    #[test]
    fn reliable_cff_beats_basic_under_loss() {
        let net = chain_net(30);
        let mut losses_help = 0;
        for seed in 0..5u64 {
            let cfg = RunConfig {
                loss: dsnet_radio::LossModel::from_probability(0.15, seed),
                max_retries: 3,
                ..Default::default()
            };
            let basic = run_cff_basic(&net, net.root(), &cfg);
            let reliable = run_cff_reliable(&net, net.root(), &cfg);
            assert!(
                reliable.delivered >= basic.delivered,
                "seed {seed}: reliable {} < basic {}",
                reliable.delivered,
                basic.delivered
            );
            if reliable.delivered > basic.delivered {
                losses_help += 1;
            }
        }
        assert!(losses_help > 0, "retries never helped across 5 seeds");
    }

    #[test]
    fn reliable_cff_lossless_matches_basic_delivery() {
        let net = chain_net(15);
        let cfg = RunConfig::default();
        let out = run_cff_reliable(&net, net.root(), &cfg);
        assert!(out.completed());
        assert_eq!(out.delivery_ratio(), 1.0);
        assert_eq!(out.delivery_ratio_alive(), 1.0);
    }

    #[test]
    fn alive_denominator_excludes_the_dead() {
        // Chain-with-shortcuts: killing one node leaves the rest reachable.
        let net = chain_net(12);
        let mut cfg = RunConfig::default();
        cfg.failures.kill_node(NodeId(5), 1);
        let out = run_cff_basic(&net, net.root(), &cfg);
        assert_eq!(out.targets, 12);
        assert_eq!(out.targets_alive, 11);
        assert!(!out.completed(), "the dead node cannot receive");
        assert_eq!(out.delivered_alive, 11, "survivors are all covered");
        assert!(out.delivery_ratio() < out.delivery_ratio_alive());
        assert_eq!(out.delivery_ratio_alive(), 1.0);
    }

    #[test]
    fn coverage_quantiles_are_ordered_and_complete() {
        let net = chain_net(20);
        let out = run_cff_basic(&net, net.root(), &RunConfig::default());
        let cov = out.coverage.expect("trace was on");
        let (t50, t90, t_full) = (cov.t50.unwrap(), cov.t90.unwrap(), cov.t_full.unwrap());
        assert!(t50 <= t90 && t90 <= t_full);
        assert!(t_full <= out.rounds);
        // Without a trace there is no coverage.
        let cfg = RunConfig {
            record_trace: false,
            ..Default::default()
        };
        assert!(run_cff_basic(&net, net.root(), &cfg).coverage.is_none());
    }

    #[test]
    fn incomplete_runs_have_no_t_full() {
        let net = chain_net(10);
        let mut cfg = RunConfig::default();
        cfg.failures.kill_node(NodeId(4), 1);
        let out = run_cff_basic(&net, net.root(), &cfg);
        assert!(!out.completed());
        assert!(out.coverage.unwrap().t_full.is_none());
    }

    #[test]
    fn member_source_works_everywhere() {
        let net = chain_net(18);
        let member = net
            .tree()
            .nodes()
            .find(|&u| net.status(u) == NodeStatus::PureMember);
        if let Some(m) = member {
            let cfg = RunConfig::default();
            assert!(run_dfo(&net, m, &cfg).completed());
            assert!(run_cff_basic(&net, m, &cfg).completed());
            assert!(run_improved(&net, m, &cfg).completed());
        }
    }
}
