//! Randomized neighbour discovery — the distributed primitive behind
//! `node-move-in`.
//!
//! Theorem 2 of the paper inherits from \[19\] that a joining node can
//! discover its neighbourhood in `O(d_new)` *expected* rounds on the
//! collision-prone single channel. This module implements the classic
//! windowed-ALOHA realisation of that primitive and runs it on the radio
//! simulator, so the reconfiguration experiments can measure the constant
//! behind the `O(·)`:
//!
//! 1. the newcomer transmits a HELLO in round 1 — every neighbour hears
//!    it (nobody else is transmitting);
//! 2. discovery proceeds in *phases* with doubling windows `1, 2, 4, …`
//!    rounds: every still-undiscovered neighbour picks a uniform slot in
//!    the window and transmits its identity; the newcomer listens;
//! 3. after each window the newcomer transmits a cumulative acknowledgment
//!    (one round); acknowledged neighbours go quiet;
//! 4. the session ends once two consecutive windows of size at least
//!    twice the provisioned degree bound discover nobody new.
//!
//! Once the window reaches ~`d_new`, each remaining neighbour is heard
//! with constant probability per phase, so *discovery* completes in
//! `O(d_new)` expected rounds — the paper's Theorem-2 ingredient, reported
//! as [`JoinOutcome::discovery_rounds`]. Deciding that discovery is over
//! is a separate problem: with no collision detection and no degree
//! knowledge a newcomer cannot distinguish "nobody left" from "everybody
//! collided", so termination uses a provisioned network-wide degree bound
//! (the kind of constant a deployed sensor ships with), costing an `O(D)`
//! tail on top of the `O(d_new)` discovery. The simulation reports both.

use dsnet_geom::rng::{derive_seed, rng_from_seed, Rng};
use dsnet_graph::{Graph, NodeId};
use dsnet_radio::{Action, Engine, EngineConfig, NodeCtx, NodeProgram};
use rand::Rng as _;
use std::collections::BTreeSet;

/// Packets of the discovery protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinMsg {
    /// Newcomer's initial probe.
    Hello,
    /// A neighbour announcing itself.
    Announce(NodeId),
    /// Newcomer's cumulative acknowledgment after a window.
    Ack(Vec<NodeId>),
}

/// Role/state of one participant.
#[allow(clippy::large_enum_variant)] // one program per node; size is irrelevant
enum Role {
    Newcomer {
        discovered: BTreeSet<NodeId>,
        /// Window length of the current phase.
        window: u64,
        /// Round the current window started (exclusive).
        window_start: u64,
        /// Discoveries within the current window.
        new_this_window: usize,
        /// Consecutive windows that discovered nobody new.
        empty_streak: u32,
        /// Round of the most recent new discovery.
        last_discovery: u64,
        /// Termination threshold: stop after two empty windows of at
        /// least this size.
        min_stop_window: u64,
        finished: bool,
    },
    Neighbor {
        /// Heard the HELLO, still announcing.
        active: bool,
        acked: bool,
        /// Chosen slot within the current window (1-based).
        slot: u64,
        window: u64,
        window_start: u64,
        rng: Rng,
    },
    Bystander,
}

/// Per-node program for one discovery session.
pub struct JoinProgram {
    id: NodeId,
    role: Role,
}

impl JoinProgram {
    /// `degree_hint`: a provisioned upper bound on the node degree in
    /// this deployment, used only to decide when to stop probing.
    pub fn newcomer(degree_hint: usize) -> Self {
        Self {
            id: NodeId(u32::MAX),
            role: Role::Newcomer {
                discovered: BTreeSet::new(),
                window: 1,
                window_start: 1,
                new_this_window: 0,
                empty_streak: 0,
                last_discovery: 0,
                min_stop_window: (2 * degree_hint as u64).max(8),
                finished: false,
            },
        }
    }

    /// Round of the newcomer's most recent discovery (0 if none).
    pub fn last_discovery_round(&self) -> u64 {
        match &self.role {
            Role::Newcomer { last_discovery, .. } => *last_discovery,
            _ => 0,
        }
    }

    /// A potential neighbour of the newcomer.
    pub fn neighbor(id: NodeId, seed: u64) -> Self {
        Self {
            id,
            role: Role::Neighbor {
                active: false,
                acked: false,
                slot: 1,
                window: 1,
                window_start: 1,
                rng: rng_from_seed(seed),
            },
        }
    }

    /// A node out of the session (sleeps throughout).
    pub fn bystander(id: NodeId) -> Self {
        Self {
            id,
            role: Role::Bystander,
        }
    }

    /// The newcomer's discovered set (None for other roles).
    pub fn discovered(&self) -> Option<&BTreeSet<NodeId>> {
        match &self.role {
            Role::Newcomer { discovered, .. } => Some(discovered),
            _ => None,
        }
    }

    /// Whether the newcomer has stopped probing.
    pub fn is_finished(&self) -> bool {
        matches!(&self.role, Role::Newcomer { finished: true, .. })
    }
}

impl NodeProgram for JoinProgram {
    type Msg = JoinMsg;

    fn act(&mut self, ctx: &NodeCtx) -> Action<JoinMsg> {
        let r = ctx.round;
        match &mut self.role {
            Role::Newcomer {
                discovered,
                window,
                window_start,
                new_this_window,
                empty_streak,
                last_discovery: _,
                min_stop_window,
                finished,
            } => {
                if *finished {
                    return Action::Sleep;
                }
                if r == 1 {
                    return Action::transmit(JoinMsg::Hello);
                }
                let window_end = *window_start + *window;
                if r <= window_end {
                    return Action::listen();
                }
                // Ack round: close the window, decide whether to continue.
                // A lone undiscovered neighbour always gets through (no one
                // else transmits), so two consecutive empty windows at size
                // ≥ 8 mean the neighbourhood is exhausted with high
                // probability.
                let ack = Action::transmit(JoinMsg::Ack(discovered.iter().copied().collect()));
                if *new_this_window == 0 {
                    *empty_streak += 1;
                } else {
                    *empty_streak = 0;
                }
                let stalled = *empty_streak >= 2 && *window >= *min_stop_window;
                *new_this_window = 0;
                *window_start = window_end + 1;
                *window *= 2;
                if stalled {
                    *finished = true;
                }
                ack
            }
            Role::Neighbor {
                active,
                acked,
                slot,
                window,
                window_start,
                rng,
            } => {
                if *acked {
                    return Action::Sleep;
                }
                if r == 1 {
                    return Action::listen(); // hear the HELLO
                }
                if !*active {
                    return Action::Sleep;
                }
                let window_end = *window_start + *window;
                if r <= window_end {
                    if r == *window_start + *slot {
                        return Action::transmit(JoinMsg::Announce(self.id));
                    }
                    return Action::Sleep;
                }
                // Ack round: listen for the newcomer's cumulative ack, then
                // re-draw a slot for the doubled window.
                let act = Action::listen();
                *window_start = window_end + 1;
                *window *= 2;
                *slot = rng.random_range(1..=*window);
                act
            }
            Role::Bystander => Action::Sleep,
        }
    }

    fn on_receive(&mut self, _ctx: &NodeCtx, from: NodeId, msg: &JoinMsg) {
        let _ = &_ctx;
        match (&mut self.role, msg) {
            (
                Role::Newcomer {
                    discovered,
                    new_this_window,
                    last_discovery,
                    ..
                },
                JoinMsg::Announce(id),
            ) => {
                debug_assert_eq!(from, *id);
                if discovered.insert(*id) {
                    *new_this_window += 1;
                    *last_discovery = _ctx.round;
                }
            }
            (
                Role::Neighbor {
                    active,
                    slot,
                    window,
                    rng,
                    ..
                },
                JoinMsg::Hello,
            ) => {
                *active = true;
                *slot = rng.random_range(1..=*window);
            }
            (Role::Neighbor { acked, .. }, JoinMsg::Ack(ids)) if ids.contains(&self.id) => {
                *acked = true;
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        match &self.role {
            Role::Newcomer { finished, .. } => *finished,
            Role::Neighbor { acked, active, .. } => *acked || !*active,
            Role::Bystander => true,
        }
    }
}

/// Result of one simulated discovery session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Rounds until the newcomer stopped probing (includes the O(D)
    /// termination tail).
    pub rounds: u64,
    /// Round at which the last neighbour was discovered — the paper's
    /// `O(d_new)` quantity (0 for isolated nodes).
    pub discovery_rounds: u64,
    /// Neighbours it discovered.
    pub discovered: Vec<NodeId>,
    /// True degree of the newcomer.
    pub degree: usize,
    /// Whether every neighbour was found.
    pub complete: bool,
}

/// Simulate the discovery a node with id `newcomer` (already present in
/// `graph` with its radio edges) would run on joining, provisioned with
/// `degree_hint` as its stop bound. Deterministic per `seed`.
pub fn simulate_join(
    graph: &Graph,
    newcomer: NodeId,
    degree_hint: usize,
    seed: u64,
) -> JoinOutcome {
    let degree = graph.degree(newcomer);
    let neighbors: BTreeSet<NodeId> = graph.neighbors(newcomer).iter().copied().collect();
    let mut engine = Engine::new(
        graph,
        EngineConfig {
            max_rounds: 64 + 32 * degree_hint.max(degree) as u64,
            ..Default::default()
        },
        |u| {
            if u == newcomer {
                JoinProgram::newcomer(degree_hint)
            } else if neighbors.contains(&u) {
                JoinProgram::neighbor(u, derive_seed(seed, u.0 as u64))
            } else {
                JoinProgram::bystander(u)
            }
        },
    );
    let out = engine.run();
    let programs = engine.into_programs();
    let newcomer_prog = programs[newcomer.index()].as_ref();
    let discovered: Vec<NodeId> = newcomer_prog
        .and_then(|p| p.discovered().map(|d| d.iter().copied().collect()))
        .unwrap_or_default();
    let discovery_rounds = newcomer_prog.map_or(0, |p| p.last_discovery_round());
    let complete = discovered.len() == degree;
    JoinOutcome {
        rounds: out.rounds,
        discovery_rounds,
        discovered,
        degree,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(leaves: usize) -> Graph {
        let mut g = Graph::with_nodes(leaves + 1);
        for i in 1..=leaves {
            g.add_edge(NodeId(0), NodeId(i as u32));
        }
        g
    }

    #[test]
    fn single_neighbor_is_found_quickly() {
        let g = star(1);
        let out = simulate_join(&g, NodeId(0), 4, 7);
        assert!(out.complete);
        assert_eq!(out.discovered, vec![NodeId(1)]);
        // Found in the very first window.
        assert_eq!(out.discovery_rounds, 2);
    }

    #[test]
    fn dense_neighborhood_discovery_is_linear_in_degree() {
        for &d in &[4usize, 8, 16, 32] {
            let g = star(d);
            let mut total_discovery = 0u64;
            let mut complete = 0;
            for seed in 0..10 {
                let out = simulate_join(&g, NodeId(0), d, seed);
                total_discovery += out.discovery_rounds;
                complete += usize::from(out.complete);
            }
            assert_eq!(complete, 10, "d={d}: only {complete}/10 complete");
            let avg = total_discovery as f64 / 10.0;
            // Discovery (not termination) is O(d_new): generous constant.
            assert!(avg <= 12.0 * d as f64 + 20.0, "d={d}: avg discovery {avg}");
        }
    }

    #[test]
    fn isolated_newcomer_terminates() {
        let g = Graph::with_nodes(1);
        let out = simulate_join(&g, NodeId(0), 4, 1);
        assert!(out.discovered.is_empty());
        assert_eq!(out.degree, 0);
        assert!(out.complete);
        assert_eq!(out.discovery_rounds, 0);
        assert!(out.rounds < 64);
    }

    #[test]
    fn bystanders_spend_no_energy() {
        let mut g = star(3);
        // A node out of range of the newcomer.
        let far = g.add_node();
        g.add_edge(far, NodeId(1));
        let neighbors: BTreeSet<NodeId> = g.neighbors(NodeId(0)).iter().copied().collect();
        let mut engine = Engine::new(&g, EngineConfig::default(), |u| {
            if u == NodeId(0) {
                JoinProgram::newcomer(4)
            } else if neighbors.contains(&u) {
                JoinProgram::neighbor(u, u.0 as u64)
            } else {
                JoinProgram::bystander(u)
            }
        });
        engine.run();
        assert_eq!(engine.meter(far).awake_rounds(), 0);
    }

    #[test]
    fn discovery_is_deterministic_per_seed() {
        let g = star(6);
        let a = simulate_join(&g, NodeId(0), 6, 42);
        let b = simulate_join(&g, NodeId(0), 6, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn underestimated_hint_still_bounded() {
        // A too-small hint may terminate early and miss neighbours, but the
        // session must still end and report honestly.
        let g = star(24);
        let out = simulate_join(&g, NodeId(0), 2, 3);
        assert!(out.rounds < 64 + 32 * 24);
        assert!(out.discovered.len() <= 24);
    }
}
