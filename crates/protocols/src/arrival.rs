//! End-to-end distributed `node-move-in`: discovery + attachment.
//!
//! Theorem 2 composes two things: the `O(d_new)` neighbour discovery
//! (realised in [`crate::join`]) and the structural attachment with slot
//! repair (realised in `dsnet-cluster`). This module runs them as one
//! *arrival session*:
//!
//! 1. the newcomer powers up inside the existing radio field and runs the
//!    windowed-ALOHA discovery against the real collision model;
//! 2. from the discovered neighbours' knowledge (statuses and degrees —
//!    knowledge (I) includes the neighbours' knowledge) it applies
//!    Definition 1 *locally* to choose its parent;
//! 3. the structure performs the same move-in; the session cross-checks
//!    that the newcomer's local choice and the structure's choice agree
//!    (they must whenever discovery was complete — an executable proof
//!    that Definition 1 is locally computable).
//!
//! The combined round account (measured discovery + accounted slot repair
//! and root propagation) is what E8/E11 report against Theorem 2.

use crate::join::{simulate_join, JoinOutcome};
use dsnet_cluster::{ClusterNet, MoveInError, MoveInReport, NodeStatus, ParentRule};
use dsnet_graph::NodeId;

/// Result of one full arrival session.
#[derive(Debug, Clone)]
pub struct ArrivalOutcome {
    /// The radio-level discovery session.
    pub discovery: JoinOutcome,
    /// The structural attachment (statuses, slot repair, costs).
    pub report: MoveInReport,
    /// Whether the newcomer's locally-computed parent equals the parent
    /// the structure chose. Guaranteed when `discovery.complete`.
    pub parent_choice_consistent: bool,
    /// Measured discovery rounds + accounted structural rounds.
    pub total_rounds: u64,
}

/// Apply Definition 1 locally over a discovered neighbour set.
fn local_parent_choice(
    net: &ClusterNet,
    discovered: &[NodeId],
    rule: ParentRule,
) -> Option<NodeId> {
    let attached: Vec<NodeId> = discovered
        .iter()
        .copied()
        .filter(|&v| net.tree().contains(v))
        .collect();
    let pick = |cands: &[NodeId]| -> Option<NodeId> {
        match rule {
            ParentRule::LowestId => cands.iter().copied().min(),
            ParentRule::HighestDegree => cands
                .iter()
                .copied()
                .max_by_key(|&u| (net.graph().degree(u), std::cmp::Reverse(u))),
        }
    };
    let by_status = |s: NodeStatus| -> Vec<NodeId> {
        attached
            .iter()
            .copied()
            .filter(|&v| net.status(v) == s)
            .collect()
    };
    let heads = by_status(NodeStatus::ClusterHead);
    if !heads.is_empty() {
        return pick(&heads);
    }
    let gateways = by_status(NodeStatus::Gateway);
    if !gateways.is_empty() {
        return pick(&gateways);
    }
    pick(&attached)
}

/// Run a full arrival session: a new sensor hears `neighbors`, discovers
/// them over the radio, chooses its parent locally and joins the
/// structure. `degree_hint` provisions the discovery stop bound;
/// `seed` drives the randomized backoff.
pub fn simulate_arrival(
    net: &mut ClusterNet,
    neighbors: &[NodeId],
    degree_hint: usize,
    seed: u64,
) -> Result<ArrivalOutcome, MoveInError> {
    // Radio phase on a scratch copy of G extended with the newcomer (the
    // real radios would simply be in the air; the structure is untouched
    // until attachment).
    let mut scratch = net.graph().clone();
    let scratch_id = scratch.add_node_with_neighbors(neighbors);
    let discovery = simulate_join(&scratch, scratch_id, degree_hint, seed);

    // The newcomer's own Definition-1 decision over what it heard.
    let local_choice = local_parent_choice(net, &discovery.discovered, net.parent_rule());

    // Structural phase (graph mutation + statuses + slots + costs).
    let report = net.move_in(neighbors)?;

    let parent_choice_consistent = local_choice == report.parent;
    let total_rounds = discovery.rounds + report.cost.slot_update + report.cost.propagation;
    Ok(ArrivalOutcome {
        discovery,
        report,
        parent_choice_consistent,
        total_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_geom::rng::derive_seed;

    fn grown(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 2 {
                nbrs.push(NodeId(i - 2));
            }
            net.move_in(&nbrs).unwrap();
        }
        net
    }

    #[test]
    fn complete_discovery_implies_consistent_parent_choice() {
        let mut net = grown(20);
        for (i, nbrs) in [
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(5), NodeId(6), NodeId(7)],
            vec![NodeId(19)],
        ]
        .into_iter()
        .enumerate()
        {
            let out =
                simulate_arrival(&mut net, &nbrs, nbrs.len(), derive_seed(7, i as u64)).unwrap();
            if out.discovery.complete {
                assert!(
                    out.parent_choice_consistent,
                    "local rule diverged from the structure: {:?} vs {:?}",
                    out.discovery.discovered, out.report.parent
                );
            }
            dsnet_cluster::invariants::check_core(&net).unwrap();
        }
    }

    #[test]
    fn total_rounds_are_theorem2_shaped() {
        let mut net = grown(30);
        let nbrs = vec![NodeId(10), NodeId(11), NodeId(12)];
        let out = simulate_arrival(&mut net, &nbrs, 3, 99).unwrap();
        // Discovery dominates; structural terms are 2h + small slot work.
        assert!(out.total_rounds >= out.discovery.rounds);
        assert!(out.total_rounds <= out.discovery.rounds + 2 * net.height() as u64 + 200);
    }

    #[test]
    fn highest_degree_rule_is_also_locally_computable() {
        let mut net = ClusterNet::new(ParentRule::HighestDegree, Default::default());
        net.move_in(&[]).unwrap();
        for i in 1..15u32 {
            let mut nbrs = vec![NodeId(i - 1)];
            if i >= 3 {
                nbrs.push(NodeId(i - 3));
            }
            net.move_in(&nbrs).unwrap();
        }
        let out = simulate_arrival(&mut net, &[NodeId(3), NodeId(6)], 2, 5).unwrap();
        if out.discovery.complete {
            assert!(out.parent_choice_consistent);
        }
    }
}
