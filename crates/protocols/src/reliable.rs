//! Bounded-retry reliable CFF: Algorithm 1 with per-hop NACK/retransmit.
//!
//! Plain CFF transmits each message exactly once per internal node, so a
//! single lost packet silences an entire subtree for the rest of the
//! broadcast. This variant repeats the flood schedule in *epochs* and
//! lets receivers complain:
//!
//! * Each epoch contains the usual per-depth TDM windows, but every
//!   depth-`i` window is followed by a same-length **feedback window**.
//!   A depth-`i+1` node that listened through the data window and heard
//!   nothing transmits a NACK in the feedback window, in the round (and
//!   channel) derived from its *expected* slot — which is exactly where
//!   its guaranteed-collision-free transmitter listens, so the complaint
//!   lands precisely at the node that can fix it.
//! * An internal node that has transmitted keeps listening in its own
//!   feedback slot (one round per epoch); a heard NACK schedules a
//!   retransmission in the next epoch, up to `max_retries` retries.
//! * Two needy siblings share the same feedback slot and would collide
//!   at their transmitter *deterministically* every epoch — in this
//!   radio model a collision is indistinguishable from silence, so naive
//!   NACKing livelocks. Each node therefore NACKs in its first needy
//!   epoch and afterwards only in epochs where a per-`(node, epoch)`
//!   hash bit allows it, breaking the symmetry without any randomness
//!   at run time.
//!
//! With `R = max_retries`, the schedule spans `offset + (1+R)·2⌈Δ'/k⌉·h`
//! rounds (see `analytic::cff_reliable_bound`); a lost packet at depth
//! `d` costs one epoch per affected hop to heal, so delivery degrades
//! gracefully — never below plain CFF in expectation, falling back to it
//! exactly when `max_retries = 0` loses every feedback window... which
//! still costs the idle feedback rounds: reliability is paid for in
//! schedule length, which is the honest trade-off.

use crate::knowledge::{NetKnowledge, Session};
use dsnet_graph::NodeId;
use dsnet_radio::{Action, NodeCtx, NodeProgram, Round};

/// SplitMix64 finalizer — deterministic per-(node, epoch) backoff bit.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Over-the-air packet of the reliable flood.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the paper's package fields
pub enum RcffMsg {
    /// Source-to-root climb (identical to plain CFF).
    Uplink { hop: u32 },
    /// The flood proper, tagged with its epoch.
    Flood { slot: u32, depth: u32, epoch: u32 },
    /// "I listened through your window and heard nothing."
    Nack { depth: u32, epoch: u32 },
}

/// Per-node state machine for the bounded-retry reliable flood.
#[derive(Debug, Clone)]
pub struct ReliableCffProgram {
    id: NodeId,
    depth: u32,
    flood_slot: Option<u32>,
    /// Window length: `⌈Δ'/k⌉`.
    delta: u64,
    channels: u8,
    expected_slot: Option<u32>,
    offset: u64,
    /// Data + feedback windows for every depth: `2·δ'·h` rounds.
    epoch_len: u64,
    /// `1 + max_retries` epochs in total.
    epochs: u64,
    /// Position on the source→root path (`0` = source). `None` off-path.
    uplink_pos: Option<u64>,
    /// Holds the broadcast message.
    pub received: bool,
    /// Round of first reception (0 for the source).
    pub received_round: Option<Round>,
    uplink_sent: bool,
    /// Should transmit in this epoch's data window.
    tx_due: bool,
    has_transmitted: bool,
    nack_heard: bool,
    /// Epoch in which this node first found itself needy (always NACKs
    /// there; later epochs are gated by the backoff bit).
    first_needy_epoch: Option<u64>,
    /// Last epoch whose boundary bookkeeping already ran.
    seen_epoch: Option<u64>,
    finished: bool,
    end_round: u64,
}

impl ReliableCffProgram {
    /// Build the reliable-flood program for node `u`.
    pub fn new(
        k: &NetKnowledge,
        session: &Session,
        u: NodeId,
        uplink_pos: Option<u64>,
        max_retries: u32,
    ) -> Self {
        let nk = k.of(u);
        let kk = session.channels as u64;
        let delta = (k.delta_flood.max(1) as u64).div_ceil(kk);
        let epoch_len = 2 * delta * k.height as u64;
        let epochs = 1 + max_retries as u64;
        let end_round = (session.offset + epochs * epoch_len).max(1);
        let is_source = u == session.source;
        let has = is_source || (nk.depth == 0 && session.offset == 0);
        Self {
            id: u,
            depth: nk.depth,
            flood_slot: nk.flood_slot,
            delta,
            channels: session.channels,
            expected_slot: nk.expected_flood_slot,
            offset: session.offset,
            epoch_len,
            epochs,
            uplink_pos,
            received: has,
            received_round: has.then_some(0),
            uplink_sent: false,
            tx_due: has && nk.flood_slot.is_some(),
            has_transmitted: false,
            nack_heard: false,
            first_needy_epoch: None,
            seen_epoch: None,
            finished: false,
            end_round,
        }
    }

    /// Round-within-window and channel for a slot under `k` channels.
    fn map_slot(&self, slot: u32) -> (u64, u8) {
        let k = self.channels as u64;
        ((slot as u64).div_ceil(k), ((slot as u64 - 1) % k) as u8)
    }

    /// The feedback slot a needy node complains in — its expected data
    /// slot, i.e. exactly where its guaranteed transmitter listens.
    fn nack_slot(&self) -> (u64, u8) {
        self.map_slot(self.expected_slot.unwrap_or(1))
    }

    /// Epoch-boundary bookkeeping: resolve last epoch's feedback.
    fn enter_epoch(&mut self, e: u64) {
        if self.seen_epoch == Some(e) {
            return;
        }
        self.seen_epoch = Some(e);
        if self.has_transmitted {
            self.tx_due = self.nack_heard;
            self.nack_heard = false;
        }
    }

    /// Whether a needy node may NACK in epoch `e` (symmetry breaking).
    fn may_nack(&mut self, e: u64) -> bool {
        match self.first_needy_epoch {
            None => {
                self.first_needy_epoch = Some(e);
                true
            }
            Some(first) if first == e => true,
            // Send with probability 3/4: enough asymmetry that colliding
            // siblings separate within a few epochs, cheap enough that a
            // lone frontier node rarely wastes a retry epoch.
            _ => mix(((self.id.0 as u64) << 32) ^ e) & 3 != 3,
        }
    }
}

impl NodeProgram for ReliableCffProgram {
    type Msg = RcffMsg;

    fn act(&mut self, ctx: &NodeCtx) -> Action<RcffMsg> {
        let r = ctx.round;
        if r >= self.end_round {
            self.finished = true;
        }
        // Uplink phase: rounds 1..=offset, identical to plain CFF.
        if let Some(pos) = self.uplink_pos {
            if r <= self.offset {
                if r == pos + 1 && self.received && !self.uplink_sent {
                    self.uplink_sent = true;
                    return Action::transmit(RcffMsg::Uplink { hop: pos as u32 });
                }
                if r <= pos && !self.received {
                    return Action::listen();
                }
                return Action::Sleep;
            }
        } else if r <= self.offset {
            return Action::Sleep;
        }
        if self.epoch_len == 0 {
            return Action::Sleep;
        }
        // Position within the epoch grid.
        let t = r - self.offset - 1;
        let e = t / self.epoch_len;
        if e >= self.epochs {
            return Action::Sleep;
        }
        self.enter_epoch(e);
        let w = t % self.epoch_len;
        let win = w / self.delta; // 2i = data window of depth i, 2i+1 = its feedback
        let pos = w % self.delta + 1; // 1-based round within the half-window
        let win_depth = (win / 2) as u32;
        let is_data = win.is_multiple_of(2);

        if self.received {
            let Some(slot) = self.flood_slot else {
                return Action::Sleep; // leaf: reception was its whole job
            };
            let (my_round, my_ch) = self.map_slot(slot);
            if win_depth == self.depth && pos == my_round {
                if is_data && self.tx_due {
                    self.tx_due = false;
                    self.has_transmitted = true;
                    self.nack_heard = false;
                    return Action::Transmit {
                        channel: my_ch,
                        msg: RcffMsg::Flood {
                            slot,
                            depth: self.depth,
                            epoch: e as u32,
                        },
                    };
                }
                if !is_data && self.has_transmitted {
                    // One round per epoch spent waiting for complaints.
                    return Action::Listen { channel: my_ch };
                }
            }
            return Action::Sleep;
        }
        // Needy: listen through the parent depth's data window, complain
        // in its feedback window.
        if self.depth == 0 {
            return Action::Sleep; // root without a message: nothing to do
        }
        if win_depth != self.depth - 1 {
            return Action::Sleep;
        }
        if is_data {
            if self.channels == 1 {
                return Action::listen();
            }
            match self.expected_slot {
                Some(s) => {
                    let (dr, ch) = self.map_slot(s);
                    if pos == dr {
                        return Action::Listen { channel: ch };
                    }
                    return Action::Sleep;
                }
                None => return Action::Listen { channel: 0 },
            }
        }
        let (nr, nch) = self.nack_slot();
        if pos == nr && self.may_nack(e) {
            return Action::Transmit {
                channel: nch,
                msg: RcffMsg::Nack {
                    depth: self.depth,
                    epoch: e as u32,
                },
            };
        }
        Action::Sleep
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, msg: &RcffMsg) {
        match msg {
            RcffMsg::Uplink { .. } | RcffMsg::Flood { .. } => {
                if !self.received {
                    self.received = true;
                    self.received_round = Some(ctx.round);
                    self.tx_due = self.flood_slot.is_some();
                }
            }
            RcffMsg::Nack { .. } => {
                if self.received && self.has_transmitted {
                    self.nack_heard = true;
                }
            }
        }
    }

    fn done(&self) -> bool {
        if self.finished {
            return true;
        }
        if !self.received {
            return false;
        }
        match self.flood_slot {
            None => true,
            Some(_) => self.has_transmitted && !self.tx_due && !self.nack_heard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use dsnet_cluster::ClusterNet;
    use dsnet_radio::{Engine, EngineConfig, FailurePlan, LossModel, StopReason};

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    fn run(
        net: &ClusterNet,
        source: NodeId,
        retries: u32,
        loss: LossModel,
        failures: FailurePlan,
    ) -> (u64, StopReason, Vec<Option<ReliableCffProgram>>) {
        let k = build_knowledge(net);
        let session = Session::new(&k, source, 1);
        let path = net.tree().path_to_root(source);
        let mut pos = vec![None; net.graph().capacity()];
        for (j, &u) in path.iter().enumerate() {
            pos[u.index()] = Some(j as u64);
        }
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: crate::analytic::cff_reliable_bound(&k, session.offset, 1, retries) + 4,
                record_trace: true,
                ..Default::default()
            },
            |u| ReliableCffProgram::new(&k, &session, u, pos[u.index()], retries),
        );
        engine.set_loss(loss);
        engine.set_failures(failures);
        let out = engine.run();
        (out.rounds, out.stop, engine.into_programs())
    }

    fn delivered(net: &ClusterNet, programs: &[Option<ReliableCffProgram>]) -> usize {
        net.tree()
            .nodes()
            .filter(|&u| programs[u.index()].as_ref().is_some_and(|p| p.received))
            .count()
    }

    #[test]
    fn lossless_run_matches_plain_cff_behaviour() {
        let net = chain_net(12);
        let (rounds, stop, programs) =
            run(&net, net.root(), 2, LossModel::none(), FailurePlan::new());
        assert_eq!(stop, StopReason::AllDone);
        assert_eq!(delivered(&net, &programs), 12);
        // One epoch suffices without loss; the run must not pay for the
        // retry epochs it never needed.
        let k = build_knowledge(&net);
        assert!(rounds <= crate::analytic::cff_reliable_bound(&k, 0, 1, 0) + 1);
    }

    #[test]
    fn retries_recover_what_loss_destroyed() {
        // Heavy but not total loss: plain CFF (0 retries) must miss nodes
        // on a long chain; retries must strictly improve coverage.
        let net = chain_net(20);
        let loss = LossModel::from_probability(0.30, 77);
        let (_r0, _s0, p0) = run(&net, net.root(), 0, loss, FailurePlan::new());
        // A broken hop costs two epochs to heal (NACK epoch + retransmit
        // epoch), and both the NACK and the retransmission face the same
        // 0.30 loss — recovery at this rate needs a real retry budget.
        let (_r8, _s8, p8) = run(&net, net.root(), 8, loss, FailurePlan::new());
        let d0 = delivered(&net, &p0);
        let d8 = delivered(&net, &p8);
        assert!(d0 < 20, "0.30 loss on 19 hops should drop someone: {d0}");
        assert!(d8 > d0, "retries must help: {d8} !> {d0}");
    }

    #[test]
    fn full_recovery_with_enough_retries_under_mild_loss() {
        let net = chain_net(10);
        let loss = LossModel::from_probability(0.15, 5);
        let (_r, stop, programs) = run(&net, net.root(), 6, loss, FailurePlan::new());
        assert_eq!(delivered(&net, &programs), 10, "stop={stop:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let net = chain_net(15);
        let loss = LossModel::from_probability(0.25, 123);
        let (r1, _s1, p1) = run(&net, net.root(), 3, loss, FailurePlan::new());
        let (r2, _s2, p2) = run(&net, net.root(), 3, loss, FailurePlan::new());
        assert_eq!(r1, r2);
        let rounds = |ps: &[Option<ReliableCffProgram>]| {
            ps.iter()
                .map(|p| p.as_ref().and_then(|p| p.received_round))
                .collect::<Vec<_>>()
        };
        assert_eq!(rounds(&p1), rounds(&p2));
    }

    #[test]
    fn dead_subtree_does_not_stall_termination() {
        let net = chain_net(8);
        let mut failures = FailurePlan::new();
        failures.kill_node(NodeId(4), 1); // cuts the chain
        let (rounds, stop, programs) = run(&net, net.root(), 2, LossModel::none(), failures);
        // The schedule elapses (all programs flip `finished`) instead of
        // spinning to the engine's hard round limit.
        assert_ne!(stop, StopReason::RoundLimit);
        let d = delivered(&net, &programs);
        assert!((4..8).contains(&d), "{d}");
        let k = build_knowledge(&net);
        assert!(rounds <= crate::analytic::cff_reliable_bound(&k, 0, 1, 2) + 4);
    }

    #[test]
    fn non_root_source_climbs_first() {
        let net = chain_net(9);
        let deep = net
            .tree()
            .nodes()
            .max_by_key(|&u| net.tree().depth(u))
            .unwrap();
        let (_rounds, stop, programs) = run(&net, deep, 1, LossModel::none(), FailurePlan::new());
        assert_eq!(stop, StopReason::AllDone);
        assert_eq!(delivered(&net, &programs), 9);
    }

    #[test]
    fn multichannel_reliable_covers() {
        let net = chain_net(14);
        let k = build_knowledge(&net);
        let session = Session::new(&k, net.root(), 2);
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                channels: 2,
                max_rounds: crate::analytic::cff_reliable_bound(&k, 0, 2, 2) + 4,
                record_trace: true,
            },
            |u| ReliableCffProgram::new(&k, &session, u, (u == net.root()).then_some(0), 2),
        );
        let out = engine.run();
        assert_eq!(out.stop, StopReason::AllDone);
        let programs = engine.into_programs();
        assert_eq!(delivered(&net, &programs), 14);
    }

    #[test]
    fn singleton_terminates() {
        let net = chain_net(1);
        let (rounds, _stop, programs) =
            run(&net, net.root(), 3, LossModel::none(), FailurePlan::new());
        assert_eq!(delivered(&net, &programs), 1);
        assert!(rounds <= 1);
    }
}
