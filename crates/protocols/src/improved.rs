//! Algorithm 2: the improved collision-free flooding broadcast — the
//! paper's headline protocol (Theorem 1).
//!
//! Two phases after an optional source→root climb of `offset` rounds:
//!
//! * **Phase 1 — backbone flood.** Only backbone nodes participate. Each
//!   backbone depth `i` owns a window of `δ` rounds; BT-internal nodes
//!   transmit at their *b-time-slot* inside their depth's window, and
//!   backbone nodes listen (only) during the window of the depth above
//!   them. After `δ·h_BT` rounds every backbone node holds the message.
//! * **Phase 2 — leaf delivery.** Every internal node of CNet(G)
//!   transmits once at its *l-time-slot* inside a single shared window of
//!   `Δ` rounds; pure members listen in that window until they receive.
//!
//! Totals (Theorem 1): `δ·h + Δ` rounds, each node awake `O(δ + Δ)`
//! rounds; with `k` channels every window shrinks by a factor `k` — slot
//! `s` maps to round `⌈s/k⌉` on channel `(s−1) mod k`, and a receiver
//! tunes to its guaranteed-unique transmitter's (round, channel), which it
//! can compute because knowledge (I) includes the neighbours' slots.
//!
//! The same state machine runs **multicast** (Section 3.4): participation
//! flags derived from MCNet's group- and relay-lists decide who listens
//! (`rx`) and who forwards (`tx`); everyone else sleeps through the whole
//! session.

use crate::knowledge::{NetKnowledge, Session};
use dsnet_graph::NodeId;
use dsnet_radio::{Action, Channel, NodeCtx, NodeProgram, Round};

/// Over-the-air packet for Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the paper's package fields
pub enum Cff2Msg {
    /// Source-to-root climb.
    Uplink { hop: u32 },
    /// Phase-1 backbone flood (paper ships `(m, h)` here; our receivers
    /// know `h` from knowledge II already).
    Backbone { slot: u32, depth: u32 },
    /// Phase-2 leaf delivery.
    Leaf { slot: u32 },
}

/// Who takes part in a session (all-true for a broadcast; derived from
/// group-/relay-lists for a multicast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Participation {
    /// Needs to receive the message.
    pub rx: bool,
    /// Must forward the message (phase 1 and/or phase 2 as applicable).
    pub tx: bool,
}

impl Participation {
    /// Full participation (broadcast).
    pub const FULL: Participation = Participation { rx: true, tx: true };
    /// No participation (node sleeps through the session).
    pub const NONE: Participation = Participation {
        rx: false,
        tx: false,
    };
}

/// Shared schedule constants of one Algorithm-2 session.
#[derive(Debug, Clone, Copy)]
pub struct Cff2Schedule {
    /// Rounds consumed by the source→root climb.
    pub offset: u64,
    /// Phase-1 window length `⌈δ/k⌉`.
    pub wb: u64,
    /// Phase-2 window length `⌈Δ/k⌉`.
    pub wl: u64,
    /// First round of phase 2 (exclusive): phase 2 occupies
    /// `p2_start+1 ..= p2_start+wl`.
    pub p2_start: u64,
    /// Last scheduled round.
    pub end_round: u64,
    /// Radio channels `k`.
    pub channels: u8,
}

impl Cff2Schedule {
    /// Derive the schedule constants from knowledge + session.
    pub fn new(k: &NetKnowledge, session: &Session) -> Self {
        let kk = session.channels as u64;
        let wb = (k.delta_b as u64).div_ceil(kk);
        let wl = (k.delta_l as u64).div_ceil(kk);
        let p2_start = session.offset + wb * k.bt_height as u64;
        let end_round = (p2_start + wl).max(session.offset + 1);
        Self {
            offset: session.offset,
            wb,
            wl,
            p2_start,
            end_round,
            channels: session.channels,
        }
    }

    /// Round-within-window and channel for a TDM slot under `k` channels.
    fn map_slot(&self, slot: u32) -> (u64, Channel) {
        let k = self.channels as u64;
        let round = (slot as u64).div_ceil(k);
        let channel = ((slot as u64 - 1) % k) as Channel;
        (round, channel)
    }

    /// Absolute transmit round + channel for a phase-1 slot at BT depth `i`.
    fn p1_tx(&self, depth: u32, slot: u32) -> (u64, Channel) {
        let (r, c) = self.map_slot(slot);
        (self.offset + depth as u64 * self.wb + r, c)
    }

    /// Absolute transmit round + channel for a phase-2 slot.
    fn p2_tx(&self, slot: u32) -> (u64, Channel) {
        let (r, c) = self.map_slot(slot);
        (self.p2_start + r, c)
    }
}

/// Per-node state machine for Algorithm 2 (broadcast and multicast).
#[derive(Debug, Clone)]
pub struct Cff2Program {
    sched: Cff2Schedule,
    depth: u32,
    in_backbone: bool,
    bt_internal: bool,
    cnet_internal: bool,
    b_slot: Option<u32>,
    l_slot: Option<u32>,
    expected_b: Option<u32>,
    expected_l: Option<u32>,
    part: Participation,
    uplink_pos: Option<u64>,
    /// Holds the message.
    pub received: bool,
    /// Round of first reception (0 for the source).
    pub received_round: Option<Round>,
    p1_sent: bool,
    p2_sent: bool,
    uplink_sent: bool,
    finished: bool,
}

impl Cff2Program {
    /// Build the Algorithm-2 program for node `u`.
    pub fn new(
        k: &NetKnowledge,
        session: &Session,
        sched: Cff2Schedule,
        u: NodeId,
        uplink_pos: Option<u64>,
        part: Participation,
    ) -> Self {
        let nk = k.of(u);
        let has_it = u == session.source || (nk.depth == 0 && session.offset == 0);
        Self {
            sched,
            depth: nk.depth,
            in_backbone: nk.status.in_backbone(),
            bt_internal: nk.bt_internal,
            cnet_internal: nk.cnet_internal,
            b_slot: nk.b_slot,
            l_slot: nk.l_slot,
            expected_b: nk.expected_b_slot,
            expected_l: nk.expected_l_slot,
            part,
            uplink_pos,
            received: has_it,
            received_round: has_it.then_some(0),
            p1_sent: false,
            p2_sent: false,
            uplink_sent: false,
            finished: false,
        }
    }

    /// Whether this node still owes a transmission.
    fn tx_pending(&self) -> bool {
        self.part.tx
            && ((self.bt_internal && !self.p1_sent) || (self.cnet_internal && !self.p2_sent))
    }

    /// Listening behaviour inside a window: tune to the expected slot when
    /// k > 1, otherwise listen through the window on channel 0.
    fn window_listen(&self, r: u64, win_start: u64, expected: Option<u32>) -> Action<Cff2Msg> {
        if self.sched.channels == 1 {
            return Action::listen();
        }
        match expected {
            Some(s) => {
                let (dr, ch) = self.sched.map_slot(s);
                if r == win_start + dr {
                    Action::Listen { channel: ch }
                } else {
                    Action::Sleep
                }
            }
            // No guaranteed slot known (only possible in paper-faithful
            // setups): fall back to camping on channel 0.
            None => Action::Listen { channel: 0 },
        }
    }
}

impl NodeProgram for Cff2Program {
    type Msg = Cff2Msg;

    fn act(&mut self, ctx: &NodeCtx) -> Action<Cff2Msg> {
        let r = ctx.round;
        if r >= self.sched.end_round {
            self.finished = true;
        }
        if self.part == Participation::NONE && self.uplink_pos.is_none() {
            return Action::Sleep;
        }

        // Source→root climb.
        if r <= self.sched.offset {
            if let Some(pos) = self.uplink_pos {
                if r == pos + 1 && self.received && !self.uplink_sent {
                    self.uplink_sent = true;
                    return Action::transmit(Cff2Msg::Uplink { hop: pos as u32 });
                }
                if r <= pos && !self.received {
                    return Action::listen();
                }
            }
            return Action::Sleep;
        }

        // Phase 1: backbone flood, windows indexed by BT depth.
        if r <= self.sched.p2_start {
            if !self.in_backbone {
                return Action::Sleep;
            }
            // Transmit inside own window once the message is held.
            if self.part.tx && self.bt_internal && !self.p1_sent && self.received {
                let slot = self.b_slot.expect("BT-internal node carries a b-slot");
                let (tx, ch) = self.sched.p1_tx(self.depth, slot);
                if r == tx {
                    self.p1_sent = true;
                    return Action::Transmit {
                        channel: ch,
                        msg: Cff2Msg::Backbone {
                            slot,
                            depth: self.depth,
                        },
                    };
                }
            }
            // Listen during the depth-above window until received.
            if (self.part.rx || self.part.tx) && !self.received && self.depth >= 1 {
                let win_start = self.sched.offset + (self.depth as u64 - 1) * self.sched.wb;
                let win_end = win_start + self.sched.wb;
                if r > win_start && r <= win_end {
                    return self.window_listen(r, win_start, self.expected_b);
                }
            }
            return Action::Sleep;
        }

        // Phase 2: leaf delivery.
        if self.part.tx && self.cnet_internal && !self.p2_sent && self.received {
            let slot = self.l_slot.expect("internal node carries an l-slot");
            let (tx, ch) = self.sched.p2_tx(slot);
            if r == tx {
                self.p2_sent = true;
                return Action::Transmit {
                    channel: ch,
                    msg: Cff2Msg::Leaf { slot },
                };
            }
        }
        if self.part.rx && !self.received && !self.in_backbone {
            let win_start = self.sched.p2_start;
            if r > win_start && r <= win_start + self.sched.wl {
                return self.window_listen(r, win_start, self.expected_l);
            }
        }
        Action::Sleep
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, _msg: &Cff2Msg) {
        if !self.received {
            self.received = true;
            self.received_round = Some(ctx.round);
        }
    }

    fn done(&self) -> bool {
        if self.finished {
            return true;
        }
        let rx_ok = !self.part.rx || self.received;
        let tx_ok = !self.tx_pending();
        // Non-root path nodes owe the uplink relay before they are done.
        let uplink_ok = match self.uplink_pos {
            Some(pos) if pos < self.sched.offset => self.uplink_sent,
            _ => true,
        };
        rx_ok && tx_ok && uplink_ok
    }

    /// The TDM schedule makes every awake round computable in advance,
    /// which is what lets the engine skip the long sleeps between a
    /// node's windows: per Theorem 1(2) a node is awake `O(δ·k + Δ)`
    /// rounds, so a 100k-node run costs awake-work, not `n × rounds`.
    /// Every skipped round provably falls through `act()` to
    /// `Action::Sleep` without touching state: transmissions, window
    /// listens and the end-of-schedule `finished` flip are all
    /// enumerated below, and reception (the only other state change)
    /// can only happen in a listen round, after which the engine
    /// re-consults this hint.
    fn next_wake(&self, now: Round) -> Option<Round> {
        // `done()` is monotone for this program — nothing it depends on
        // can un-happen — so a done node never needs to act again.
        if self.done() {
            return Some(Round::MAX);
        }
        let s = &self.sched;
        // Acting at end_round flips `finished`; never sleep past it.
        let mut w = s.end_round;
        let now_ = now;
        let cand = |w: &mut Round, r: Round| {
            if r > now_ && r < *w {
                *w = r;
            }
        };

        // Source→root climb: listen every round until our path position,
        // relay one round after it.
        if let Some(pos) = self.uplink_pos {
            if !self.received && now < pos.min(s.offset) {
                cand(&mut w, now + 1);
            }
            if self.received && !self.uplink_sent && pos < s.offset {
                cand(&mut w, pos + 1);
            }
        }

        // Phase 1: own b-slot once the message is held; the depth-above
        // window (or just the expected slot's round, k > 1) until then.
        if self.in_backbone {
            if self.part.tx && self.bt_internal && !self.p1_sent && self.received {
                if let Some(slot) = self.b_slot {
                    cand(&mut w, s.p1_tx(self.depth, slot).0);
                }
            }
            if (self.part.rx || self.part.tx) && !self.received && self.depth >= 1 {
                let win_start = s.offset + (self.depth as u64 - 1) * s.wb;
                match self.expected_b.filter(|_| s.channels > 1) {
                    Some(slot) => cand(&mut w, win_start + s.map_slot(slot).0),
                    None => {
                        let r = (now + 1).max(win_start + 1);
                        if r <= win_start + s.wb {
                            cand(&mut w, r);
                        }
                    }
                }
            }
        }

        // Phase 2: own l-slot / the shared leaf window.
        if self.part.tx && self.cnet_internal && !self.p2_sent && self.received {
            if let Some(slot) = self.l_slot {
                cand(&mut w, s.p2_tx(slot).0);
            }
        }
        if self.part.rx && !self.received && !self.in_backbone {
            match self.expected_l.filter(|_| s.channels > 1) {
                Some(slot) => cand(&mut w, s.p2_start + s.map_slot(slot).0),
                None => {
                    let r = (now + 1).max(s.p2_start + 1);
                    if r <= s.p2_start + s.wl {
                        cand(&mut w, r);
                    }
                }
            }
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use dsnet_cluster::ClusterNet;
    use dsnet_radio::{Engine, EngineConfig, StopReason};

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    fn run(
        net: &ClusterNet,
        source: NodeId,
        channels: u8,
    ) -> (u64, usize, Vec<Option<Cff2Program>>) {
        let k = build_knowledge(net);
        let session = Session::new(&k, source, channels);
        let sched = Cff2Schedule::new(&k, &session);
        let path = net.tree().path_to_root(source);
        let mut pos = vec![None; net.graph().capacity()];
        for (j, &u) in path.iter().enumerate() {
            pos[u.index()] = Some(j as u64);
        }
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                channels,
                max_rounds: sched.end_round + 4,
                record_trace: true,
            },
            |u| Cff2Program::new(&k, &session, sched, u, pos[u.index()], Participation::FULL),
        );
        let out = engine.run();
        assert_eq!(out.stop, StopReason::AllDone, "schedule ran past its end");
        (
            out.rounds,
            engine.trace().collision_count(),
            engine.into_programs(),
        )
    }

    #[test]
    fn broadcast_covers_chain_within_theorem_bound() {
        let net = chain_net(14);
        let k = build_knowledge(&net);
        let (rounds, collisions, programs) = run(&net, net.root(), 1);
        assert_eq!(collisions, 0, "strict mode is collision-free");
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received, "{u}");
        }
        // Theorem 1(1): δ·h + Δ rounds (we use the tighter BT height).
        let bound = k.delta_b as u64 * k.bt_height as u64 + k.delta_l as u64;
        assert!(rounds <= bound, "rounds {rounds} > bound {bound}");
    }

    #[test]
    fn awake_rounds_respect_theorem_bound() {
        let net = chain_net(14);
        let k = build_knowledge(&net);
        let session = Session::new(&k, net.root(), 1);
        let sched = Cff2Schedule::new(&k, &session);
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: sched.end_round + 4,
                ..Default::default()
            },
            |u| {
                Cff2Program::new(
                    &k,
                    &session,
                    sched,
                    u,
                    (u == net.root()).then_some(0),
                    Participation::FULL,
                )
            },
        );
        engine.run();
        // Theorem 1(2): each node awake ≤ 2δ + Δ rounds.
        let bound = 2 * k.delta_b as u64 + k.delta_l as u64;
        for u in net.tree().nodes() {
            let awake = engine.meter(u).awake_rounds();
            assert!(awake <= bound.max(2), "{u}: awake {awake} > {bound}");
        }
    }

    #[test]
    fn deep_source_pays_uplink_then_floods() {
        let net = chain_net(11);
        let deep = net
            .tree()
            .nodes()
            .max_by_key(|&u| net.tree().depth(u))
            .unwrap();
        let (_rounds, collisions, programs) = run(&net, deep, 1);
        assert_eq!(collisions, 0);
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received, "{u}");
        }
    }

    #[test]
    fn multichannel_delivers_faster() {
        // Build a bushy network: one head with many members, then a second
        // cluster, so Δ > 1 and channels can actually help.
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for _ in 0..6 {
            net.move_in(&[NodeId(0)]).unwrap();
        }
        net.move_in(&[NodeId(1)]).unwrap(); // promotes 1, head 7
        for _ in 0..4 {
            net.move_in(&[NodeId(7)]).unwrap();
        }
        let (r1, c1, p1) = run(&net, net.root(), 1);
        let (r2, c2, p2) = run(&net, net.root(), 2);
        assert_eq!(c1, 0);
        assert_eq!(c2, 0);
        for u in net.tree().nodes() {
            assert!(p1[u.index()].as_ref().unwrap().received);
            assert!(p2[u.index()].as_ref().unwrap().received, "{u} (k=2)");
        }
        assert!(r2 <= r1, "k=2 ({r2}) should not be slower than k=1 ({r1})");
    }

    #[test]
    fn non_participants_sleep_entirely() {
        let net = chain_net(8);
        let k = build_knowledge(&net);
        let session = Session::new(&k, net.root(), 1);
        let sched = Cff2Schedule::new(&k, &session);
        let silent = net
            .tree()
            .nodes()
            .find(|&u| net.tree().is_leaf(u) && u != net.root())
            .unwrap();
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: sched.end_round + 4,
                ..Default::default()
            },
            |u| {
                let part = if u == silent {
                    Participation::NONE
                } else {
                    Participation::FULL
                };
                Cff2Program::new(&k, &session, sched, u, (u == net.root()).then_some(0), part)
            },
        );
        engine.run();
        assert_eq!(engine.meter(silent).awake_rounds(), 0);
    }

    #[test]
    fn star_delivers_in_delta_l() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for _ in 0..5 {
            net.move_in(&[NodeId(0)]).unwrap();
        }
        let k = build_knowledge(&net);
        let (rounds, collisions, programs) = run(&net, net.root(), 1);
        assert_eq!(collisions, 0);
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received);
        }
        assert!(rounds <= k.delta_l as u64);
    }
}
