//! Closed-form round predictions from the paper's lemmas and theorems,
//! used to cross-check the simulated executions and to print the
//! "theoretical" columns of the experiment tables.

use crate::knowledge::NetKnowledge;

/// Exact DFO completion rounds from a backbone source:
/// `2·(|BT| − 1)` token hops (plus 2 when the source is a pure member:
/// one hop up to its head, one final hop back). A single-node backbone
/// still spends one broadcast round.
pub fn dfo_rounds(backbone_size: usize, source_is_member: bool) -> u64 {
    let tour = 2 * (backbone_size.saturating_sub(1)) as u64;
    let tour = if tour == 0 { 1 } else { tour };
    tour + if source_is_member { 2 } else { 0 }
}

/// Lemma 1 bound for Algorithm 1 with `channels` radios:
/// `offset + ⌈Δ'/k⌉·(h + 1)`.
pub fn cff_basic_bound(k: &NetKnowledge, offset: u64, channels: u8) -> u64 {
    offset + (k.delta_flood.max(1) as u64).div_ceil(channels as u64) * (k.height as u64 + 1)
}

/// Schedule length of the bounded-retry reliable flood: `1 + max_retries`
/// epochs, each holding a data *and* a feedback window per tree depth:
/// `offset + (1 + R)·2·⌈Δ'/k⌉·h`, floored at the one round any run costs.
pub fn cff_reliable_bound(k: &NetKnowledge, offset: u64, channels: u8, max_retries: u32) -> u64 {
    let delta = (k.delta_flood.max(1) as u64).div_ceil(channels as u64);
    (offset + (1 + max_retries as u64) * 2 * delta * k.height as u64).max(1)
}

/// Lemma 1 awake bound for Algorithm 1: `2Δ'`.
pub fn cff_basic_awake_bound(k: &NetKnowledge) -> u64 {
    2 * k.delta_flood.max(1) as u64
}

/// Theorem 1(1)/(3) bound for Algorithm 2 with `channels` radios:
/// `offset + ⌈δ/k⌉·h_BT + ⌈Δ/k⌉`, floored at the one round any engine
/// run consumes.
pub fn improved_bound(k: &NetKnowledge, offset: u64, channels: u8) -> u64 {
    let kk = channels as u64;
    (offset
        + (k.delta_b as u64).div_ceil(kk) * k.bt_height as u64
        + (k.delta_l as u64).div_ceil(kk))
    .max(1)
}

/// Theorem 1(2)/(3) awake bound for Algorithm 2: `(2δ + Δ)/k`, floored at
/// 2 rounds (one listen + one transmit).
pub fn improved_awake_bound(k: &NetKnowledge, channels: u8) -> u64 {
    let kk = channels as u64;
    ((2 * k.delta_b as u64 + k.delta_l as u64).div_ceil(kk)).max(2)
}

/// Lemma 3 slot bounds given the measured degrees: `(δ_max, Δ_max)` =
/// `(d(d+1)/2 + 1, D(D+1)/2 + 1)`.
pub fn slot_bounds(d_backbone: u32, d_graph: u32) -> (u32, u32) {
    (
        d_backbone * (d_backbone + 1) / 2 + 1,
        d_graph * (d_graph + 1) / 2 + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use dsnet_cluster::ClusterNet;
    use dsnet_graph::NodeId;

    #[test]
    fn dfo_formula() {
        assert_eq!(dfo_rounds(1, false), 1);
        assert_eq!(dfo_rounds(5, false), 8);
        assert_eq!(dfo_rounds(5, true), 10);
    }

    #[test]
    fn slot_bound_formula() {
        assert_eq!(slot_bounds(0, 0), (1, 1));
        assert_eq!(slot_bounds(3, 7), (7, 29));
    }

    #[test]
    fn bounds_are_monotone_in_channels() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..20u32 {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        let k = build_knowledge(&net);
        let b1 = improved_bound(&k, 0, 1);
        let b2 = improved_bound(&k, 0, 2);
        let b4 = improved_bound(&k, 0, 4);
        assert!(b2 <= b1 && b4 <= b2);
        assert!(improved_awake_bound(&k, 2) <= improved_awake_bound(&k, 1));
    }

    #[test]
    fn cff_bound_includes_offset() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        let k = build_knowledge(&net);
        assert_eq!(cff_basic_bound(&k, 5, 1) - cff_basic_bound(&k, 0, 1), 5);
        assert!(cff_basic_bound(&k, 0, 2) <= cff_basic_bound(&k, 0, 1));
        assert!(cff_basic_awake_bound(&k) >= 2);
    }
}
