//! The depth-first-order (DFO) broadcast baseline of reference \[19\]
//! (Section 3.2 of the paper).
//!
//! The broadcast message rides a token along an Eulerian tour of the
//! backbone tree: the holder transmits the message addressed to the next
//! tree neighbour it has not served yet, and hands the token back to the
//! node it *first* received the message from once it has served everyone.
//! Exactly one node transmits per round, so no collision can ever occur —
//! but the tour needs `2(|BT| − 1)` rounds, a single node or link failure
//! freezes it, and since nobody can tell locally when the broadcast has
//! finished, every radio stays on for the whole tour. These three costs
//! are exactly what the paper's CFF protocols attack.

use crate::knowledge::NetKnowledge;
use dsnet_graph::NodeId;
use dsnet_radio::{Action, NodeCtx, NodeProgram, Round};

/// The over-the-air packet: the broadcast payload plus the id of the node
/// the token is addressed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfoMsg {
    /// The node that should pick up the token.
    pub token_target: NodeId,
}

/// Per-node state machine for the DFO broadcast.
#[derive(Debug, Clone)]
pub struct DfoProgram {
    id: NodeId,
    /// Backbone tree neighbours in visit order (children, then parent).
    /// For a pure-member source this is just its head.
    neighbors: Vec<NodeId>,
    is_source: bool,
    /// Has the broadcast payload.
    pub received: bool,
    /// Round of first reception (0 for the source).
    pub received_round: Option<Round>,
    /// Currently holds the token and must transmit next round.
    holding_token: bool,
    /// Next neighbour index to serve.
    next: usize,
    /// Who we first received the message from (token returns there last).
    first_from: Option<NodeId>,
    /// Source only: the Eulerian tour has completed.
    pub tour_finished: bool,
    /// Transmissions made so far (= tree degree at tour end).
    pub transmissions: u64,
}

impl DfoProgram {
    /// Build the program for node `u`. `source` is the broadcast origin.
    pub fn new(k: &NetKnowledge, u: NodeId, source: NodeId) -> Self {
        let nk = k.of(u);
        let is_source = u == source;
        let neighbors = if nk.status.in_backbone() {
            k.bt_neighbors_of(nk).to_vec()
        } else if is_source {
            // A pure-member source first hands the message to its head.
            vec![nk.parent.expect("member has a parent")]
        } else {
            Vec::new()
        };
        Self {
            id: u,
            neighbors,
            is_source,
            received: is_source,
            received_round: is_source.then_some(0),
            holding_token: is_source,
            next: 0,
            first_from: None,
            tour_finished: false,
            transmissions: 0,
        }
    }
}

impl NodeProgram for DfoProgram {
    type Msg = DfoMsg;

    fn act(&mut self, _ctx: &NodeCtx) -> Action<DfoMsg> {
        if self.holding_token {
            self.holding_token = false;
            // Serve the next neighbour we have not sent to, skipping the
            // return edge (first_from), which is used last.
            while self.next < self.neighbors.len()
                && Some(self.neighbors[self.next]) == self.first_from
            {
                self.next += 1;
            }
            if self.next < self.neighbors.len() {
                let target = self.neighbors[self.next];
                self.next += 1;
                self.transmissions += 1;
                return Action::transmit(DfoMsg {
                    token_target: target,
                });
            }
            if let Some(back) = self.first_from {
                self.transmissions += 1;
                return Action::transmit(DfoMsg { token_target: back });
            }
            // Source with nothing left to serve: the tour is complete. A
            // source that never transmitted (single-node backbone, e.g. one
            // head with only members) still broadcasts once so its cluster
            // hears the message; the self-addressed token goes nowhere.
            self.tour_finished = true;
            if self.transmissions == 0 {
                self.transmissions += 1;
                return Action::transmit(DfoMsg {
                    token_target: self.id,
                });
            }
        }
        // DFO keeps every radio on: nobody knows when the tour ends.
        Action::listen()
    }

    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: &DfoMsg) {
        if !self.received {
            self.received = true;
            self.received_round = Some(ctx.round);
        }
        if msg.token_target == self.id {
            if self.first_from.is_none() && !self.is_source {
                self.first_from = Some(from);
            }
            self.holding_token = true;
            // The source recognises the completed tour the moment the token
            // returns with nobody left to serve.
            if self.is_source && self.transmissions > 0 {
                let mut next = self.next;
                while next < self.neighbors.len() && Some(self.neighbors[next]) == self.first_from {
                    next += 1;
                }
                if next >= self.neighbors.len() && self.first_from.is_none() {
                    self.holding_token = false;
                    self.tour_finished = true;
                }
            }
        }
    }

    fn done(&self) -> bool {
        if self.is_source {
            self.tour_finished
        } else {
            self.received
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use dsnet_cluster::ClusterNet;
    use dsnet_radio::{Engine, EngineConfig, StopReason};

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    fn run_dfo_raw(net: &ClusterNet, source: NodeId) -> (u64, Vec<Option<DfoProgram>>) {
        let k = build_knowledge(net);
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: 10_000,
                record_trace: true,
                ..Default::default()
            },
            |u| DfoProgram::new(&k, u, source),
        );
        let out = engine.run();
        assert_eq!(out.stop, StopReason::AllDone);
        assert_eq!(engine.trace().collision_count(), 0, "DFO can never collide");
        (out.rounds, engine.into_programs())
    }

    #[test]
    fn root_source_tour_takes_exactly_two_bt_edges() {
        let net = chain_net(9);
        let bt = net.backbone_tree();
        let (rounds, programs) = run_dfo_raw(&net, net.root());
        assert_eq!(rounds as usize, 2 * (bt.len() - 1));
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received, "{u}");
        }
    }

    #[test]
    fn member_source_adds_two_rounds() {
        let net = chain_net(9);
        // Node 1 in the chain is the original member of head 0... after the
        // chain promotions it is a gateway; find an actual pure member.
        let member = net
            .tree()
            .nodes()
            .find(|&u| net.status(u) == dsnet_cluster::NodeStatus::PureMember);
        if let Some(m) = member {
            let bt = net.backbone_tree();
            let (rounds, programs) = run_dfo_raw(&net, m);
            assert_eq!(rounds as usize, 2 * (bt.len() - 1) + 2);
            for u in net.tree().nodes() {
                assert!(programs[u.index()].as_ref().unwrap().received);
            }
        }
    }

    #[test]
    fn every_backbone_node_transmits_its_degree_times() {
        let net = chain_net(7);
        let (_rounds, programs) = run_dfo_raw(&net, net.root());
        let bt = net.backbone_tree();
        for u in bt.nodes() {
            let deg = bt.child_count(u) + usize::from(bt.parent(u).is_some());
            assert_eq!(
                programs[u.index()].as_ref().unwrap().transmissions,
                deg as u64,
                "{u}"
            );
        }
    }

    #[test]
    fn star_network_single_round() {
        // Root head with members only: BT = {root}, the tour is empty, but
        // the source still broadcasts once so its cluster hears the message.
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        let (rounds, programs) = run_dfo_raw(&net, NodeId(0));
        assert_eq!(rounds, 1);
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received);
        }
    }
}
