//! Algorithm 1: collision-free flooding (CFF) over the whole CNet(G).
//!
//! The message floods depth-by-depth. Each tree depth owns a TDM window of
//! `Δ'` rounds; an internal node at depth `i` that holds the message
//! transmits once, at round `offset + i·Δ' + slot`, where `slot` is its
//! Algorithm-1 time slot (Time-Slot Condition 1 guarantees every depth-
//! `(i+1)` node a collision-free reception). A node listens only during
//! its parent depth's window — and only until it receives — then sleeps
//! until its own transmission round, which is where the `O(Δ')` awake
//! bound of Lemma 1 comes from.
//!
//! If the source is not the root, the message first climbs the tree: the
//! path node at distance `j` from the source transmits in round `j + 1`,
//! reaching the root after `offset = depth(source)` rounds (at most `h`,
//! as in the paper).
//!
//! With `k` channels (the paper's "Multi-Channels" remark), slots
//! `i·k+1 ..= i·k+k` share one round on channels `0..k`: windows shrink to
//! `⌈Δ'/k⌉` rounds, the broadcast completes in `⌈Δ'/k⌉·(h+1)` rounds and
//! receivers tune to their guaranteed-unique transmitter's
//! (round, channel), which knowledge (I) lets them compute.

use crate::knowledge::{NetKnowledge, Session};
use dsnet_graph::NodeId;
use dsnet_radio::{Action, NodeCtx, NodeProgram, Round};

/// Over-the-air packet. The paper's package `(m, t, Δ', i)`; the receiver
/// windows make the tags redundant for correctness but they are kept for
/// fidelity and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror the paper's package fields
pub enum CffMsg {
    /// Source-to-root climb.
    Uplink { hop: u32 },
    /// The flood proper.
    Flood { slot: u32, depth: u32 },
}

/// Per-node state machine for Algorithm 1.
#[derive(Debug, Clone)]
pub struct CffProgram {
    depth: u32,
    flood_slot: Option<u32>,
    /// Window length: `⌈Δ'/k⌉`.
    delta: u64,
    channels: u8,
    expected_slot: Option<u32>,
    offset: u64,
    /// Position on the source→root path (`0` = source). `None` off-path.
    uplink_pos: Option<u64>,
    /// Holds the broadcast message.
    pub received: bool,
    /// Round of first reception (0 for the source).
    pub received_round: Option<Round>,
    transmitted: bool,
    uplink_sent: bool,
    /// Flipped once the whole schedule has elapsed.
    finished: bool,
    /// Last scheduled round of the whole flood.
    end_round: u64,
}

impl CffProgram {
    /// Build the Algorithm-1 program for node `u`.
    pub fn new(k: &NetKnowledge, session: &Session, u: NodeId, uplink_pos: Option<u64>) -> Self {
        let nk = k.of(u);
        let kk = session.channels as u64;
        let delta = (k.delta_flood.max(1) as u64).div_ceil(kk);
        // Internal nodes live at depths 0..height-1; the deepest window is
        // height-1, ending at offset + height·⌈Δ'/k⌉.
        let end_round = session.offset + delta * k.height as u64;
        let is_source = u == session.source;
        Self {
            depth: nk.depth,
            flood_slot: nk.flood_slot,
            delta,
            channels: session.channels,
            expected_slot: nk.expected_flood_slot,
            offset: session.offset,
            uplink_pos,
            received: is_source || (nk.depth == 0 && session.offset == 0),
            received_round: (is_source || (nk.depth == 0 && session.offset == 0)).then_some(0),
            transmitted: false,
            uplink_sent: false,
            finished: false,
            end_round: end_round.max(1),
        }
    }

    /// First round of the window in which this node listens (exclusive
    /// lower bound: listening happens in rounds `win_start+1 ..= win_end`).
    fn listen_window(&self) -> Option<(u64, u64)> {
        if self.depth == 0 {
            return None;
        }
        let start = self.offset + (self.depth as u64 - 1) * self.delta;
        Some((start, start + self.delta))
    }

    /// Round-within-window and channel for a slot under `k` channels.
    fn map_slot(&self, slot: u32) -> (u64, u8) {
        let k = self.channels as u64;
        ((slot as u64).div_ceil(k), ((slot as u64 - 1) % k) as u8)
    }

    /// The (round, channel) this node transmits the flood (internal only).
    fn tx_round(&self) -> Option<(u64, u8)> {
        self.flood_slot.map(|s| {
            let (r, c) = self.map_slot(s);
            (self.offset + self.depth as u64 * self.delta + r, c)
        })
    }
}

impl NodeProgram for CffProgram {
    type Msg = CffMsg;

    fn act(&mut self, ctx: &NodeCtx) -> Action<CffMsg> {
        let r = ctx.round;
        if r >= self.end_round {
            self.finished = true;
        }
        // Uplink phase: rounds 1..=offset.
        if let Some(pos) = self.uplink_pos {
            if r <= self.offset {
                if r == pos + 1 && self.received && !self.uplink_sent {
                    self.uplink_sent = true;
                    return Action::transmit(CffMsg::Uplink { hop: pos as u32 });
                }
                if r <= pos && !self.received {
                    return Action::listen();
                }
                return Action::Sleep;
            }
        } else if r <= self.offset {
            // Off-path nodes sleep through the climb.
            return Action::Sleep;
        }
        // Flood phase.
        if self.received {
            if !self.transmitted {
                if let Some((tx, ch)) = self.tx_round() {
                    if r == tx {
                        self.transmitted = true;
                        return Action::Transmit {
                            channel: ch,
                            msg: CffMsg::Flood {
                                slot: self.flood_slot.unwrap(),
                                depth: self.depth,
                            },
                        };
                    }
                }
            }
            return Action::Sleep;
        }
        if let Some((start, end)) = self.listen_window() {
            if r > start && r <= end {
                if self.channels == 1 {
                    return Action::listen();
                }
                // Targeted listening: tune to the guaranteed-unique slot.
                match self.expected_slot {
                    Some(s) => {
                        let (dr, ch) = self.map_slot(s);
                        if r == start + dr {
                            return Action::Listen { channel: ch };
                        }
                        return Action::Sleep;
                    }
                    None => return Action::Listen { channel: 0 },
                }
            }
        }
        Action::Sleep
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, _msg: &CffMsg) {
        if !self.received {
            self.received = true;
            self.received_round = Some(ctx.round);
        }
    }

    fn done(&self) -> bool {
        if self.finished {
            return true;
        }
        self.received && (self.flood_slot.is_none() || self.transmitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use dsnet_cluster::ClusterNet;
    use dsnet_radio::{Engine, EngineConfig, StopReason};

    fn chain_net(n: u32) -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..n {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        net
    }

    fn run_cff(net: &ClusterNet, source: NodeId) -> (u64, usize, Vec<Option<CffProgram>>) {
        let k = build_knowledge(net);
        let session = Session::new(&k, source, 1);
        let path = net.tree().path_to_root(source);
        let mut pos = vec![None; net.graph().capacity()];
        for (j, &u) in path.iter().enumerate() {
            pos[u.index()] = Some(j as u64);
        }
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: 100_000,
                record_trace: true,
                ..Default::default()
            },
            |u| CffProgram::new(&k, &session, u, pos[u.index()]),
        );
        let out = engine.run();
        assert_eq!(out.stop, StopReason::AllDone);
        let collisions = engine.trace().collision_count();
        (out.rounds, collisions, engine.into_programs())
    }

    #[test]
    fn floods_whole_chain_from_root() {
        let net = chain_net(12);
        let k = build_knowledge(&net);
        let (rounds, collisions, programs) = run_cff(&net, net.root());
        assert_eq!(collisions, 0, "strict-mode CFF must be collision-free");
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received, "{u}");
        }
        // Lemma 1 bound: Δ'·(h+1) rounds.
        assert!(rounds <= (k.delta_flood.max(1) as u64) * (k.height as u64 + 1));
    }

    #[test]
    fn non_root_source_pays_uplink() {
        let net = chain_net(10);
        let deep = net
            .tree()
            .nodes()
            .max_by_key(|&u| net.tree().depth(u))
            .unwrap();
        let (rounds, collisions, programs) = run_cff(&net, deep);
        assert_eq!(collisions, 0);
        for u in net.tree().nodes() {
            assert!(programs[u.index()].as_ref().unwrap().received, "{u}");
        }
        let k = build_knowledge(&net);
        let bound =
            net.tree().depth(deep) as u64 + (k.delta_flood.max(1) as u64) * (k.height as u64 + 1);
        assert!(rounds <= bound);
    }

    #[test]
    fn nodes_sleep_outside_their_windows() {
        let net = chain_net(10);
        let k = build_knowledge(&net);
        let session = Session::new(&k, net.root(), 1);
        let mut engine = Engine::new(
            net.graph(),
            EngineConfig {
                max_rounds: 100_000,
                ..Default::default()
            },
            |u| CffProgram::new(&k, &session, u, (u == net.root()).then_some(0)),
        );
        let out = engine.run();
        // Lemma 1: each node awake at most 2Δ' rounds (we are tighter:
        // ≤ Δ' listening + 1 transmitting).
        let delta = k.delta_flood.max(1) as u64;
        for u in net.tree().nodes() {
            let awake = engine.meter(u).awake_rounds();
            assert!(awake <= 2 * delta, "{u} awake {awake} > 2Δ'={}", 2 * delta);
        }
        assert!(out.rounds >= 1);
    }

    #[test]
    fn two_node_network() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        net.move_in(&[NodeId(0)]).unwrap();
        let (rounds, collisions, programs) = run_cff(&net, NodeId(0));
        assert_eq!(collisions, 0);
        assert!(programs[1].as_ref().unwrap().received);
        assert_eq!(rounds, 1); // root transmits at slot 1, member receives
    }

    #[test]
    fn singleton_network_terminates() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        let (rounds, _c, programs) = run_cff(&net, NodeId(0));
        assert!(programs[0].as_ref().unwrap().received);
        assert!(rounds <= 1);
    }
}

#[cfg(test)]
mod multichannel_tests {
    use super::*;
    use crate::knowledge::build_knowledge;
    use crate::runner::{run_cff_basic, RunConfig};
    use dsnet_cluster::ClusterNet;

    /// Bushy net so Δ' > 1 and channels have something to divide.
    fn bushy() -> ClusterNet {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for _ in 0..6 {
            net.move_in(&[NodeId(0)]).unwrap();
        }
        net.move_in(&[NodeId(1)]).unwrap(); // promotes 1, head 7
        for _ in 0..5 {
            net.move_in(&[NodeId(7)]).unwrap();
        }
        net.move_in(&[NodeId(8)]).unwrap(); // promotes 8, head 13
        for _ in 0..3 {
            net.move_in(&[NodeId(13)]).unwrap();
        }
        net
    }

    #[test]
    fn multichannel_cff1_delivers_and_never_slower() {
        let net = bushy();
        let k = build_knowledge(&net);
        let base = run_cff_basic(&net, net.root(), &RunConfig::default());
        assert!(base.completed());
        let mut prev = base.rounds;
        for channels in [2u8, 4] {
            let cfg = RunConfig {
                channels,
                ..Default::default()
            };
            let out = run_cff_basic(&net, net.root(), &cfg);
            assert!(
                out.completed(),
                "k={channels}: {}/{}",
                out.delivered,
                out.targets
            );
            assert!(out.rounds <= prev, "k={channels}: {} > {prev}", out.rounds);
            assert!(out.rounds <= crate::analytic::cff_basic_bound(&k, 0, channels));
            prev = out.rounds;
        }
    }

    #[test]
    fn multichannel_cff1_works_on_deep_chains() {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 1..15u32 {
            net.move_in(&[NodeId(i - 1)]).unwrap();
        }
        let cfg = RunConfig {
            channels: 3,
            ..Default::default()
        };
        let out = run_cff_basic(&net, net.root(), &cfg);
        assert!(out.completed());
    }
}
