//! Property tests pinning the dirty-scoped knowledge patch path to the
//! from-scratch oracle (`build_knowledge`).
//!
//! Mirrors the shape of the cluster crate's `invariants/incremental_props`
//! suite, applied to knowledge instead of invariant auditing:
//!
//! 1. over random churn histories — arrivals, departures, crash repairs,
//!    and mobility-style relocations (move-out immediately followed by a
//!    re-arrival near the old neighbourhood) — the version-keyed cache
//!    must serve a snapshot byte-equal to [`build_knowledge`] at *every*
//!    intermediate version, however each miss was served;
//! 2. the same histories under a tiny patch limit keep the equality while
//!    forcing fallback-threshold crossings (patch refused, full rebuild
//!    taken), so the threshold path is exercised, not just configured;
//! 3. a `get` with no intervening mutation is a no-op hit: same `Arc`,
//!    hit counted, nothing patched — the empty-dirty case never clones.

use dsnet_cluster::repair::RepairConfig;
use dsnet_cluster::ClusterNet;
use dsnet_graph::NodeId;
use dsnet_protocols::knowledge::build_knowledge;
use dsnet_protocols::KnowledgeCache;
use proptest::prelude::*;
use std::sync::Arc;

/// Apply one proptest-chosen mutation. Refused operations (evicting the
/// root, repairing the last node) are fine — the histories exist to
/// scramble the structure version, not to model churn precisely.
fn mutate(net: &mut ClusterNet, op: u8, a: u16, b: u16) {
    let nodes: Vec<NodeId> = net.tree().nodes().collect();
    match op % 4 {
        0 => {
            // Arrival hearing up to two existing nodes.
            let mut nbrs: Vec<NodeId> = [a, b]
                .iter()
                .map(|&x| nodes[x as usize % nodes.len()])
                .collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            net.move_in(&nbrs).unwrap();
        }
        1 => {
            if nodes.len() > 2 {
                let _ = net.move_out(nodes[a as usize % nodes.len()]);
            }
        }
        2 => {
            if nodes.len() > 2 {
                let _ =
                    net.repair_failure(nodes[a as usize % nodes.len()], &RepairConfig::default());
            }
        }
        _ => {
            // Mobility-style relocation: depart, then re-arrive hearing a
            // survivor of the old neighbourhood (or anyone, if none
            // survived) — the driver's move_out + move_in sequence.
            if nodes.len() > 2 {
                let lev = nodes[a as usize % nodes.len()];
                let nbrs: Vec<NodeId> = net.graph().neighbors(lev).to_vec();
                if net.move_out(lev).is_ok() {
                    let alive: Vec<NodeId> = nbrs
                        .into_iter()
                        .filter(|&u| net.tree().contains(u))
                        .collect();
                    let hear = if alive.is_empty() {
                        let rest: Vec<NodeId> = net.tree().nodes().collect();
                        vec![rest[b as usize % rest.len()]]
                    } else {
                        vec![alive[b as usize % alive.len()]]
                    };
                    net.move_in(&hear).unwrap();
                }
            }
        }
    }
}

fn seed_net(arrivals: &[(u16, u16)]) -> ClusterNet {
    let mut net = ClusterNet::with_defaults();
    net.move_in(&[]).unwrap();
    for &(a, b) in arrivals {
        mutate(&mut net, 0, a, b);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole equality: at every version of a random churn history,
    /// the cache's snapshot — patched or rebuilt, it must not matter —
    /// is byte-equal to a from-scratch build.
    #[test]
    fn patched_snapshots_equal_rebuilds_at_every_version(
        arrivals in prop::collection::vec((any::<u16>(), any::<u16>()), 6..30),
        ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..25),
    ) {
        let mut net = seed_net(&arrivals);
        let cache = KnowledgeCache::new();
        for &(op, a, b) in &ops {
            mutate(&mut net, op, a, b);
            let cached = cache.get(&net);
            let fresh = build_knowledge(&net);
            prop_assert_eq!(&*cached, &fresh, "cached snapshot diverged from rebuild");
        }
        let s = cache.full_stats();
        prop_assert_eq!(s.hits + s.misses, ops.len() as u64);
        prop_assert!(s.patched <= s.misses, "patched must be a subset of misses");
    }

    /// Same histories under a tiny patch limit: dirty sets larger than
    /// the threshold must cross into the fallback path (full rebuild) and
    /// the equality must survive the crossing in both directions.
    #[test]
    fn fallback_threshold_crossings_preserve_equality(
        arrivals in prop::collection::vec((any::<u16>(), any::<u16>()), 6..20),
        ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..20),
        limit in 0usize..6,
    ) {
        let mut net = seed_net(&arrivals);
        let cache = KnowledgeCache::with_patch_limit(limit);
        for &(op, a, b) in &ops {
            mutate(&mut net, op, a, b);
            let cached = cache.get(&net);
            let fresh = build_knowledge(&net);
            prop_assert_eq!(&*cached, &fresh, "equality broken around the threshold");
        }
        if limit == 0 {
            // Every structural change dirties at least one node, so a
            // zero threshold can never patch.
            prop_assert_eq!(cache.full_stats().patched, 0);
        }
    }

    /// A `get` with no intervening mutation is a no-op: the same `Arc`
    /// comes back, a hit is counted, and nothing is patched or rebuilt.
    #[test]
    fn unchanged_version_is_a_hit_not_a_patch(
        arrivals in prop::collection::vec((any::<u16>(), any::<u16>()), 4..16),
    ) {
        let net = seed_net(&arrivals);
        let cache = KnowledgeCache::new();
        let first = cache.get(&net);
        let again = cache.get(&net);
        prop_assert!(Arc::ptr_eq(&first, &again), "hit must reuse the snapshot");
        let s = cache.full_stats();
        prop_assert_eq!((s.hits, s.misses, s.patched, s.fallbacks), (1, 1, 0, 0));
    }
}

/// Deterministic witness that the threshold really crosses both ways on
/// one history: a generous limit patches, a zero limit never does, and
/// both stay byte-equal to the oracle throughout.
#[test]
fn threshold_witness_patches_and_falls_back() {
    let build = |limit: usize| {
        let mut net = ClusterNet::with_defaults();
        net.move_in(&[]).unwrap();
        for i in 0..40u16 {
            mutate(&mut net, 0, i.wrapping_mul(7), i.wrapping_mul(13));
        }
        let cache = KnowledgeCache::with_patch_limit(limit);
        let _ = cache.get(&net); // prime
        for i in 0..12u16 {
            mutate(
                &mut net,
                (i % 4) as u8,
                i.wrapping_mul(31),
                i.wrapping_mul(5),
            );
            let cached = cache.get(&net);
            assert_eq!(*cached, build_knowledge(&net), "limit {limit} diverged");
        }
        cache.full_stats()
    };
    let generous = build(usize::MAX);
    assert!(generous.patched > 0, "generous limit never patched");
    assert_eq!(generous.fallbacks, 0, "generous limit should never refuse");
    let zero = build(0);
    assert_eq!(zero.patched, 0, "zero limit must never patch");
    assert!(zero.fallbacks > 0, "zero limit must record its refusals");
}
