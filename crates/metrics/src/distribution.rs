//! Full-sample distributions with percentile queries.
//!
//! [`Summary`] keeps only moments and extremes; campaign cells also
//! report percentiles (median / tail latency of broadcast rounds), which
//! need the sorted sample.

use crate::Summary;

/// A sorted sample supporting percentile queries.
///
/// ```
/// use dsnet_metrics::Distribution;
///
/// let d = Distribution::of([4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(d.percentile(0.0), 1.0);
/// assert_eq!(d.percentile(50.0), 2.0);
/// assert_eq!(d.percentile(100.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    values: Vec<f64>,
}

impl Distribution {
    /// Collect and sort a sample. NaNs are rejected (they would poison
    /// every quantile).
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Distribution {
        let mut values: Vec<f64> = values.into_iter().collect();
        assert!(values.iter().all(|v| !v.is_nan()), "NaN observation");
        values.sort_by(|a, b| a.total_cmp(b));
        Distribution { values }
    }

    /// Convenience for integer observations.
    pub fn of_u64<I: IntoIterator<Item = u64>>(values: I) -> Distribution {
        Distribution::of(values.into_iter().map(|v| v as f64))
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`. Returns 0.0 for an
    /// empty sample (matching [`Summary::of`]'s zeroed convention).
    ///
    /// Nearest-rank (ceil(p/100·n)-th smallest) is exact, needs no
    /// interpolation, and always returns an observed value — important
    /// for integer quantities like round counts.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.values[rank.max(1) - 1]
    }

    /// The sample median (50th percentile, nearest-rank).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Moment summary of the same sample.
    pub fn summary(&self) -> Summary {
        Summary::of(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let d = Distribution::of_u64([10, 20, 30, 40, 50]);
        assert_eq!(d.percentile(0.0), 10.0);
        assert_eq!(d.percentile(20.0), 10.0);
        assert_eq!(d.percentile(50.0), 30.0);
        assert_eq!(d.percentile(90.0), 50.0);
        assert_eq!(d.percentile(100.0), 50.0);
        assert_eq!(d.median(), 30.0);
    }

    #[test]
    fn single_observation() {
        let d = Distribution::of([7.5]);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(d.percentile(p), 7.5);
        }
    }

    #[test]
    fn empty_is_zeroed() {
        let d = Distribution::of(std::iter::empty());
        assert!(d.is_empty());
        assert_eq!(d.percentile(50.0), 0.0);
    }

    #[test]
    fn summary_matches_direct() {
        let d = Distribution::of([2.0, 4.0]);
        assert_eq!(d.summary(), Summary::of([2.0, 4.0]));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let d = Distribution::of([3.0, 1.0, 2.0]);
        assert_eq!(d.values(), &[1.0, 2.0, 3.0]);
    }
}
