//! Summary statistics over repeated runs.

use std::fmt;

/// Mean / spread / extremes of a sample (population standard deviation,
/// matching how repeated-simulation figures are usually reported).
///
/// ```
/// use dsnet_metrics::Summary;
///
/// let s = Summary::of_u64([10, 20, 30]);
/// assert_eq!(s.mean, 20.0);
/// assert_eq!((s.min, s.max), (10.0, 30.0));
/// assert_eq!(s.to_string(), "20.0 ± 8.2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarise an iterator of observations. Returns a zeroed summary for
    /// an empty sample.
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Summary {
        let vals: Vec<f64> = values.into_iter().collect();
        if vals.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = vals.len();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// Convenience for integer observations.
    pub fn of_u64<I: IntoIterator<Item = u64>>(values: I) -> Summary {
        Summary::of(values.into_iter().map(|v| v as f64))
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small magnitudes (ratios) need more digits than round counts.
        if self.mean.abs() < 1.0 && (self.mean != 0.0 || self.std != 0.0) {
            write!(f, "{:.3} ± {:.3}", self.mean, self.std)
        } else {
            write!(f, "{:.1} ± {:.1}", self.mean, self.std)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of([5.0, 5.0, 5.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!((s.min, s.max), (5.0, 5.0));
    }

    #[test]
    fn known_variance() {
        // Population of {2, 4}: mean 3, variance 1.
        let s = Summary::of([2.0, 4.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 1.0);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn u64_helper_matches() {
        assert_eq!(Summary::of_u64([1, 2, 3]), Summary::of([1.0, 2.0, 3.0]));
    }

    #[test]
    fn display_format() {
        assert_eq!(Summary::of([2.0, 4.0]).to_string(), "3.0 ± 1.0");
        // Sub-unit magnitudes get more precision.
        assert_eq!(Summary::of([0.25, 0.35]).to_string(), "0.300 ± 0.050");
        // A true zero stays compact.
        assert_eq!(Summary::of([0.0, 0.0]).to_string(), "0.0 ± 0.0");
    }
}
