#![warn(missing_docs)]

//! Statistics and reporting utilities for the dsnet experiment harness.
//!
//! Every figure in the paper is a set of series over a parameter sweep
//! (number of nodes). The harness aggregates repeated seeded runs into
//! [`Summary`] statistics, organises them as [`Series`] in a [`SweepTable`],
//! and renders markdown/CSV for EXPERIMENTS.md.

pub mod distribution;
pub mod summary;
pub mod table;

pub use distribution::Distribution;
pub use summary::Summary;
pub use table::{Series, SweepTable};
