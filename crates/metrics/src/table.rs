//! Sweep tables: named series over a shared x-axis, rendered as markdown
//! or CSV — one table per paper figure.

use crate::summary::Summary;
use std::fmt::Write as _;

/// One line of a figure: a name plus a y-value per x point.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One summary per x-axis point.
    pub points: Vec<Summary>,
}

impl Series {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append the next x-point's summary.
    pub fn push(&mut self, s: Summary) {
        self.points.push(s);
    }
}

/// A whole figure: the x-axis (e.g. node counts) and its series.
#[derive(Debug, Clone)]
pub struct SweepTable {
    /// Figure/table title.
    pub title: String,
    /// Label of the x-axis.
    pub x_label: String,
    /// The x-axis values.
    pub xs: Vec<f64>,
    /// The figure's series.
    pub series: Vec<Series>,
}

impl SweepTable {
    /// An empty table over the given x-axis.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, xs: Vec<f64>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            xs,
            series: Vec::new(),
        }
    }

    /// Add a series; its length must match the x-axis.
    pub fn add(&mut self, series: Series) -> &mut Self {
        assert_eq!(
            series.points.len(),
            self.xs.len(),
            "series '{}' length mismatch",
            series.name
        );
        self.series.push(series);
        self
    }

    /// Render as a GitHub-flavoured markdown table with `mean ± std` cells.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let header: Vec<String> = std::iter::once(self.x_label.clone())
            .chain(self.series.iter().map(|s| s.name.clone()))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; header.len()].join("|"));
        for (i, x) in self.xs.iter().enumerate() {
            let mut row = vec![format_x(*x)];
            for s in &self.series {
                row.push(s.points[i].to_string());
            }
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (means only; add `_std` columns for spreads).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        for s in &self.series {
            header.push(s.name.clone());
            header.push(format!("{}_std", s.name));
        }
        let _ = writeln!(out, "{}", header.join(","));
        for (i, x) in self.xs.iter().enumerate() {
            let mut row = vec![format_x(*x)];
            for s in &self.series {
                row.push(format!("{:.4}", s.points[i].mean));
                row.push(format!("{:.4}", s.points[i].std));
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

fn format_x(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SweepTable {
        let mut t = SweepTable::new("Fig X", "n", vec![100.0, 200.0]);
        let mut a = Series::new("cff");
        a.push(Summary::of([10.0]));
        a.push(Summary::of([20.0]));
        let mut b = Series::new("dfo");
        b.push(Summary::of([50.0]));
        b.push(Summary::of([100.0]));
        t.add(a);
        t.add(b);
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample_table().to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| n | cff | dfo |"));
        assert!(md.contains("| 100 |"));
        assert!(md.contains("20.0 ± 0.0"));
        assert_eq!(md.lines().count(), 6);
    }

    #[test]
    fn csv_has_std_columns() {
        let csv = sample_table().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "n,cff,cff_std,dfo,dfo_std");
        assert!(lines.next().unwrap().starts_with("100,10.0000,0.0000,"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut t = SweepTable::new("T", "n", vec![1.0, 2.0]);
        let mut s = Series::new("bad");
        s.push(Summary::of([1.0]));
        t.add(s);
    }

    #[test]
    fn fractional_x_formatting() {
        assert_eq!(format_x(2.5), "2.50");
        assert_eq!(format_x(3.0), "3");
    }
}
