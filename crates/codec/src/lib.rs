#![warn(missing_docs)]

//! A minimal, integer-only JSON value model shared by the dsnet wire
//! protocol (`dsnet-server`) and the campaign journal (`dsnet-campaign`).
//!
//! crates.io is unreachable, so the codec is hand-rolled. Two deliberate
//! restrictions keep it small and every consumer deterministic:
//!
//! * **Numbers are `i64`.** Every quantity the protocol carries is an
//!   integer (node ids, milli-coordinates, ppm probabilities, counters).
//!   Floating-point literals are rejected as malformed, which sidesteps
//!   float formatting divergence entirely.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map),
//!   so rendering is deterministic and round-trips are byte-stable.

pub mod binary;

use std::fmt::Write as _;

/// A JSON value (integer-only numbers; see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus a deterministic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parse one JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err(format!("invalid integer '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Shorthand for building an object.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.render();
        assert_eq!(&parse(&text).expect(&text), v, "{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Str(String::new()),
            Json::Str("hello".into()),
            Json::Str("tab\tquote\"slash\\nl\n".into()),
            Json::Str("unicode: ε δ Δ".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Arr(vec![
            Json::Int(1),
            Json::Str("x".into()),
            Json::Null,
        ]));
        roundtrip(&obj(vec![]));
        roundtrip(&obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Bool(false)])),
            ("c", obj(vec![("nested", Json::Str("y".into()))])),
        ]));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse(" { \"k\" : [ 1 , -2 ] , \"s\" : \"a\\u0041\\n\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1], Json::Int(-2));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1.5",
            "1e3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{\"a\" 1}",
            "[1 2]",
            "\"bad\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = obj(vec![("n", Json::Int(3)), ("s", Json::Str("x".into()))]);
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(1).as_str(), None);
        assert_eq!(Json::Null.get("x"), None);
    }
}
