//! A compact tagged binary encoding of the [`Json`](crate::Json)
//! value model, used by dsnet-server's negotiated binary frame format.
//!
//! Layout (all integers big-endian, matching the wire frame header):
//!
//! | tag | value | payload                                   |
//! |-----|-------|-------------------------------------------|
//! | 0   | null  | —                                         |
//! | 1   | false | —                                         |
//! | 2   | true  | —                                         |
//! | 3   | int   | 8-byte two's-complement i64               |
//! | 4   | str   | u32 byte length + UTF-8 bytes             |
//! | 5   | arr   | u32 element count + encoded elements      |
//! | 6   | obj   | u32 pair count + (str key, value) pairs   |
//!
//! Like the JSON side, decoding is strict: unknown tags, invalid
//! UTF-8, lengths running past the buffer, trailing bytes, and
//! nesting deeper than [`MAX_DEPTH`] are all rejected with a byte
//! offset. Encoding is canonical (one byte string per value), so
//! encode∘decode is the identity on bytes as well as values.

use crate::Json;

/// Nesting limit for decode — matches no real protocol message and
/// keeps hostile input from recursing the stack away.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARR: u8 = 5;
const TAG_OBJ: u8 = 6;

/// A binary decode failure: byte offset plus a deterministic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for BinError {}

/// Encode a value to its canonical binary form.
pub fn to_bytes(value: &Json) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode(value, &mut out);
    out
}

fn encode(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Int(n) => {
            out.push(TAG_INT);
            out.extend_from_slice(&n.to_be_bytes());
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            out.extend_from_slice(&(items.len() as u32).to_be_bytes());
            for item in items {
                encode(item, out);
            }
        }
        Json::Obj(pairs) => {
            out.push(TAG_OBJ);
            out.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
            for (k, v) in pairs {
                encode_str(k, out);
                encode(v, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decode one value; rejects trailing bytes.
pub fn from_bytes(bytes: &[u8]) -> Result<Json, BinError> {
    let mut d = Decoder { bytes, pos: 0 };
    let v = d.value(0)?;
    if d.pos != bytes.len() {
        return Err(d.err("trailing bytes after value"));
    }
    Ok(v)
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn err(&self, message: impl Into<String>) -> BinError {
        BinError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err(format!("truncated: {n} bytes needed")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, BinError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| BinError {
                at,
                message: "invalid UTF-8 in string".into(),
            })
    }

    fn value(&mut self, depth: usize) -> Result<Json, BinError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let tag = self.take(1)?[0];
        match tag {
            TAG_NULL => Ok(Json::Null),
            TAG_FALSE => Ok(Json::Bool(false)),
            TAG_TRUE => Ok(Json::Bool(true)),
            TAG_INT => {
                let b = self.take(8)?;
                Ok(Json::Int(i64::from_be_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ])))
            }
            TAG_STR => Ok(Json::Str(self.string()?)),
            TAG_ARR => {
                let count = self.u32()? as usize;
                // Cheapest element is 1 byte: a count past the
                // remaining bytes is a lie — reject before allocating.
                if count > self.bytes.len() - self.pos {
                    return Err(self.err(format!("array count {count} exceeds input")));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Json::Arr(items))
            }
            TAG_OBJ => {
                let count = self.u32()? as usize;
                // Cheapest pair is 5 bytes (empty key + null value).
                if count > (self.bytes.len() - self.pos) / 5 {
                    return Err(self.err(format!("object count {count} exceeds input")));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = self.string()?;
                    let v = self.value(depth + 1)?;
                    pairs.push((k, v));
                }
                Ok(Json::Obj(pairs))
            }
            other => Err(BinError {
                at: self.pos - 1,
                message: format!("unknown tag {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj;

    fn roundtrip(v: &Json) {
        let bytes = to_bytes(v);
        assert_eq!(&from_bytes(&bytes).expect("decode"), v);
        // Canonical: re-encoding the decoded value is byte-identical.
        assert_eq!(to_bytes(&from_bytes(&bytes).unwrap()), bytes);
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Str(String::new()),
            Json::Str("hello".into()),
            Json::Str("unicode: ε δ Δ \n\t\"\\".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(&Json::Arr(vec![]));
        roundtrip(&Json::Arr(vec![
            Json::Int(1),
            Json::Str("x".into()),
            Json::Null,
        ]));
        roundtrip(&obj(vec![]));
        roundtrip(&obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Bool(false)])),
            ("c", obj(vec![("nested", Json::Str("y".into()))])),
        ]));
    }

    #[test]
    fn object_order_survives() {
        let v = obj(vec![("z", Json::Int(1)), ("a", Json::Int(2))]);
        let back = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let v = obj(vec![
            ("id", Json::Int(7)),
            ("op", Json::Str("cmd".into())),
            ("args", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        let bytes = to_bytes(&v);
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&Json::Int(1));
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        for tag in 7u8..=255 {
            assert!(from_bytes(&[tag]).is_err(), "tag {tag}");
        }
    }

    #[test]
    fn lying_counts_do_not_allocate() {
        // Array claiming u32::MAX elements in a 9-byte buffer.
        let mut bytes = vec![5u8];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(from_bytes(&bytes).is_err());
        // Same for objects and strings.
        let mut bytes = vec![6u8];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(from_bytes(&bytes).is_err());
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.push(b'x');
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn depth_guard_trips() {
        // [[[[...]]]] one past MAX_DEPTH.
        let mut bytes = Vec::new();
        for _ in 0..=MAX_DEPTH {
            bytes.push(5u8);
            bytes.extend_from_slice(&1u32.to_be_bytes());
        }
        bytes.push(0u8); // innermost null
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Exactly MAX_DEPTH nests fine.
        let mut ok = Vec::new();
        for _ in 0..MAX_DEPTH {
            ok.push(5u8);
            ok.extend_from_slice(&1u32.to_be_bytes());
        }
        ok.push(0u8);
        assert!(from_bytes(&ok).is_ok());
    }

    #[test]
    fn invalid_utf8_in_strings_and_keys_rejected() {
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&2u32.to_be_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(from_bytes(&bytes).is_err());
        let mut bytes = vec![6u8];
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(0xff);
        bytes.push(0u8);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn encoding_is_canonical_for_strings() {
        // The main draw of the format is decode cost — no escape
        // handling, no digit parsing — so string payloads must come
        // back byte-for-byte without any escaping layer.
        let s = "line1\nline2\t\"quoted\" \\backslash ε";
        let v = Json::Str(s.into());
        let bytes = to_bytes(&v);
        assert_eq!(&bytes[5..], s.as_bytes());
        assert_eq!(from_bytes(&bytes).unwrap(), v);
    }
}
