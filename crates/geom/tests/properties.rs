//! Property-based tests of the geometry layer.

use dsnet_geom::{Deployment, DeploymentConfig, DeploymentStrategy, GridIndex, Point2, Region};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn grid_index_matches_brute_force(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..120),
        queries in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..10),
        radius in 0.2f64..1.0,
    ) {
        let mut idx = GridIndex::new(10.0, 10.0, radius);
        let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        for &p in &pts {
            idx.insert(p);
        }
        for &(qx, qy) in &queries {
            let q = Point2::new(qx, qy);
            let mut got = idx.within(q, radius);
            got.sort_unstable();
            let expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist_sq(q) <= radius * radius)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn grid_index_matches_brute_force_after_relocations(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 2..80),
        moves in prop::collection::vec(
            (any::<usize>(), (0.0f64..10.0, 0.0f64..10.0)),
            1..120,
        ),
        queries in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..10),
        radius in 0.2f64..1.0,
    ) {
        let mut idx = GridIndex::new(10.0, 10.0, radius);
        let mut pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        for &p in &pts {
            idx.insert(p);
        }
        for (which, (x, y)) in &moves {
            let id = which % pts.len();
            let p = Point2::new(*x, *y);
            idx.relocate(id, p);
            pts[id] = p;
        }
        for &(qx, qy) in &queries {
            let q = Point2::new(qx, qy);
            let mut got = idx.within(q, radius);
            got.sort_unstable();
            let expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist_sq(q) <= radius * radius)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn deployments_stay_in_field_and_are_deterministic(
        n in 1usize..200,
        seed in any::<u64>(),
        side in 4.0f64..12.0,
    ) {
        let cfg = DeploymentConfig {
            region: Region::square(side),
            n,
            range: 0.5,
            strategy: DeploymentStrategy::IncrementalConnected,
            seed,
        };
        let a = Deployment::generate(cfg);
        let b = Deployment::generate(cfg);
        prop_assert_eq!(a.positions.len(), n);
        prop_assert_eq!(&a.positions, &b.positions);
        prop_assert!(a.positions.iter().all(|&p| cfg.region.contains(p)));
        prop_assert!(a.is_connected_hint());
    }

    #[test]
    fn distances_obey_the_triangle_inequality(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0,
        cx in -5.0f64..5.0, cy in -5.0f64..5.0,
    ) {
        let (a, b, c) = (Point2::new(ax, ay), Point2::new(bx, by), Point2::new(cx, cy));
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-12);
    }

    #[test]
    fn in_range_is_symmetric(
        ax in 0.0f64..10.0, ay in 0.0f64..10.0,
        bx in 0.0f64..10.0, by in 0.0f64..10.0,
        r in 0.1f64..3.0,
    ) {
        let a = Point2::new(ax, ay);
        let b = Point2::new(bx, by);
        prop_assert_eq!(a.in_range(b, r), b.in_range(a, r));
    }
}
