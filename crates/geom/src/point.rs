//! Plain 2-D points with the handful of operations the simulator needs.

use std::fmt;
use std::ops::{Add, Sub};

/// A point (or vector) in the 2-D deployment plane, in field units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate, in field units.
    pub x: f64,
    /// Vertical coordinate, in field units.
    pub y: f64,
}

impl Point2 {
    /// Construct a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred over [`Point2::dist`] in inner loops: unit-disk adjacency
    /// only ever compares distances against a fixed range, so the square
    /// root can be avoided entirely.
    #[inline]
    pub fn dist_sq(&self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point2) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Whether `other` lies within `range` of `self` (inclusive), i.e.
    /// whether two radios at these points can hear each other under the
    /// unit-disk model.
    #[inline]
    pub fn in_range(&self, other: Point2, range: f64) -> bool {
        self.dist_sq(other) <= range * range
    }

    /// Component-wise midpoint.
    pub fn midpoint(&self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Squared length of this point treated as a vector from the origin.
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_dist_sq() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point2::new(-3.5, 0.25);
        let b = Point2::new(2.0, -1.0);
        assert_eq!(a.dist_sq(b), b.dist_sq(a));
    }

    #[test]
    fn in_range_is_inclusive_at_boundary() {
        let a = Point2::ORIGIN;
        let b = Point2::new(0.5, 0.0);
        assert!(a.in_range(b, 0.5));
        assert!(!a.in_range(Point2::new(0.5 + 1e-9, 0.0), 0.5));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point2::new(1.0, -2.0);
        let b = Point2::new(0.5, 3.0);
        let c = a + b - b;
        assert!((c.x - a.x).abs() < 1e-12 && (c.y - a.y).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point2::new(1.0, 2.0));
    }
}
