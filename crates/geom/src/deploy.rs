//! Seeded node-placement generators.
//!
//! The paper (Section 6) deploys `n` nodes on a square field with a 0.5-unit
//! radio range and then runs every protocol on the resulting unit-disk
//! graph. All protocols assume the graph is *connected* (CNet(G) is a
//! spanning tree), and the architecture itself is built by adding nodes one
//! at a time with `node-move-in`, each new node arriving inside the radio
//! range of the existing network. [`DeploymentStrategy::IncrementalConnected`]
//! reproduces exactly that regime and is the default for all experiments.
//!
//! Two additional generators are provided: a plain uniform scatter (with
//! rejection until the graph is connected — only practical at high density)
//! and a grid-with-jitter placement useful for dense, regular topologies in
//! tests and ablations.

use crate::point::Point2;
use crate::region::Region;
use crate::rng::{rng_from_seed, Rng};
use crate::spatial::GridIndex;
use rand::Rng as _;

/// How node positions are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentStrategy {
    /// Nodes are added one at a time; each candidate position is rejected
    /// unless it lies within radio range of an already-placed node (the
    /// first node seeds the process near the field centre). This mirrors
    /// the paper's dynamic `node-move-in` regime and guarantees a connected
    /// unit-disk graph by construction.
    IncrementalConnected,
    /// Uniform i.i.d. scatter over the field. The resulting graph may be
    /// disconnected at the paper's density; use
    /// [`Deployment::is_connected_hint`] or the graph crate to check.
    UniformScatter,
    /// Perturbed grid: nodes on a √n×√n lattice with uniform jitter of at
    /// most half a lattice step. Produces dense, well-connected graphs.
    GridJitter,
}

/// Full description of a deployment to generate.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentConfig {
    /// The deployment field.
    pub region: Region,
    /// Number of nodes to place.
    pub n: usize,
    /// Radio range in field units (0.5 for the paper's 50 m).
    pub range: f64,
    /// Placement strategy.
    pub strategy: DeploymentStrategy,
    /// RNG seed; equal seeds give identical deployments.
    pub seed: u64,
}

impl DeploymentConfig {
    /// The paper's configuration: `n` nodes on the 10×10-unit field with a
    /// 0.5-unit range, placed incrementally connected.
    pub fn paper(n: usize, seed: u64) -> Self {
        Self {
            region: Region::paper_10x10(),
            n,
            range: crate::PAPER_RANGE_UNITS,
            strategy: DeploymentStrategy::IncrementalConnected,
            seed,
        }
    }

    /// Same as [`DeploymentConfig::paper`] but on an arbitrary square field
    /// side (8, 10 or 12 in the paper).
    pub fn paper_field(side: f64, n: usize, seed: u64) -> Self {
        Self {
            region: Region::square(side),
            n,
            range: crate::PAPER_RANGE_UNITS,
            strategy: DeploymentStrategy::IncrementalConnected,
            seed,
        }
    }
}

/// A generated set of node positions, in deployment (arrival) order.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The configuration that produced these positions.
    pub config: DeploymentConfig,
    /// Node positions, indexed by arrival order.
    pub positions: Vec<Point2>,
}

impl Deployment {
    /// Generate a deployment according to `config`.
    pub fn generate(config: DeploymentConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let positions = match config.strategy {
            DeploymentStrategy::IncrementalConnected => incremental_connected(&config, &mut rng),
            DeploymentStrategy::UniformScatter => uniform_scatter(&config, &mut rng),
            DeploymentStrategy::GridJitter => grid_jitter(&config, &mut rng),
        };
        Self { config, positions }
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the deployment is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Cheap structural hint: `true` if every node (in arrival order) has a
    /// predecessor within range, which for the incremental strategy proves
    /// connectivity. For other strategies a `false` here does *not* imply
    /// disconnection; use the graph crate for an exact check.
    pub fn is_connected_hint(&self) -> bool {
        if self.positions.len() <= 1 {
            return true;
        }
        let r = self.config.range;
        let region = self.config.region;
        let mut idx = GridIndex::new(region.width(), region.height(), r);
        idx.insert(self.positions[0]);
        for &p in &self.positions[1..] {
            if !idx.any_within(p, r) {
                return false;
            }
            idx.insert(p);
        }
        true
    }
}

fn uniform_point(region: Region, rng: &mut Rng) -> Point2 {
    Point2::new(
        rng.random_range(0.0..=region.width()),
        rng.random_range(0.0..=region.height()),
    )
}

/// Uniform placement conditioned on connectivity: candidates are drawn
/// uniformly over the whole field and rejected unless they land within
/// radio range of an already-deployed node. The accepted distribution is
/// uniform over the (growing) coverage region, which keeps node density —
/// and therefore the maximum degree `D` — close to a plain uniform scatter
/// while guaranteeing the connected, incrementally-built network the
/// paper's `node-move-in` regime assumes. The first node lands uniformly
/// in the central quarter so the network has room to grow everywhere.
fn incremental_connected(config: &DeploymentConfig, rng: &mut Rng) -> Vec<Point2> {
    let region = config.region;
    let r = config.range;
    let mut idx = GridIndex::new(region.width(), region.height(), r);
    let mut out = Vec::with_capacity(config.n);
    if config.n == 0 {
        return out;
    }

    let c = region.center();
    let first = Point2::new(
        rng.random_range((c.x - region.width() * 0.25)..=(c.x + region.width() * 0.25)),
        rng.random_range((c.y - region.height() * 0.25)..=(c.y + region.height() * 0.25)),
    );
    idx.insert(first);
    out.push(first);

    // Early on the coverage region is a single small disk, so uniform
    // rejection can be slow; after many misses, fall back to proposing in
    // the annulus around a random existing node (still area-uniform within
    // the coverage region's frontier, just more likely to hit it).
    const MAX_UNIFORM_TRIES: u32 = 256;
    while out.len() < config.n {
        let mut accepted = false;
        for _ in 0..MAX_UNIFORM_TRIES {
            let candidate = uniform_point(region, rng);
            if idx.any_within(candidate, r) {
                idx.insert(candidate);
                out.push(candidate);
                accepted = true;
                break;
            }
        }
        if !accepted {
            let anchor = out[rng.random_range(0..out.len())];
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            let rad = r * rng.random_range(0.0f64..=1.0).sqrt();
            let candidate = region.clamp(Point2::new(
                anchor.x + rad * theta.cos(),
                anchor.y + rad * theta.sin(),
            ));
            if idx.any_within(candidate, r) {
                idx.insert(candidate);
                out.push(candidate);
            }
        }
    }
    out
}

fn uniform_scatter(config: &DeploymentConfig, rng: &mut Rng) -> Vec<Point2> {
    (0..config.n)
        .map(|_| uniform_point(config.region, rng))
        .collect()
}

fn grid_jitter(config: &DeploymentConfig, rng: &mut Rng) -> Vec<Point2> {
    let region = config.region;
    let n = config.n;
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let sx = region.width() / cols as f64;
    let sy = region.height() / rows as f64;
    let mut out = Vec::with_capacity(n);
    'outer: for row in 0..rows {
        for col in 0..cols {
            if out.len() == n {
                break 'outer;
            }
            let base = Point2::new((col as f64 + 0.5) * sx, (row as f64 + 0.5) * sy);
            let jitter = Point2::new(
                rng.random_range(-0.5 * sx..=0.5 * sx) * 0.9,
                rng.random_range(-0.5 * sy..=0.5 * sy) * 0.9,
            );
            out.push(region.clamp(base + jitter));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_connected_is_connected_and_in_field() {
        let cfg = DeploymentConfig::paper(300, 11);
        let dep = Deployment::generate(cfg);
        assert_eq!(dep.len(), 300);
        assert!(dep.positions.iter().all(|&p| cfg.region.contains(p)));
        assert!(dep.is_connected_hint());
    }

    #[test]
    fn deployments_are_deterministic_per_seed() {
        let a = Deployment::generate(DeploymentConfig::paper(100, 5));
        let b = Deployment::generate(DeploymentConfig::paper(100, 5));
        let c = Deployment::generate(DeploymentConfig::paper(100, 6));
        assert_eq!(a.positions, b.positions);
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn grid_jitter_covers_the_field() {
        let cfg = DeploymentConfig {
            region: Region::square(10.0),
            n: 100,
            range: 0.5,
            strategy: DeploymentStrategy::GridJitter,
            seed: 1,
        };
        let dep = Deployment::generate(cfg);
        assert_eq!(dep.len(), 100);
        // Spread check: points land in all four quadrants.
        let c = cfg.region.center();
        let quads = [
            dep.positions.iter().any(|p| p.x < c.x && p.y < c.y),
            dep.positions.iter().any(|p| p.x >= c.x && p.y < c.y),
            dep.positions.iter().any(|p| p.x < c.x && p.y >= c.y),
            dep.positions.iter().any(|p| p.x >= c.x && p.y >= c.y),
        ];
        assert!(quads.iter().all(|&q| q));
    }

    #[test]
    fn uniform_scatter_has_exact_count() {
        let cfg = DeploymentConfig {
            region: Region::square(4.0),
            n: 57,
            range: 0.5,
            strategy: DeploymentStrategy::UniformScatter,
            seed: 3,
        };
        assert_eq!(Deployment::generate(cfg).len(), 57);
    }

    #[test]
    fn empty_deployment_is_fine() {
        let cfg = DeploymentConfig {
            region: Region::square(4.0),
            n: 0,
            range: 0.5,
            strategy: DeploymentStrategy::IncrementalConnected,
            seed: 3,
        };
        let dep = Deployment::generate(cfg);
        assert!(dep.is_empty());
        assert!(dep.is_connected_hint());
    }

    #[test]
    fn paper_sweep_sizes_generate() {
        for &n in &[64usize, 100, 300, 500, 720] {
            let dep = Deployment::generate(DeploymentConfig::paper(n, 99));
            assert_eq!(dep.len(), n);
            assert!(dep.is_connected_hint());
        }
    }
}
