//! A uniform-grid spatial hash for radio-range neighbour queries.
//!
//! Unit-disk adjacency ("who can hear whom") is the hottest geometric query
//! when building networks of hundreds of nodes: a naive all-pairs scan is
//! O(n²) per rebuild. [`GridIndex`] buckets points into cells of side equal
//! to the query radius, so a range query only inspects the 3×3 cell
//! neighbourhood around the query point.

use crate::point::Point2;

/// Spatial hash over a bounded field, with cell side = query radius.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    cols: usize,
    rows: usize,
    /// `buckets[row * cols + col]` holds the indices of points in that cell.
    buckets: Vec<Vec<usize>>,
    points: Vec<Point2>,
}

impl GridIndex {
    /// Create an index for points inside a `width × height` field that will
    /// be queried with radius `radius`.
    pub fn new(width: f64, height: f64, radius: f64) -> Self {
        assert!(radius > 0.0, "query radius must be positive");
        let cell = radius;
        let cols = (width / cell).ceil().max(1.0) as usize;
        let rows = (height / cell).ceil().max(1.0) as usize;
        Self {
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            points: Vec::new(),
        }
    }

    fn bucket_of(&self, p: Point2) -> usize {
        let col = ((p.x / self.cell) as usize).min(self.cols - 1);
        let row = ((p.y / self.cell) as usize).min(self.rows - 1);
        row * self.cols + col
    }

    /// Insert a point and return its index (dense, insertion order).
    pub fn insert(&mut self, p: Point2) -> usize {
        let id = self.points.len();
        self.points.push(p);
        let b = self.bucket_of(p);
        self.buckets[b].push(id);
        id
    }

    /// Move an already-indexed point to `new_point`, keeping its index.
    ///
    /// The point is removed from its old cell's bucket and inserted into the
    /// new cell's bucket, so a relocation costs O(bucket occupancy) rather
    /// than an O(n) rebuild. When old and new position fall into the same
    /// cell only the stored coordinate changes.
    pub fn relocate(&mut self, id: usize, new_point: Point2) {
        let old_bucket = self.bucket_of(self.points[id]);
        let new_bucket = self.bucket_of(new_point);
        self.points[id] = new_point;
        if old_bucket != new_bucket {
            let slot = self.buckets[old_bucket]
                .iter()
                .position(|&x| x == id)
                .expect("indexed point must be in its bucket");
            self.buckets[old_bucket].swap_remove(slot);
            self.buckets[new_bucket].push(id);
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored point for index `id`.
    pub fn point(&self, id: usize) -> Point2 {
        self.points[id]
    }

    /// All stored points, in insertion order.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Indices of all points within `radius` of `p` (inclusive), excluding
    /// none — the caller filters out the query point itself if needed.
    ///
    /// `radius` must not exceed the radius the index was built with,
    /// otherwise neighbours outside the 3×3 cell window would be missed.
    pub fn within(&self, p: Point2, radius: f64) -> Vec<usize> {
        assert!(
            radius <= self.cell + 1e-12,
            "query radius {radius} exceeds index cell size {}",
            self.cell
        );
        let mut out = Vec::new();
        self.for_each_within(p, radius, |id| out.push(id));
        out
    }

    /// Visitor-style range query that avoids allocating the result vector.
    pub fn for_each_within<F: FnMut(usize)>(&self, p: Point2, radius: f64, mut f: F) {
        let r2 = radius * radius;
        let col = ((p.x / self.cell) as isize).clamp(0, self.cols as isize - 1);
        let row = ((p.y / self.cell) as isize).clamp(0, self.rows as isize - 1);
        for dr in -1..=1isize {
            let rr = row + dr;
            if rr < 0 || rr >= self.rows as isize {
                continue;
            }
            for dc in -1..=1isize {
                let cc = col + dc;
                if cc < 0 || cc >= self.cols as isize {
                    continue;
                }
                let bucket = &self.buckets[rr as usize * self.cols + cc as usize];
                for &id in bucket {
                    if self.points[id].dist_sq(p) <= r2 {
                        f(id);
                    }
                }
            }
        }
    }

    /// Whether any indexed point lies within `radius` of `p`.
    pub fn any_within(&self, p: Point2, radius: f64) -> bool {
        let r2 = radius * radius;
        let col = ((p.x / self.cell) as isize).clamp(0, self.cols as isize - 1);
        let row = ((p.y / self.cell) as isize).clamp(0, self.rows as isize - 1);
        for dr in -1..=1isize {
            let rr = row + dr;
            if rr < 0 || rr >= self.rows as isize {
                continue;
            }
            for dc in -1..=1isize {
                let cc = col + dc;
                if cc < 0 || cc >= self.cols as isize {
                    continue;
                }
                let bucket = &self.buckets[rr as usize * self.cols + cc as usize];
                if bucket.iter().any(|&id| self.points[id].dist_sq(p) <= r2) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng as _;

    fn brute_force(points: &[Point2], p: Point2, r: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, q)| q.dist_sq(p) <= r * r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = rng_from_seed(7);
        let (w, h, r) = (10.0, 10.0, 0.5);
        let mut idx = GridIndex::new(w, h, r);
        let mut pts = Vec::new();
        for _ in 0..400 {
            let p = Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            idx.insert(p);
            pts.push(p);
        }
        for _ in 0..50 {
            let q = Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            let mut got = idx.within(q, r);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, q, r));
        }
    }

    #[test]
    fn relocate_moves_point_between_cells() {
        let mut idx = GridIndex::new(10.0, 10.0, 1.0);
        let id = idx.insert(Point2::new(0.5, 0.5));
        assert_eq!(idx.within(Point2::new(0.5, 0.5), 1.0), vec![id]);
        idx.relocate(id, Point2::new(8.5, 8.5));
        assert!(idx.within(Point2::new(0.5, 0.5), 1.0).is_empty());
        assert_eq!(idx.within(Point2::new(8.5, 8.5), 1.0), vec![id]);
        assert_eq!(idx.point(id), Point2::new(8.5, 8.5));
    }

    #[test]
    fn relocate_within_same_cell_updates_coordinate() {
        let mut idx = GridIndex::new(10.0, 10.0, 1.0);
        let id = idx.insert(Point2::new(2.1, 2.1));
        idx.relocate(id, Point2::new(2.9, 2.9));
        assert_eq!(idx.point(id), Point2::new(2.9, 2.9));
        // Query near the new spot hits, near the old spot (just out of
        // range of the new coordinate) misses.
        assert_eq!(idx.within(Point2::new(2.9, 2.9), 1.0), vec![id]);
        assert!(idx.within(Point2::new(1.5, 1.5), 1.0).is_empty());
    }

    #[test]
    fn relocate_matches_brute_force_after_random_moves() {
        let mut rng = rng_from_seed(11);
        let (w, h, r) = (8.0, 8.0, 0.5);
        let mut idx = GridIndex::new(w, h, r);
        let mut pts = Vec::new();
        for _ in 0..200 {
            let p = Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            idx.insert(p);
            pts.push(p);
        }
        for _ in 0..500 {
            let id = rng.random_range(0..pts.len());
            let p = Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            idx.relocate(id, p);
            pts[id] = p;
        }
        for _ in 0..50 {
            let q = Point2::new(rng.random_range(0.0..w), rng.random_range(0.0..h));
            let mut got = idx.within(q, r);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, q, r));
        }
    }

    #[test]
    fn boundary_points_are_indexed() {
        let mut idx = GridIndex::new(10.0, 10.0, 0.5);
        // Exactly on the far boundary: must clamp into the last cell.
        idx.insert(Point2::new(10.0, 10.0));
        let hits = idx.within(Point2::new(9.9, 9.9), 0.5);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn any_within_agrees_with_within() {
        let mut idx = GridIndex::new(4.0, 4.0, 1.0);
        idx.insert(Point2::new(1.0, 1.0));
        assert!(idx.any_within(Point2::new(1.5, 1.0), 1.0));
        assert!(!idx.any_within(Point2::new(3.5, 3.5), 1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds index cell size")]
    fn oversized_query_radius_panics() {
        let idx = GridIndex::new(4.0, 4.0, 0.5);
        let _ = idx.within(Point2::ORIGIN, 1.0);
    }

    #[test]
    fn query_point_outside_field_is_clamped_not_lost() {
        let mut idx = GridIndex::new(4.0, 4.0, 1.0);
        idx.insert(Point2::new(0.1, 0.1));
        // Query from slightly outside the field still finds the point.
        let hits = idx.within(Point2::new(-0.2, -0.2), 1.0);
        assert_eq!(hits, vec![0]);
    }
}
