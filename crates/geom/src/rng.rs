//! Deterministic, seedable randomness helpers.
//!
//! Every stochastic component in the workspace (deployments, randomized
//! protocol backoff, failure schedules) takes an explicit seed so that
//! experiments are exactly reproducible. This module centralises the RNG
//! construction and seed-derivation conventions.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used throughout the workspace.
pub type Rng = StdRng;

/// Build the workspace RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent sub-seed from a base seed and a stream index.
///
/// Experiments that need several independent random streams (e.g. one per
/// repetition, or one for deployment and one for failures) derive them from
/// a single user-facing seed with distinct stream indices, so that changing
/// one stream never perturbs another. This is a SplitMix64 step, which is a
/// bijective mixer with good avalanche behaviour.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_seed_is_stream_sensitive() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s2 = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // And deterministic.
        assert_eq!(s0, derive_seed(7, 0));
    }

    #[test]
    fn derived_streams_are_independent_of_insertion_order() {
        // Deriving stream 5 must not depend on whether stream 4 was derived.
        let direct = derive_seed(99, 5);
        let _ = derive_seed(99, 4);
        assert_eq!(direct, derive_seed(99, 5));
    }
}
