#![warn(missing_docs)]

//! 2-D geometry and node deployment for the dsnet reproduction.
//!
//! The paper evaluates its protocols on unit-disk networks deployed on
//! square fields of 8×8, 10×10 and 12×12 *units*, where one unit is 100 m
//! and the radio communication range is 50 m (= 0.5 units). This crate
//! provides the geometric substrate for those experiments:
//!
//! * [`Point2`] — a plain 2-D point with distance helpers,
//! * [`Region`] — a rectangular deployment field (with constructors for the
//!   paper's three field sizes),
//! * [`GridIndex`] — a uniform-grid spatial hash used to answer "who is in
//!   radio range of this point?" queries in O(neighbours) time,
//! * [`deploy`] — seeded placement generators, most importantly
//!   [`DeploymentStrategy::IncrementalConnected`], which mirrors the paper's dynamic
//!   node-move-in regime by ensuring every node lands within range of the
//!   already-deployed network.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

pub mod deploy;
pub mod point;
pub mod region;
pub mod rng;
pub mod spatial;

pub use deploy::{Deployment, DeploymentConfig, DeploymentStrategy};
pub use point::Point2;
pub use region::Region;
pub use spatial::GridIndex;

/// The paper's radio communication range, expressed in field units
/// (50 m with 1 unit = 100 m).
pub const PAPER_RANGE_UNITS: f64 = 0.5;

/// One field unit in metres, as specified in Section 6 of the paper.
pub const UNIT_METRES: f64 = 100.0;
