//! Rectangular deployment fields.

use crate::point::Point2;

/// An axis-aligned rectangular deployment field `[0, width] × [0, height]`,
/// measured in field units (1 unit = 100 m in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    width: f64,
    height: f64,
}

impl Region {
    /// A `width × height` field. Panics if either side is non-positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "region sides must be positive, got {width}×{height}"
        );
        Self { width, height }
    }

    /// A square `side × side` field.
    pub fn square(side: f64) -> Self {
        Self::new(side, side)
    }

    /// The paper's small field: 8×8 units.
    pub fn paper_8x8() -> Self {
        Self::square(8.0)
    }

    /// The paper's main field (all plotted results): 10×10 units.
    pub fn paper_10x10() -> Self {
        Self::square(10.0)
    }

    /// The paper's large field: 12×12 units.
    pub fn paper_12x12() -> Self {
        Self::square(12.0)
    }

    /// Field width in units.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height in units.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Field area in square units.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Centre of the field.
    pub fn center(&self) -> Point2 {
        Point2::new(self.width * 0.5, self.height * 0.5)
    }

    /// Whether `p` lies inside the field (boundary inclusive).
    pub fn contains(&self, p: Point2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamp `p` into the field.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// The expected average unit-disk degree for `n` uniformly placed nodes
    /// with communication radius `range` (ignoring boundary effects):
    /// `(n-1)·π·range² / area`. Useful for sizing experiments.
    pub fn expected_degree(&self, n: usize, range: f64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (n as f64 - 1.0) * std::f64::consts::PI * range * range / self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fields_have_expected_sizes() {
        assert_eq!(Region::paper_8x8().area(), 64.0);
        assert_eq!(Region::paper_10x10().area(), 100.0);
        assert_eq!(Region::paper_12x12().area(), 144.0);
    }

    #[test]
    fn contains_and_clamp_agree() {
        let r = Region::square(10.0);
        let inside = Point2::new(3.0, 9.9);
        let outside = Point2::new(-1.0, 12.0);
        assert!(r.contains(inside));
        assert!(!r.contains(outside));
        assert!(r.contains(r.clamp(outside)));
        assert_eq!(r.clamp(outside), Point2::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_region_panics() {
        let _ = Region::new(0.0, 5.0);
    }

    #[test]
    fn expected_degree_scales_linearly_in_n() {
        let r = Region::paper_10x10();
        let d100 = r.expected_degree(101, 0.5);
        let d200 = r.expected_degree(201, 0.5);
        assert!((d200 / d100 - 2.0).abs() < 1e-12);
        // π·0.25 ≈ 0.785 neighbours per 100 nodes on a 10×10 field.
        assert!((d100 - std::f64::consts::PI * 0.25).abs() < 1e-12);
    }

    #[test]
    fn center_is_inside() {
        let r = Region::new(4.0, 6.0);
        assert_eq!(r.center(), Point2::new(2.0, 3.0));
        assert!(r.contains(r.center()));
    }
}
