//! Backend-neutral readiness poller.
//!
//! A [`Poller`] tracks `(fd, token, interest)` registrations and
//! reports readiness as [`Event`]s. Two backends share the facade: a
//! portable `poll(2)` backend (the registration map is flattened into
//! a `pollfd` array per wait) and, on Linux, an epoll backend (tokens
//! ride in `epoll_event.data`). The backend is chosen per-poller at
//! construction; `DSNET_NETIO_BACKEND=poll|epoll` overrides the
//! platform default for A/B testing.

use std::io;

use crate::sys;

/// Readiness interest for one descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report. `error` covers ERR/HUP/NVAL — the owner
/// should read to EOF and close.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    Poll,
    #[cfg(target_os = "linux")]
    Epoll,
}

impl Backend {
    /// Platform default, overridable via `DSNET_NETIO_BACKEND`.
    pub fn default_for_platform() -> Backend {
        match std::env::var("DSNET_NETIO_BACKEND").as_deref() {
            Ok("poll") => return Backend::Poll,
            #[cfg(target_os = "linux")]
            Ok("epoll") => return Backend::Epoll,
            _ => {}
        }
        #[cfg(target_os = "linux")]
        {
            Backend::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }
}

enum Impl {
    Poll {
        /// (fd, token, interest); order is stable so the pollfd array
        /// lines up index-for-index on each wait.
        regs: Vec<(i32, usize, Interest)>,
        fds: Vec<sys::PollFd>,
    },
    #[cfg(target_os = "linux")]
    Epoll {
        ep: sys::EpollFd,
        buf: Vec<sys::EpollEvent>,
        len: usize,
    },
}

pub struct Poller {
    imp: Impl,
}

fn timeout_ms(timeout: Option<std::time::Duration>) -> i32 {
    match timeout {
        // Round up so a sub-millisecond deadline doesn't busy-spin at 0.
        Some(d) => {
            let mut ms = d.as_millis();
            if d.as_nanos() % 1_000_000 != 0 {
                ms += 1;
            }
            ms.min(i32::MAX as u128) as i32
        }
        None => -1,
    }
}

impl Poller {
    pub fn new(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Poll => Impl::Poll {
                regs: Vec::new(),
                fds: Vec::new(),
            },
            #[cfg(target_os = "linux")]
            Backend::Epoll => Impl::Epoll {
                ep: sys::EpollFd::create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
                len: 0,
            },
        };
        Ok(Poller { imp })
    }

    pub fn with_default_backend() -> io::Result<Poller> {
        Poller::new(Backend::default_for_platform())
    }

    pub fn backend(&self) -> Backend {
        match self.imp {
            Impl::Poll { .. } => Backend::Poll,
            #[cfg(target_os = "linux")]
            Impl::Epoll { .. } => Backend::Epoll,
        }
    }

    pub fn register(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Impl::Poll { regs, .. } => {
                debug_assert!(regs.iter().all(|&(f, _, _)| f != fd));
                regs.push((fd, token, interest));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Impl::Epoll { ep, len, .. } => {
                ep.ctl(sys::EPOLL_CTL_ADD, fd, epoll_mask(interest), token as u64)?;
                *len += 1;
                Ok(())
            }
        }
    }

    pub fn reregister(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Impl::Poll { regs, .. } => {
                for reg in regs.iter_mut() {
                    if reg.0 == fd {
                        reg.1 = token;
                        reg.2 = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
            #[cfg(target_os = "linux")]
            Impl::Epoll { ep, .. } => {
                ep.ctl(sys::EPOLL_CTL_MOD, fd, epoll_mask(interest), token as u64)
            }
        }
    }

    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        match &mut self.imp {
            Impl::Poll { regs, .. } => {
                regs.retain(|&(f, _, _)| f != fd);
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Impl::Epoll { ep, len, .. } => {
                ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)?;
                *len = len.saturating_sub(1);
                Ok(())
            }
        }
    }

    /// Wait for readiness, appending to `events` (cleared first).
    /// `None` blocks until an event arrives.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<std::time::Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let ms = timeout_ms(timeout);
        match &mut self.imp {
            Impl::Poll { regs, fds } => {
                fds.clear();
                fds.extend(regs.iter().map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: poll_mask(interest),
                    revents: 0,
                }));
                let n = sys::poll_fds(fds, ms)?;
                if n > 0 {
                    for (i, pfd) in fds.iter().enumerate() {
                        if pfd.revents == 0 {
                            continue;
                        }
                        events.push(Event {
                            token: regs[i].1,
                            readable: pfd.revents & sys::POLLIN != 0,
                            writable: pfd.revents & sys::POLLOUT != 0,
                            error: pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                        });
                    }
                }
                Ok(events.len())
            }
            #[cfg(target_os = "linux")]
            Impl::Epoll { ep, buf, len } => {
                if buf.len() < (*len).max(8) {
                    buf.resize((*len).max(8), sys::EpollEvent { events: 0, data: 0 });
                }
                let n = ep.wait(buf, ms)?;
                for ev in &buf[..n] {
                    let bits = ev.events;
                    events.push(Event {
                        token: ev.data as usize,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(n)
            }
        }
    }
}

fn poll_mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.readable {
        m |= sys::POLLIN;
    }
    if interest.writable {
        m |= sys::POLLOUT;
    }
    m
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut m = 0;
    if interest.readable {
        m |= sys::EPOLLIN;
    }
    if interest.writable {
        m |= sys::EPOLLOUT;
    }
    m
}
