//! Sharded readiness reactor.
//!
//! One acceptor thread owns the listening sockets and deals accepted
//! connections round-robin to `shards` worker threads; each worker
//! runs a [`Poller`] event loop multiplexing its share of connections
//! through per-connection [`FrameReader`]/[`FrameWriter`] state
//! machines. Protocol logic lives behind the [`Handler`] trait: the
//! reactor hands every readiness burst's *complete* frames to the
//! handler in one call (enabling batched application downstream) and
//! flushes whatever the handler queued as the sockets allow — frames
//! are never torn or interleaved.
//!
//! Out-of-band senders (watch streams) get a [`PushHandle`]: a
//! cross-thread queue plus shard wakeup that merges pushed frames
//! into the connection's writer *between* handler calls, so a reply
//! queued while handling a frame always precedes later pushes.
//!
//! Lifecycle mirrors dsnet-server's two-stage shutdown: `begin_drain`
//! stops the acceptor (existing connections keep being served),
//! `wait_idle` waits out a grace period, `hard_stop` flushes pending
//! writes within a bounded budget and closes everything at frame
//! boundaries, `join` reaps the threads. All transitions ride wakers,
//! not sleep ticks, so shutdown latency is bounded by the reactor.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::frames::{FrameError, FrameReader, FrameWriter};
use crate::poller::{Event, Interest, Poller};
use crate::sys;
use crate::wake::{wake_pair, WakeReader, Waker};

/// Byte-stream transport the reactor can drive. Implemented for TCP
/// and unix-domain streams.
pub trait NetStream: Read + Write + Send {
    fn raw_fd(&self) -> i32;
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
}

impl NetStream for TcpStream {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
}

impl NetStream for UnixStream {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }
}

/// A listening socket handed to the reactor's acceptor.
pub enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn raw_fd(&self) -> i32 {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l) => l.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Box<dyn NetStream>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // Single-write frames + NODELAY dodge the 40ms
                // Nagle/delayed-ACK stall (see dsnet-server protocol).
                let _ = s.set_nodelay(true);
                Ok(Box::new(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }
}

/// What to do with the connection after a handler call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    Continue,
    /// Flush queued replies, then close.
    Close,
}

/// Per-connection protocol logic, driven by a shard thread.
pub trait Handler: Send {
    /// All complete frames decoded from one readiness burst, in wire
    /// order. Replies queued via [`ConnCx::send`] are flushed after
    /// this returns and always precede frames pushed concurrently
    /// through a [`PushHandle`].
    fn on_frames(&mut self, frames: Vec<Vec<u8>>, cx: &mut ConnCx<'_>) -> Action;

    /// Unrecoverable frame-level fault (oversized declared length).
    /// Any reply queued here is flushed, then the connection closes.
    fn on_bad_frame(&mut self, err: &FrameError, cx: &mut ConnCx<'_>);

    /// The connection is gone (peer EOF, error, deadline, shutdown).
    /// Runs exactly once, after which no more handler calls occur.
    fn on_close(&mut self) {}
}

/// Handler-facing view of one connection during a callback.
pub struct ConnCx<'a> {
    writer: &'a mut FrameWriter,
    shared: &'a Arc<ConnShared>,
}

impl ConnCx<'_> {
    /// Queue one reply payload (length prefix added by the writer).
    pub fn send(&mut self, payload: &[u8]) {
        self.writer.push_payload(payload);
    }

    /// Handle for pushing frames to this connection from other
    /// threads (watch streams).
    pub fn push_handle(&self) -> PushHandle {
        PushHandle(Arc::clone(self.shared))
    }
}

struct ConnShared {
    queue: Mutex<VecDeque<Vec<u8>>>,
    closed: AtomicBool,
    /// True while this token sits in the shard's pending list —
    /// bounds the list to one entry per connection.
    enqueued: AtomicBool,
    token: usize,
    shard: Arc<ShardHandle>,
}

/// Cross-thread frame injector for one connection.
#[derive(Clone)]
pub struct PushHandle(Arc<ConnShared>);

impl PushHandle {
    /// Queue a payload for delivery and wake the owning shard.
    /// Returns false once the connection is gone — senders should
    /// unregister themselves on false.
    pub fn push(&self, payload: Vec<u8>) -> bool {
        if self.0.closed.load(Ordering::Acquire) {
            return false;
        }
        self.0.queue.lock().unwrap().push_back(payload);
        if !self.0.enqueued.swap(true, Ordering::AcqRel) {
            self.0.shard.pending.lock().unwrap().push(self.0.token);
        }
        self.0.shard.waker.wake();
        true
    }

    pub fn is_closed(&self) -> bool {
        self.0.closed.load(Ordering::Acquire)
    }
}

/// Reactor tuning knobs.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Worker event loops; 0 means `min(available cores, 8)`.
    pub shards: usize,
    /// Frame payload cap enforced at the reader.
    pub max_frame: usize,
    /// Close a connection that has been parked mid-frame for this
    /// long. `None` waits forever (matches the old blocking daemon).
    pub read_deadline: Option<Duration>,
    /// Total budget for flushing pending writes during a hard stop.
    pub hard_stop_flush: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            shards: 0,
            max_frame: 1 << 20,
            read_deadline: Some(Duration::from_secs(30)),
            hard_stop_flush: Duration::from_millis(500),
        }
    }
}

fn resolve_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.clamp(1, 8)
}

pub type HandlerFactory = Arc<dyn Fn() -> Box<dyn Handler> + Send + Sync>;

struct ReactorShared {
    stop_accept: AtomicBool,
    hard: AtomicBool,
    exit: AtomicBool,
    conns: Mutex<usize>,
    idle: Condvar,
}

impl ReactorShared {
    fn conn_opened(&self) {
        *self.conns.lock().unwrap() += 1;
    }

    fn conn_closed(&self) {
        let mut n = self.conns.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }
}

struct ShardHandle {
    waker: Waker,
    inject: Mutex<Vec<Box<dyn NetStream>>>,
    pending: Mutex<Vec<usize>>,
}

/// A running sharded reactor. See the module docs for the lifecycle.
pub struct Reactor {
    shared: Arc<ReactorShared>,
    shards: Vec<Arc<ShardHandle>>,
    accept_waker: Waker,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
    shard_count: usize,
}

impl Reactor {
    pub fn start(
        listeners: Vec<Listener>,
        factory: HandlerFactory,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        let shard_count = resolve_shards(config.shards);
        let shared = Arc::new(ReactorShared {
            stop_accept: AtomicBool::new(false),
            hard: AtomicBool::new(false),
            exit: AtomicBool::new(false),
            conns: Mutex::new(0),
            idle: Condvar::new(),
        });

        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count + 1);
        for i in 0..shard_count {
            let (waker, wake_reader) = wake_pair()?;
            let handle = Arc::new(ShardHandle {
                waker,
                inject: Mutex::new(Vec::new()),
                pending: Mutex::new(Vec::new()),
            });
            let mut shard = Shard::new(
                Arc::clone(&handle),
                Arc::clone(&shared),
                Arc::clone(&factory),
                wake_reader,
                config.clone(),
            )?;
            threads.push(
                thread::Builder::new()
                    .name(format!("netio-shard-{i}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard"),
            );
            shards.push(handle);
        }

        let (accept_waker, accept_wake_reader) = wake_pair()?;
        let acceptor = Acceptor {
            listeners,
            shards: shards.clone(),
            shared: Arc::clone(&shared),
            wake_reader: accept_wake_reader,
        };
        threads.push(
            thread::Builder::new()
                .name("netio-accept".into())
                .spawn(move || acceptor.run())
                .expect("spawn acceptor"),
        );

        Ok(Reactor {
            shared,
            shards,
            accept_waker,
            threads: Mutex::new(threads),
            shard_count,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    pub fn conn_count(&self) -> usize {
        *self.shared.conns.lock().unwrap()
    }

    /// Stop accepting new connections; existing ones keep being
    /// served. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.stop_accept.store(true, Ordering::Release);
        self.accept_waker.wake();
    }

    /// Wait up to `timeout` for every connection to close. Returns
    /// true when the reactor went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut conns = self.shared.conns.lock().unwrap();
        while *conns > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(conns, deadline - now)
                .unwrap();
            conns = guard;
        }
        true
    }

    /// Flush pending writes within the configured budget and close
    /// every remaining connection at a frame boundary.
    pub fn hard_stop(&self) {
        self.shared.hard.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.waker.wake();
        }
    }

    /// Stop everything and reap the threads. Remaining connections
    /// are closed as in [`Reactor::hard_stop`]. Idempotent.
    pub fn join(&self) {
        self.shared.stop_accept.store(true, Ordering::Release);
        self.shared.hard.store(true, Ordering::Release);
        self.shared.exit.store(true, Ordering::Release);
        self.accept_waker.wake();
        for shard in &self.shards {
            shard.waker.wake();
        }
        let handles: Vec<_> = self.threads.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

struct Acceptor {
    listeners: Vec<Listener>,
    shards: Vec<Arc<ShardHandle>>,
    shared: Arc<ReactorShared>,
    wake_reader: WakeReader,
}

impl Acceptor {
    fn run(mut self) {
        const WAKE: usize = usize::MAX;
        let mut poller = match Poller::with_default_backend() {
            Ok(p) => p,
            Err(_) => return,
        };
        for (i, l) in self.listeners.iter().enumerate() {
            if l.set_nonblocking().is_err()
                || poller.register(l.raw_fd(), i, Interest::READ).is_err()
            {
                return;
            }
        }
        if poller
            .register(self.wake_reader.fd(), WAKE, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        let mut rr = 0usize;
        loop {
            if self.shared.stop_accept.load(Ordering::Acquire) {
                // Dropping the listeners closes them: new connects are
                // refused from this point on.
                return;
            }
            if poller.wait(&mut events, None).is_err() {
                return;
            }
            for ev in events.iter() {
                if ev.token == WAKE {
                    self.wake_reader.drain();
                    continue;
                }
                let listener = &self.listeners[ev.token];
                loop {
                    match listener.accept() {
                        Ok(stream) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let shard = &self.shards[rr % self.shards.len()];
                            rr = rr.wrapping_add(1);
                            self.shared.conn_opened();
                            shard.inject.lock().unwrap().push(stream);
                            shard.waker.wake();
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        // Transient per-connection accept failures
                        // (ECONNABORTED etc.): keep listening.
                        Err(_) => break,
                    }
                }
            }
        }
    }
}

const WAKE_TOKEN: usize = usize::MAX;
const READ_BURST_CAP: usize = 256 * 1024;

struct Conn {
    stream: Box<dyn NetStream>,
    fd: i32,
    reader: FrameReader,
    writer: FrameWriter,
    handler: Box<dyn Handler>,
    shared: Arc<ConnShared>,
    /// Flush queued writes, then close. Reads stop immediately.
    closing: bool,
    /// When the reader first went mid-frame (cleared on progress).
    mid_since: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: Interest,
}

struct Shard {
    handle: Arc<ShardHandle>,
    shared: Arc<ReactorShared>,
    factory: HandlerFactory,
    poller: Poller,
    wake_reader: WakeReader,
    config: ReactorConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Connections currently mid-frame; deadline scans only run when
    /// this is non-zero, so the steady path stays O(events).
    mid_count: usize,
}

impl Shard {
    fn new(
        handle: Arc<ShardHandle>,
        shared: Arc<ReactorShared>,
        factory: HandlerFactory,
        wake_reader: WakeReader,
        config: ReactorConfig,
    ) -> io::Result<Shard> {
        let mut poller = Poller::with_default_backend()?;
        poller.register(wake_reader.fd(), WAKE_TOKEN, Interest::READ)?;
        Ok(Shard {
            handle,
            shared,
            factory,
            poller,
            wake_reader,
            config,
            conns: Vec::new(),
            free: Vec::new(),
            mid_count: 0,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.hard.load(Ordering::Acquire) {
                self.hard_close_all();
                if self.shared.exit.load(Ordering::Acquire) {
                    return;
                }
            }
            let timeout = self.next_deadline_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                self.hard_close_all();
                return;
            }
            let mut woke = false;
            let turn: Vec<Event> = events.clone();
            for ev in turn {
                if ev.token == WAKE_TOKEN {
                    woke = true;
                    continue;
                }
                self.handle_event(ev);
            }
            if woke {
                self.wake_reader.drain();
            }
            self.register_injected();
            self.process_pushes();
            self.enforce_deadlines();
        }
    }

    fn next_deadline_timeout(&self) -> Option<Duration> {
        let deadline = self.config.read_deadline?;
        if self.mid_count == 0 {
            return None;
        }
        let now = Instant::now();
        let mut min: Option<Duration> = None;
        for conn in self.conns.iter().flatten() {
            if let Some(since) = conn.mid_since {
                let remain = (since + deadline).saturating_duration_since(now);
                min = Some(match min {
                    Some(m) => m.min(remain),
                    None => remain,
                });
            }
        }
        min
    }

    fn is_open(&self, token: usize) -> bool {
        self.conns.get(token).is_some_and(|slot| slot.is_some())
    }

    fn handle_event(&mut self, ev: Event) {
        let token = ev.token;
        if !self.is_open(token) {
            return; // closed earlier this turn; stale event
        }
        if (ev.readable || ev.error) && self.read_burst(token) {
            return;
        }
        if ev.writable && self.is_open(token) {
            self.flush_conn(token);
        }
    }

    /// Read everything the socket has (bounded per burst), hand the
    /// complete frames to the handler, and flush replies. Returns
    /// true when the connection was closed.
    fn read_burst(&mut self, token: usize) -> bool {
        let hard = self.shared.hard.load(Ordering::Acquire);
        let mut fatal = false;
        let mut mid_delta = 0i32;
        {
            let conn = self.conns[token].as_mut().unwrap();
            let mut eof = false;
            if !conn.closing && !hard {
                let mut buf = [0u8; 16 * 1024];
                let mut total = 0usize;
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            conn.reader.extend(&buf[..n]);
                            total += n;
                            // Level-triggered: leftover readiness
                            // re-reports next turn, so capping a
                            // firehose is fair, not lossy.
                            if total >= READ_BURST_CAP {
                                break;
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            fatal = true;
                            break;
                        }
                    }
                }
            } else {
                // Closing or hard-stopping: ignore further input.
                eof = true;
            }

            let mut frames: Vec<Vec<u8>> = Vec::new();
            let mut bad: Option<FrameError> = None;
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(f)) => frames.push(f),
                    Ok(None) => break,
                    Err(e) => {
                        bad = Some(e);
                        break;
                    }
                }
            }

            if !frames.is_empty() && !conn.closing {
                let mut cx = ConnCx {
                    writer: &mut conn.writer,
                    shared: &conn.shared,
                };
                if conn.handler.on_frames(frames, &mut cx) == Action::Close {
                    conn.closing = true;
                }
            }
            if let Some(err) = bad {
                if !conn.closing {
                    let mut cx = ConnCx {
                        writer: &mut conn.writer,
                        shared: &conn.shared,
                    };
                    conn.handler.on_bad_frame(&err, &mut cx);
                }
                conn.closing = true;
            }
            if eof {
                // Peer half-closed (or we stopped reading): flush any
                // queued replies, then close.
                conn.closing = true;
            }

            // Mid-frame bookkeeping for read deadlines.
            let mid = conn.reader.mid_frame() && !conn.closing && !fatal;
            match (conn.mid_since.is_some(), mid) {
                (false, true) => {
                    conn.mid_since = Some(Instant::now());
                    mid_delta = 1;
                }
                (true, false) => {
                    conn.mid_since = None;
                    mid_delta = -1;
                }
                // Progress within a still-incomplete frame resets the
                // stall clock.
                (true, true) => conn.mid_since = Some(Instant::now()),
                (false, false) => {}
            }
        }
        if mid_delta > 0 {
            self.mid_count += 1;
        } else if mid_delta < 0 {
            self.mid_count -= 1;
        }
        if fatal {
            self.close_conn(token);
            return true;
        }
        self.flush_conn(token)
    }

    /// Flush the writer; arm/disarm write interest; close once a
    /// draining connection empties. Returns true if closed.
    fn flush_conn(&mut self, token: usize) -> bool {
        let conn = self.conns[token].as_mut().unwrap();
        match conn.writer.flush_into(&mut conn.stream) {
            Ok(true) => {
                if conn.closing {
                    self.close_conn(token);
                    return true;
                }
                if conn.interest != Interest::READ {
                    conn.interest = Interest::READ;
                    let fd = conn.fd;
                    let _ = self.poller.reregister(fd, token, Interest::READ);
                }
                false
            }
            Ok(false) => {
                // A closing connection must not keep read interest:
                // unread input would spin the level-triggered poller.
                let want = if conn.closing {
                    Interest::WRITE
                } else {
                    Interest::BOTH
                };
                if conn.interest != want {
                    conn.interest = want;
                    let fd = conn.fd;
                    let _ = self.poller.reregister(fd, token, want);
                }
                false
            }
            Err(_) => {
                self.close_conn(token);
                true
            }
        }
    }

    fn register_injected(&mut self) {
        loop {
            let stream = {
                let mut inject = self.handle.inject.lock().unwrap();
                match inject.pop() {
                    Some(s) => s,
                    None => return,
                }
            };
            if self.shared.hard.load(Ordering::Acquire) {
                self.shared.conn_closed();
                continue;
            }
            let token = match self.free.pop() {
                Some(t) => t,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let fd = stream.raw_fd();
            if self.poller.register(fd, token, Interest::READ).is_err() {
                self.free.push(token);
                self.shared.conn_closed();
                continue;
            }
            let shared = Arc::new(ConnShared {
                queue: Mutex::new(VecDeque::new()),
                closed: AtomicBool::new(false),
                enqueued: AtomicBool::new(false),
                token,
                shard: Arc::clone(&self.handle),
            });
            self.conns[token] = Some(Conn {
                stream,
                fd,
                reader: FrameReader::new(self.config.max_frame),
                writer: FrameWriter::new(),
                handler: (self.factory)(),
                shared,
                closing: false,
                mid_since: None,
                interest: Interest::READ,
            });
            // The peer may have written before registration; the
            // level-triggered poller reports it on the next wait.
        }
    }

    fn process_pushes(&mut self) {
        let tokens: Vec<usize> = {
            let mut pending = self.handle.pending.lock().unwrap();
            std::mem::take(&mut *pending)
        };
        for token in tokens {
            let mut queued = false;
            if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
                // Clear the flag before draining: a concurrent push
                // after this point re-enqueues and re-wakes.
                conn.shared.enqueued.store(false, Ordering::Release);
                loop {
                    let payload = {
                        let mut q = conn.shared.queue.lock().unwrap();
                        match q.pop_front() {
                            Some(p) => p,
                            None => break,
                        }
                    };
                    conn.writer.push_payload(&payload);
                    queued = true;
                }
            }
            if queued {
                self.flush_conn(token);
            }
        }
    }

    fn enforce_deadlines(&mut self) {
        let Some(deadline) = self.config.read_deadline else {
            return;
        };
        if self.mid_count == 0 {
            return;
        }
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(t, c)| {
                let since = c.as_ref()?.mid_since?;
                (now.saturating_duration_since(since) >= deadline).then_some(t)
            })
            .collect();
        for token in expired {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        let Some(mut conn) = self.conns[token].take() else {
            return;
        };
        if conn.mid_since.is_some() {
            self.mid_count -= 1;
        }
        conn.shared.closed.store(true, Ordering::Release);
        let _ = self.poller.deregister(conn.fd);
        conn.handler.on_close();
        self.free.push(token);
        drop(conn);
        self.shared.conn_closed();
    }

    /// Hard stop: flush what we can within the budget, then close
    /// everything. Writes stop at frame boundaries whenever the
    /// budget allows the in-flight frame to complete.
    fn hard_close_all(&mut self) {
        let budget = Instant::now() + self.config.hard_stop_flush;
        for token in 0..self.conns.len() {
            {
                let Some(conn) = self.conns[token].as_mut() else {
                    continue;
                };
                while !conn.writer.is_empty() {
                    match conn.writer.flush_into(&mut conn.stream) {
                        Ok(true) => break,
                        Ok(false) => {
                            let now = Instant::now();
                            if now >= budget {
                                break;
                            }
                            let remain_ms = (budget - now).as_millis().max(1) as i32;
                            let mut fds = [sys::PollFd {
                                fd: conn.fd,
                                events: sys::POLLOUT,
                                revents: 0,
                            }];
                            if sys::poll_fds(&mut fds, remain_ms).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            self.close_conn(token);
        }
        // Connections injected but never registered still count.
        let orphans = {
            let mut inject = self.handle.inject.lock().unwrap();
            std::mem::take(&mut *inject)
        };
        for _ in orphans {
            self.shared.conn_closed();
        }
    }
}
