//! Minimal libc bindings for readiness polling.
//!
//! std already links libc, so — exactly like the `signal()` shim in
//! dsnet-server — we declare the handful of symbols we need instead of
//! pulling in a libc crate (no registry access in this environment).
//! Only `poll(2)` is required for correctness; on Linux an epoll
//! backend is available behind the same [`crate::poller::Poller`]
//! facade for large descriptor sets.

use std::io;
use std::os::raw::{c_int, c_ulong};

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocking `poll(2)` over `fds`; `timeout_ms < 0` blocks forever.
/// Retries on EINTR. Returns the number of descriptors with events.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::os::raw::c_int;

    /// `struct epoll_event`: packed on x86-64 (kernel ABI quirk),
    /// naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Owned epoll instance; the fd is closed on drop.
    pub struct EpollFd(c_int);

    impl EpollFd {
        pub fn create() -> io::Result<EpollFd> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollFd(fd))
        }

        pub fn ctl(&self, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            let ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            let rc = unsafe { epoll_ctl(self.0, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// `timeout_ms < 0` blocks forever; retries on EINTR.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let rc = unsafe {
                    epoll_wait(
                        self.0,
                        events.as_mut_ptr(),
                        events.len() as c_int,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for EpollFd {
        fn drop(&mut self) {
            unsafe {
                close(self.0);
            }
        }
    }
}
