//! Tear-free length-prefixed frame buffers for non-blocking streams.
//!
//! The wire format is dsnet-server's: a 4-byte big-endian payload
//! length followed by the payload, with a hard cap on payload size.
//! [`FrameReader`] accumulates whatever bytes the socket yields and
//! only ever surfaces *complete* payloads; [`FrameWriter`] queues
//! whole frames and flushes as far as the socket allows, tracking the
//! partial-write offset so a frame is never interleaved or torn.

use std::collections::VecDeque;
use std::io::{self, Write};

/// Length prefix size in bytes (big-endian u32).
pub const LEN_PREFIX: usize = 4;

/// Frame-level fault: the connection is unrecoverable after this
/// (the reader can no longer find the next frame boundary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds the reader's cap.
    Oversized { len: usize, max: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds {max} byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder over a byte stream.
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameReader {
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the dead prefix dominates.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Pop the next complete payload, `Ok(None)` if more bytes are
    /// needed, or an unrecoverable [`FrameError`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = self.pending();
        if pending.len() < LEN_PREFIX {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.max_frame {
            return Err(FrameError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if pending.len() < LEN_PREFIX + len {
            return Ok(None);
        }
        let frame = pending[LEN_PREFIX..LEN_PREFIX + len].to_vec();
        self.start += LEN_PREFIX + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(frame))
    }

    /// True while buffered bytes form only part of a frame (partial
    /// header or partial payload). Used for per-connection read
    /// deadlines: a peer that parks mid-frame is a stall, a peer with
    /// an empty buffer is merely idle.
    pub fn mid_frame(&self) -> bool {
        !self.pending().is_empty()
    }

    /// Bytes buffered but not yet surfaced as frames.
    pub fn buffered(&self) -> usize {
        self.pending().len()
    }
}

/// Outbound frame queue with partial-flush tracking.
#[derive(Default)]
pub struct FrameWriter {
    queue: VecDeque<Vec<u8>>,
    /// Offset into `queue[0]` already written to the socket.
    pos: usize,
}

impl FrameWriter {
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Queue a payload; the length prefix is prepended here so each
    /// queued buffer is one wire frame.
    pub fn push_payload(&mut self, payload: &[u8]) {
        let mut frame = Vec::with_capacity(LEN_PREFIX + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        self.queue.push_back(frame);
    }

    /// Flush as much as the socket accepts. Returns `Ok(true)` when
    /// the queue is drained, `Ok(false)` on WouldBlock (caller should
    /// arm write interest), and errors for real socket failures.
    pub fn flush_into<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            match w.write(&front[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket wrote 0"));
                }
                Ok(n) => {
                    self.pos += n;
                    if self.pos == front.len() {
                        self.queue.pop_front();
                        self.pos = 0;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when no frame is partially written — the hard-stop close
    /// point that never tears a frame on the wire.
    pub fn at_frame_boundary(&self) -> bool {
        self.pos == 0
    }

    pub fn pending_bytes(&self) -> usize {
        self.queue.iter().map(Vec::len).sum::<usize>() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(payload: &[u8]) -> Vec<u8> {
        let mut v = (payload.len() as u32).to_be_bytes().to_vec();
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn reassembles_frames_from_single_byte_drips() {
        let mut r = FrameReader::new(64);
        let bytes = [wire(b"hello"), wire(b""), wire(b"world!")].concat();
        let mut out = Vec::new();
        for b in bytes {
            r.extend(&[b]);
            while let Some(f) = r.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(
            out,
            vec![b"hello".to_vec(), b"".to_vec(), b"world!".to_vec()]
        );
        assert!(!r.mid_frame());
    }

    #[test]
    fn coalesced_frames_pop_individually() {
        let mut r = FrameReader::new(64);
        let bytes = [wire(b"a"), wire(b"bb"), wire(b"ccc")].concat();
        r.extend(&bytes);
        assert_eq!(r.next_frame().unwrap().unwrap(), b"a");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"bb");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"ccc");
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn mid_frame_tracks_partial_header_and_payload() {
        let mut r = FrameReader::new(64);
        assert!(!r.mid_frame());
        r.extend(&[0, 0]); // half a header
        assert_eq!(r.next_frame().unwrap(), None);
        assert!(r.mid_frame());
        r.extend(&[0, 5, b'x']); // header complete, 1/5 payload bytes
        assert_eq!(r.next_frame().unwrap(), None);
        assert!(r.mid_frame());
        r.extend(b"yzzy");
        assert_eq!(r.next_frame().unwrap().unwrap(), b"xyzzy");
        assert!(!r.mid_frame());
    }

    #[test]
    fn oversized_header_is_unrecoverable() {
        let mut r = FrameReader::new(16);
        r.extend(&wire(&[0u8; 17]));
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Oversized { len: 17, max: 16 })
        );
        // Still stuck: the error repeats rather than resyncing.
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn compaction_preserves_stream_position() {
        let mut r = FrameReader::new(1024);
        let mut expect = Vec::new();
        let mut stream = Vec::new();
        for i in 0..200u32 {
            let payload = vec![i as u8; (i % 57) as usize];
            stream.extend_from_slice(&wire(&payload));
            expect.push(payload);
        }
        let mut got = Vec::new();
        for chunk in stream.chunks(13) {
            r.extend(chunk);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, expect);
    }

    /// Writer that accepts only `cap` bytes per call, then WouldBlock.
    struct Throttle {
        out: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.out.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_flush_never_tears_or_reorders_frames() {
        let mut w = FrameWriter::new();
        w.push_payload(b"first frame");
        w.push_payload(b"second");
        w.push_payload(&[7u8; 300]);
        let mut sink = Throttle {
            out: Vec::new(),
            cap: 5,
            budget: 0,
        };
        let mut boundary_breaks = 0;
        while !w.is_empty() {
            sink.budget = 7;
            let drained = w.flush_into(&mut sink).unwrap();
            if !drained {
                assert!(w.pending_bytes() > 0);
            }
            if !w.at_frame_boundary() {
                boundary_breaks += 1;
            }
        }
        assert!(w.at_frame_boundary());
        assert!(boundary_breaks > 0, "test must exercise mid-frame pauses");
        let expect = [wire(b"first frame"), wire(b"second"), wire(&[7u8; 300])].concat();
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn roundtrip_writer_to_reader() {
        let mut w = FrameWriter::new();
        for i in 0..50 {
            w.push_payload(format!("payload-{i}").as_bytes());
        }
        let mut sink = Throttle {
            out: Vec::new(),
            cap: 9,
            budget: usize::MAX,
        };
        assert!(w.flush_into(&mut sink).unwrap());
        let mut r = FrameReader::new(1 << 20);
        r.extend(&sink.out);
        for i in 0..50 {
            let f = r.next_frame().unwrap().unwrap();
            assert_eq!(f, format!("payload-{i}").as_bytes());
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }
}
