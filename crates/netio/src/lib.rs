//! dsnet-netio — readiness-driven network I/O for dsnet-server.
//!
//! A bottom-layer crate (no dsnet dependencies) providing everything
//! the multi-tenant daemon needs to get past thread-per-connection:
//!
//! - [`sys`]: hand-rolled `poll(2)`/epoll libc bindings, in the same
//!   declare-what-you-need style as dsnet-server's `signal()` shim.
//! - [`poller`]: a backend-neutral readiness [`poller::Poller`]
//!   (portable `poll(2)`; epoll on Linux, the platform default).
//! - [`wake`]: socketpair wakers for cross-thread (and signal-safe)
//!   poller wakeups.
//! - [`frames`]: tear-free length-prefixed frame readers/writers for
//!   non-blocking sockets.
//! - [`reactor`]: the sharded [`reactor::Reactor`] — an acceptor
//!   thread plus `shards` event-loop workers multiplexing all
//!   connections, with per-connection protocol state behind the
//!   [`reactor::Handler`] trait, [`reactor::PushHandle`]s for watch
//!   streams, per-connection read deadlines, and the two-stage
//!   drain/hard-stop shutdown the daemon's tests pin down.

pub mod frames;
pub mod poller;
pub mod reactor;
pub mod sys;
pub mod wake;

pub use frames::{FrameError, FrameReader, FrameWriter, LEN_PREFIX};
pub use poller::{Backend, Event, Interest, Poller};
pub use reactor::{
    Action, ConnCx, Handler, HandlerFactory, Listener, NetStream, PushHandle, Reactor,
    ReactorConfig,
};
pub use wake::{wake_pair, WakeReader, Waker};

#[cfg(test)]
mod reactor_tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Echo handler: every frame comes straight back; "quit" closes.
    struct Echo;

    impl Handler for Echo {
        fn on_frames(&mut self, frames: Vec<Vec<u8>>, cx: &mut ConnCx<'_>) -> Action {
            let mut action = Action::Continue;
            for f in frames {
                if f == b"quit" {
                    action = Action::Close;
                }
                cx.send(&f);
            }
            action
        }
        fn on_bad_frame(&mut self, _err: &FrameError, cx: &mut ConnCx<'_>) {
            cx.send(b"too big");
        }
    }

    fn start_echo(shards: usize) -> (Reactor, std::net::SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::start(
            vec![Listener::Tcp(listener)],
            Arc::new(|| Box::new(Echo) as Box<dyn Handler>),
            ReactorConfig {
                shards,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        (reactor, addr)
    }

    fn send_frame(s: &mut TcpStream, payload: &[u8]) {
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(payload);
        s.write_all(&buf).unwrap();
    }

    fn read_frame(s: &mut TcpStream) -> Vec<u8> {
        let mut len = [0u8; 4];
        s.read_exact(&mut len).unwrap();
        let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
        s.read_exact(&mut payload).unwrap();
        payload
    }

    #[test]
    fn echo_roundtrip_many_conns_single_shard() {
        let (reactor, addr) = start_echo(1);
        let mut streams: Vec<TcpStream> =
            (0..16).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, s) in streams.iter_mut().enumerate() {
            send_frame(s, format!("hello-{i}").as_bytes());
        }
        for (i, s) in streams.iter_mut().enumerate() {
            assert_eq!(read_frame(s), format!("hello-{i}").as_bytes());
        }
        drop(streams);
        assert!(reactor.wait_idle(Duration::from_secs(5)));
        reactor.join();
    }

    #[test]
    fn pipelined_frames_echo_in_order() {
        let (reactor, addr) = start_echo(2);
        let mut s = TcpStream::connect(addr).unwrap();
        let mut blob = Vec::new();
        for i in 0..100u32 {
            let payload = format!("frame-{i}");
            blob.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            blob.extend_from_slice(payload.as_bytes());
        }
        s.write_all(&blob).unwrap();
        for i in 0..100u32 {
            assert_eq!(read_frame(&mut s), format!("frame-{i}").as_bytes());
        }
        drop(s);
        reactor.join();
    }

    #[test]
    fn action_close_flushes_reply_then_closes() {
        let (reactor, addr) = start_echo(1);
        let mut s = TcpStream::connect(addr).unwrap();
        send_frame(&mut s, b"quit");
        assert_eq!(read_frame(&mut s), b"quit");
        let mut byte = [0u8; 1];
        assert_eq!(s.read(&mut byte).unwrap(), 0, "server closes after reply");
        reactor.join();
    }

    #[test]
    fn oversized_frame_gets_reply_then_close() {
        let (reactor, addr) = start_echo(1);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert_eq!(read_frame(&mut s), b"too big");
        let mut byte = [0u8; 1];
        assert_eq!(s.read(&mut byte).unwrap(), 0);
        reactor.join();
    }

    #[test]
    fn drain_refuses_new_connections_but_serves_existing() {
        let (reactor, addr) = start_echo(1);
        let mut s = TcpStream::connect(addr).unwrap();
        send_frame(&mut s, b"pre-drain");
        assert_eq!(read_frame(&mut s), b"pre-drain");
        reactor.begin_drain();
        // The acceptor exits and drops the listener; a fresh connect
        // must fail once the close lands (racy by nature, so retry).
        let mut refused = false;
        for _ in 0..100 {
            match TcpStream::connect(addr) {
                Err(_) => {
                    refused = true;
                    break;
                }
                Ok(victim) => {
                    // Connected into the dead backlog: a read sees EOF
                    // or reset rather than service.
                    victim
                        .set_read_timeout(Some(Duration::from_millis(50)))
                        .unwrap();
                    drop(victim);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        assert!(refused, "new connections must be refused after drain");
        // The pre-drain connection still echoes.
        send_frame(&mut s, b"post-drain");
        assert_eq!(read_frame(&mut s), b"post-drain");
        drop(s);
        assert!(reactor.wait_idle(Duration::from_secs(5)));
        reactor.join();
    }

    #[test]
    fn hard_stop_closes_lingering_conns() {
        let (reactor, addr) = start_echo(2);
        let mut streams: Vec<TcpStream> =
            (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for s in streams.iter_mut() {
            send_frame(s, b"ping");
            assert_eq!(read_frame(s), b"ping");
        }
        assert_eq!(reactor.conn_count(), 4);
        reactor.hard_stop();
        for s in streams.iter_mut() {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut byte = [0u8; 1];
            assert_eq!(s.read(&mut byte).unwrap_or(0), 0, "conn must be closed");
        }
        assert!(reactor.wait_idle(Duration::from_secs(5)));
        reactor.join();
    }

    /// A handler whose on_close bumps a counter — proves exactly-once
    /// close notification over churny connections.
    struct CountingClose(Arc<AtomicUsize>);

    impl Handler for CountingClose {
        fn on_frames(&mut self, frames: Vec<Vec<u8>>, cx: &mut ConnCx<'_>) -> Action {
            for f in frames {
                cx.send(&f);
            }
            Action::Continue
        }
        fn on_bad_frame(&mut self, _err: &FrameError, _cx: &mut ConnCx<'_>) {}
        fn on_close(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn on_close_fires_once_per_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let closes = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&closes);
        let reactor = Reactor::start(
            vec![Listener::Tcp(listener)],
            Arc::new(move || Box::new(CountingClose(Arc::clone(&c2))) as Box<dyn Handler>),
            ReactorConfig {
                shards: 2,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            let mut s = TcpStream::connect(addr).unwrap();
            send_frame(&mut s, format!("c{i}").as_bytes());
            assert_eq!(read_frame(&mut s), format!("c{i}").as_bytes());
        }
        assert!(reactor.wait_idle(Duration::from_secs(5)));
        reactor.join();
        assert_eq!(closes.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn read_deadline_closes_stalled_conn_while_neighbor_progresses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::start(
            vec![Listener::Tcp(listener)],
            Arc::new(|| Box::new(Echo) as Box<dyn Handler>),
            ReactorConfig {
                shards: 1, // both conns share one event loop
                read_deadline: Some(Duration::from_millis(200)),
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let mut stalled = TcpStream::connect(addr).unwrap();
        let mut live = TcpStream::connect(addr).unwrap();
        // Park the first connection mid-frame: a header promising 100
        // bytes, then silence.
        stalled.write_all(&100u32.to_be_bytes()).unwrap();
        stalled.write_all(b"partial").unwrap();
        // The neighbor on the same shard keeps getting service.
        for i in 0..20 {
            send_frame(&mut live, format!("tick-{i}").as_bytes());
            assert_eq!(read_frame(&mut live), format!("tick-{i}").as_bytes());
            std::thread::sleep(Duration::from_millis(20));
        }
        // By now (400ms of ticks > 200ms deadline) the stalled conn
        // must have been closed.
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut byte = [0u8; 1];
        assert_eq!(
            stalled.read(&mut byte).unwrap_or(0),
            0,
            "stalled conn closed"
        );
        drop(live);
        assert!(reactor.wait_idle(Duration::from_secs(5)));
        reactor.join();
    }

    #[test]
    fn backends_both_echo() {
        for backend in ["poll", "epoll"] {
            #[cfg(not(target_os = "linux"))]
            if backend == "epoll" {
                continue;
            }
            std::env::set_var("DSNET_NETIO_BACKEND", backend);
            let (reactor, addr) = start_echo(1);
            let mut s = TcpStream::connect(addr).unwrap();
            send_frame(&mut s, b"backend check");
            assert_eq!(read_frame(&mut s), b"backend check");
            drop(s);
            reactor.join();
        }
        std::env::remove_var("DSNET_NETIO_BACKEND");
    }
}
