//! Cross-thread poller wakeups over a non-blocking socketpair.
//!
//! The write end ([`Waker`]) is cheap to clone and safe to hit from
//! any thread (including, with care, signal handlers — `write(2)` is
//! async-signal-safe and the byte value is irrelevant); the read end
//! ([`WakeReader`]) is registered with the shard's poller and drained
//! on every loop turn. A full pipe is fine: the wakeup is level-ish —
//! one undrained byte keeps the poller hot until someone drains it.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

pub struct WakeReader {
    rx: UnixStream,
}

pub fn wake_pair() -> io::Result<(Waker, WakeReader)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeReader { rx }))
}

impl Waker {
    /// Fire-and-forget: WouldBlock means a wakeup is already pending,
    /// any other error means the reader is gone — both are fine.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }

    /// Raw fd of the write end, for async-signal-safe `write(2)` from
    /// a signal handler.
    pub fn raw_fd(&self) -> RawFd {
        self.tx.as_raw_fd()
    }
}

impl WakeReader {
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Swallow all pending wakeup bytes.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Event, Interest, Poller};
    use std::time::Duration;

    #[test]
    fn wake_makes_poller_ready_and_drain_clears_it() {
        let (waker, mut reader) = wake_pair().unwrap();
        let mut poller = Poller::with_default_backend().unwrap();
        poller.register(reader.fd(), 7, Interest::READ).unwrap();
        let mut events: Vec<Event> = Vec::new();

        // No wakeup: times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        waker.wake();
        waker.wake(); // coalesces
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        reader.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drain must clear readiness");
    }

    #[test]
    fn waker_clones_share_the_pipe() {
        let (waker, mut reader) = wake_pair().unwrap();
        let w2 = waker.clone();
        std::thread::spawn(move || w2.wake()).join().unwrap();
        let mut poller = Poller::with_default_backend().unwrap();
        poller.register(reader.fd(), 0, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        reader.drain();
    }
}
