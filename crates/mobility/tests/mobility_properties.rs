//! Acceptance tests of the mobility subsystem: the differ against a full
//! per-epoch rebuild, and the paper's invariants under long mobile runs.

use dsnet_geom::{Deployment, DeploymentConfig, Point2};
use dsnet_mobility::{
    AuditMode, GaussMarkov, GaussMarkovParams, MobileNetwork, MobilityConfig, MobilityModel,
    RandomWaypoint, TopologyDiffer, WaypointParams,
};
use std::collections::BTreeSet;

fn unit_disk_edges(pts: &[Point2], range: f64) -> BTreeSet<(usize, usize)> {
    let mut out = BTreeSet::new();
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if pts[i].dist_sq(pts[j]) <= range * range {
                out.insert((i, j));
            }
        }
    }
    out
}

/// Drive `model` for `epochs` epochs and assert after each one that the
/// differ's event stream, folded into an edge set, equals a full O(n²)
/// rebuild from the current positions.
fn assert_differ_tracks_rebuild(mut model: Box<dyn MobilityModel>, range: f64, epochs: usize) {
    let region = model.region();
    let mut differ = TopologyDiffer::new(region, range, model.positions());
    let mut edges = unit_disk_edges(model.positions(), range);
    for epoch in 0..epochs {
        let moved = model.step();
        let moves: Vec<(usize, Point2)> =
            moved.iter().map(|&i| (i, model.positions()[i])).collect();
        for ev in differ.apply(&moves) {
            if ev.up {
                assert!(
                    edges.insert((ev.a, ev.b)),
                    "epoch {epoch}: appear event for an edge already present"
                );
            } else {
                assert!(
                    edges.remove(&(ev.a, ev.b)),
                    "epoch {epoch}: disappear event for an absent edge"
                );
            }
        }
        assert_eq!(
            edges,
            unit_disk_edges(model.positions(), range),
            "epoch {epoch}: differ diverged from the full rebuild"
        );
    }
}

#[test]
fn differ_matches_full_rebuild_under_random_waypoint() {
    for seed in [1u64, 7, 42] {
        let d = Deployment::generate(DeploymentConfig::paper_field(8.0, 90, seed));
        let model = RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams {
                v_min: 0.05,
                v_max: 0.25,
                pause_epochs: 1,
            },
            seed ^ 0x5EED,
        );
        assert_differ_tracks_rebuild(Box::new(model), d.config.range, 80);
    }
}

#[test]
fn differ_matches_full_rebuild_under_gauss_markov() {
    for seed in [3u64, 19] {
        let d = Deployment::generate(DeploymentConfig::paper_field(8.0, 90, seed));
        let model = GaussMarkov::new(
            d.positions.clone(),
            d.config.region,
            GaussMarkovParams {
                mean_speed: 0.15,
                memory: 0.6,
            },
            seed ^ 0x6A55,
        );
        assert_differ_tracks_rebuild(Box::new(model), d.config.range, 80);
    }
}

#[test]
fn invariants_hold_over_200_epoch_random_waypoint_run() {
    let d = Deployment::generate(DeploymentConfig::paper_field(10.0, 120, 2007));
    let model = RandomWaypoint::new(
        d.positions.clone(),
        d.config.region,
        WaypointParams {
            v_min: 0.02,
            v_max: 0.10,
            pause_epochs: 2,
        },
        0xD15C,
    );
    let mut net = MobileNetwork::new(&d, Box::new(model)).unwrap();
    let cfg = MobilityConfig {
        check_invariants: true, // check_core + relay consistency every epoch
        broadcast_every: 25,
        audit: AuditMode::Full,
        ..MobilityConfig::default()
    };
    let report = net.run(200, &cfg).unwrap();
    assert_eq!(report.epochs.len(), 200);
    assert!(
        report.total_reconfigs() > 50,
        "200 epochs of motion should exercise maintenance heavily, got {}",
        report.total_reconfigs()
    );
    // Broadcast probes taken mid-motion all ran on a valid structure.
    let samples = report.broadcast_samples();
    assert_eq!(samples.len(), 8);
    for s in &samples {
        assert!(s.targets > 0 && s.delivered > 0);
    }
    // The structure never leaks nodes: every logical node stays attached.
    assert_eq!(net.net().len(), 120);
}

#[test]
fn campaign_artifacts_with_mobility_axis_are_byte_identical_across_threads() {
    use dsnet_campaign::{render_csv, render_json, render_trials_csv, CampaignSpec, MobilitySpec};

    let mut spec = CampaignSpec::new("mobility-determinism");
    spec.ns = vec![40];
    spec.reps = 2;
    spec.mobility = vec![
        MobilitySpec::None,
        MobilitySpec::random_waypoint(0.05, 12, 2),
        MobilitySpec::gauss_markov(0.04, 12),
    ];
    let serial = dsnet::campaign::run(&spec, 1, None);
    let parallel = dsnet::campaign::run(&spec, 2, None);
    assert_eq!(serial.records, parallel.records);
    assert_eq!(render_json(&serial, true), render_json(&parallel, true));
    assert_eq!(render_csv(&serial), render_csv(&parallel));
    assert_eq!(render_trials_csv(&serial), render_trials_csv(&parallel));
    // Mobile cells actually measured maintenance (the axis is live).
    assert!(serial
        .records
        .iter()
        .any(|r| r.reconfigs.is_some_and(|c| c > 0)));
}

#[test]
fn invariants_hold_under_gauss_markov_motion() {
    let d = Deployment::generate(DeploymentConfig::paper_field(10.0, 100, 77));
    let model = GaussMarkov::new(
        d.positions.clone(),
        d.config.region,
        GaussMarkovParams {
            mean_speed: 0.06,
            memory: 0.8,
        },
        0xBEEF,
    );
    let mut net = MobileNetwork::new(&d, Box::new(model)).unwrap();
    let report = net.run(120, &MobilityConfig::default()).unwrap();
    assert!(report.total_reconfigs() > 0);
    assert_eq!(net.net().len(), 100);
}
