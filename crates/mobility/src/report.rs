//! Per-epoch measurements of a mobile run.

/// Outcome of one mid-motion broadcast probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastSample {
    /// Rounds until the protocol stopped.
    pub rounds: usize,
    /// Nodes that received the message.
    pub delivered: usize,
    /// Nodes that should have received it.
    pub targets: usize,
}

impl BroadcastSample {
    /// Whether the probe reached every target.
    pub fn completed(&self) -> bool {
        self.delivered == self.targets
    }
}

/// What one epoch of motion did to the structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch number, starting at 0.
    pub epoch: u64,
    /// Nodes whose position changed this epoch.
    pub moved: usize,
    /// Communication edges that appeared.
    pub edges_appeared: usize,
    /// Communication edges that disappeared.
    pub edges_disappeared: usize,
    /// Nodes reconfigured via `move_out` + `move_in`.
    pub reconfigs: usize,
    /// Nodes re-homed as a side effect of some neighbour's `move_out`.
    pub rehomed: usize,
    /// Dirty nodes whose repair was deferred to a later epoch (isolated,
    /// or momentarily a cut vertex of the structure).
    pub deferred: usize,
    /// Total protocol rounds spent on `move_out` operations.
    pub move_out_rounds: u64,
    /// Total protocol rounds spent on `move_in` operations.
    pub move_in_rounds: u64,
    /// Nodes whose (b, l) slot assignment changed this epoch.
    pub slot_churn: usize,
    /// Backbone size (cluster heads + gateways) after the epoch.
    pub backbone: usize,
    /// Tree height after the epoch.
    pub height: usize,
    /// Network-wide `Δb` after the epoch.
    pub delta_b: usize,
    /// Network-wide `Δl` after the epoch.
    pub delta_l: usize,
    /// Broadcast probe, when this epoch sampled one.
    pub broadcast: Option<BroadcastSample>,
}

/// The full time series of a mobile run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MobilityReport {
    /// One record per epoch, in order.
    pub epochs: Vec<EpochRecord>,
}

impl MobilityReport {
    /// Total structure reconfigurations across the run.
    pub fn total_reconfigs(&self) -> u64 {
        self.epochs.iter().map(|e| e.reconfigs as u64).sum()
    }

    /// Total slot-assignment changes across the run.
    pub fn total_slot_churn(&self) -> u64 {
        self.epochs.iter().map(|e| e.slot_churn as u64).sum()
    }

    /// Total nodes re-homed by neighbours' departures across the run.
    pub fn total_rehomed(&self) -> u64 {
        self.epochs.iter().map(|e| e.rehomed as u64).sum()
    }

    /// Total maintenance rounds (move-out + move-in) across the run.
    pub fn total_maintenance_rounds(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| e.move_out_rounds + e.move_in_rounds)
            .sum()
    }

    /// Total edge events (appearances + disappearances) across the run.
    pub fn total_edge_events(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| (e.edges_appeared + e.edges_disappeared) as u64)
            .sum()
    }

    /// Mean backbone size over the run, or 0 for an empty run.
    pub fn mean_backbone(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.backbone as f64).sum::<f64>() / self.epochs.len() as f64
    }

    /// All broadcast probes taken during the run, in epoch order.
    pub fn broadcast_samples(&self) -> Vec<BroadcastSample> {
        self.epochs.iter().filter_map(|e| e.broadcast).collect()
    }

    /// Mean rounds of the broadcast probes, or `None` if none were taken.
    pub fn mean_broadcast_rounds(&self) -> Option<f64> {
        let samples = self.broadcast_samples();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().map(|s| s.rounds as f64).sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, reconfigs: usize, slot_churn: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            moved: 10,
            edges_appeared: 2,
            edges_disappeared: 1,
            reconfigs,
            rehomed: 1,
            deferred: 0,
            move_out_rounds: 4,
            move_in_rounds: 6,
            slot_churn,
            backbone: 20,
            height: 5,
            delta_b: 3,
            delta_l: 4,
            broadcast: None,
        }
    }

    #[test]
    fn totals_and_means_aggregate_epochs() {
        let mut report = MobilityReport::default();
        report.epochs.push(rec(0, 3, 7));
        report.epochs.push(EpochRecord {
            broadcast: Some(BroadcastSample {
                rounds: 12,
                delivered: 99,
                targets: 99,
            }),
            ..rec(1, 2, 5)
        });
        assert_eq!(report.total_reconfigs(), 5);
        assert_eq!(report.total_slot_churn(), 12);
        assert_eq!(report.total_rehomed(), 2);
        assert_eq!(report.total_maintenance_rounds(), 20);
        assert_eq!(report.total_edge_events(), 6);
        assert_eq!(report.mean_backbone(), 20.0);
        let samples = report.broadcast_samples();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].completed());
        assert_eq!(report.mean_broadcast_rounds(), Some(12.0));
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = MobilityReport::default();
        assert_eq!(report.total_reconfigs(), 0);
        assert_eq!(report.mean_backbone(), 0.0);
        assert_eq!(report.mean_broadcast_rounds(), None);
    }
}
