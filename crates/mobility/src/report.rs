//! Per-epoch measurements of a mobile run.

/// Outcome of one mid-motion broadcast probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastSample {
    /// Rounds until the protocol stopped.
    pub rounds: usize,
    /// Nodes that received the message.
    pub delivered: usize,
    /// Nodes that should have received it.
    pub targets: usize,
}

impl BroadcastSample {
    /// Whether the probe reached every target.
    pub fn completed(&self) -> bool {
        self.delivered == self.targets
    }
}

/// Where one epoch's maintenance time went, plus the deterministic
/// audit/cache counters behind it.
///
/// Equality (and therefore [`EpochRecord`] equality, which the
/// determinism suite pins across thread counts) compares **only the
/// deterministic counters**; the `*_ns` wall-clock fields are
/// measurement, not simulation state.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceTimings {
    /// Nodes visited by invariant checking this epoch (the dirty-audit
    /// scope, or the whole network when the full oracle ran).
    pub audit_scope: usize,
    /// 1 when the global `check_core` oracle ran this epoch, else 0.
    /// Kept as a count so summed records stay meaningful.
    pub full_audits: u32,
    /// Knowledge-cache hits attributable to this epoch's probes.
    pub cache_hits: u64,
    /// Knowledge-cache misses attributable to this epoch's probes.
    pub cache_misses: u64,
    /// Cache misses this epoch served by the dirty-scoped patch path
    /// instead of a full `build_knowledge` rebuild (subset of
    /// `cache_misses`).
    pub knowledge_patches: u64,
    /// Total nodes in this epoch's patched closures (how much of the
    /// snapshot the patches actually recomputed).
    pub knowledge_scope: u64,
    /// Patch attempts this epoch that fell back to a full rebuild
    /// (journal evicted/poisoned, or dirty set over the threshold).
    pub knowledge_fallbacks: u64,
    /// Wall time in this epoch's broadcast probe: the knowledge-cache
    /// `get` (full rebuild or dirty-scoped patch) plus the broadcast
    /// engine run. This is the denominator the `mobility_bcast` perf
    /// scenario reports rounds/s over — it isolates the path the patch
    /// optimises from repair/diff costs the patch cannot touch.
    pub probe_ns: u64,
    /// Wall time in the trajectory step + topology diff.
    pub diff_ns: u64,
    /// Wall time in the `move_out`/`move_in` repair loop.
    pub repair_ns: u64,
    /// Wall time taking slot snapshots and counting slot churn.
    pub slots_ns: u64,
    /// Wall time in invariant auditing.
    pub audit_ns: u64,
}

impl PartialEq for MaintenanceTimings {
    fn eq(&self, other: &Self) -> bool {
        (
            self.audit_scope,
            self.full_audits,
            self.cache_hits,
            self.cache_misses,
            self.knowledge_patches,
            self.knowledge_scope,
            self.knowledge_fallbacks,
        ) == (
            other.audit_scope,
            other.full_audits,
            other.cache_hits,
            other.cache_misses,
            other.knowledge_patches,
            other.knowledge_scope,
            other.knowledge_fallbacks,
        )
    }
}

impl MaintenanceTimings {
    /// Field-wise accumulate (counters and wall times alike).
    pub fn accumulate(&mut self, other: &MaintenanceTimings) {
        self.audit_scope += other.audit_scope;
        self.full_audits += other.full_audits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.knowledge_patches += other.knowledge_patches;
        self.knowledge_scope += other.knowledge_scope;
        self.knowledge_fallbacks += other.knowledge_fallbacks;
        self.probe_ns += other.probe_ns;
        self.diff_ns += other.diff_ns;
        self.repair_ns += other.repair_ns;
        self.slots_ns += other.slots_ns;
        self.audit_ns += other.audit_ns;
    }
}

/// What one epoch of motion did to the structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch number, starting at 0.
    pub epoch: u64,
    /// Nodes whose position changed this epoch.
    pub moved: usize,
    /// Communication edges that appeared.
    pub edges_appeared: usize,
    /// Communication edges that disappeared.
    pub edges_disappeared: usize,
    /// Nodes reconfigured via `move_out` + `move_in`.
    pub reconfigs: usize,
    /// Nodes re-homed as a side effect of some neighbour's `move_out`.
    pub rehomed: usize,
    /// Dirty nodes whose repair was deferred to a later epoch (isolated,
    /// or momentarily a cut vertex of the structure).
    pub deferred: usize,
    /// Total protocol rounds spent on `move_out` operations.
    pub move_out_rounds: u64,
    /// Total protocol rounds spent on `move_in` operations.
    pub move_in_rounds: u64,
    /// Nodes whose (b, l) slot assignment changed this epoch.
    pub slot_churn: usize,
    /// Backbone size (cluster heads + gateways) after the epoch.
    pub backbone: usize,
    /// Tree height after the epoch.
    pub height: usize,
    /// Network-wide `Δb` after the epoch.
    pub delta_b: usize,
    /// Network-wide `Δl` after the epoch.
    pub delta_l: usize,
    /// Broadcast probe, when this epoch sampled one.
    pub broadcast: Option<BroadcastSample>,
    /// Maintenance cost breakdown for this epoch.
    pub timings: MaintenanceTimings,
}

/// The full time series of a mobile run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MobilityReport {
    /// One record per epoch, in order.
    pub epochs: Vec<EpochRecord>,
}

impl MobilityReport {
    /// Total structure reconfigurations across the run.
    pub fn total_reconfigs(&self) -> u64 {
        self.epochs.iter().map(|e| e.reconfigs as u64).sum()
    }

    /// Total slot-assignment changes across the run.
    pub fn total_slot_churn(&self) -> u64 {
        self.epochs.iter().map(|e| e.slot_churn as u64).sum()
    }

    /// Total nodes re-homed by neighbours' departures across the run.
    pub fn total_rehomed(&self) -> u64 {
        self.epochs.iter().map(|e| e.rehomed as u64).sum()
    }

    /// Total maintenance rounds (move-out + move-in) across the run.
    pub fn total_maintenance_rounds(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| e.move_out_rounds + e.move_in_rounds)
            .sum()
    }

    /// Total edge events (appearances + disappearances) across the run.
    pub fn total_edge_events(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| (e.edges_appeared + e.edges_disappeared) as u64)
            .sum()
    }

    /// Mean backbone size over the run, or 0 for an empty run.
    pub fn mean_backbone(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.backbone as f64).sum::<f64>() / self.epochs.len() as f64
    }

    /// All broadcast probes taken during the run, in epoch order.
    pub fn broadcast_samples(&self) -> Vec<BroadcastSample> {
        self.epochs.iter().filter_map(|e| e.broadcast).collect()
    }

    /// Mean rounds of the broadcast probes, or `None` if none were taken.
    pub fn mean_broadcast_rounds(&self) -> Option<f64> {
        let samples = self.broadcast_samples();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().map(|s| s.rounds as f64).sum::<f64>() / samples.len() as f64)
    }

    /// Run-total maintenance breakdown (all epochs accumulated).
    pub fn summed_timings(&self) -> MaintenanceTimings {
        let mut total = MaintenanceTimings::default();
        for e in &self.epochs {
            total.accumulate(&e.timings);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, reconfigs: usize, slot_churn: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            moved: 10,
            edges_appeared: 2,
            edges_disappeared: 1,
            reconfigs,
            rehomed: 1,
            deferred: 0,
            move_out_rounds: 4,
            move_in_rounds: 6,
            slot_churn,
            backbone: 20,
            height: 5,
            delta_b: 3,
            delta_l: 4,
            broadcast: None,
            timings: MaintenanceTimings {
                audit_scope: 6,
                full_audits: 0,
                cache_hits: 1,
                cache_misses: 0,
                knowledge_patches: 0,
                knowledge_scope: 0,
                knowledge_fallbacks: 0,
                probe_ns: 0,
                diff_ns: 100,
                repair_ns: 200,
                slots_ns: 50,
                audit_ns: 75,
            },
        }
    }

    #[test]
    fn totals_and_means_aggregate_epochs() {
        let mut report = MobilityReport::default();
        report.epochs.push(rec(0, 3, 7));
        report.epochs.push(EpochRecord {
            broadcast: Some(BroadcastSample {
                rounds: 12,
                delivered: 99,
                targets: 99,
            }),
            ..rec(1, 2, 5)
        });
        assert_eq!(report.total_reconfigs(), 5);
        assert_eq!(report.total_slot_churn(), 12);
        assert_eq!(report.total_rehomed(), 2);
        assert_eq!(report.total_maintenance_rounds(), 20);
        assert_eq!(report.total_edge_events(), 6);
        assert_eq!(report.mean_backbone(), 20.0);
        let samples = report.broadcast_samples();
        assert_eq!(samples.len(), 1);
        assert!(samples[0].completed());
        assert_eq!(report.mean_broadcast_rounds(), Some(12.0));
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = MobilityReport::default();
        assert_eq!(report.total_reconfigs(), 0);
        assert_eq!(report.mean_backbone(), 0.0);
        assert_eq!(report.mean_broadcast_rounds(), None);
        assert_eq!(report.summed_timings(), MaintenanceTimings::default());
    }

    #[test]
    fn timing_equality_ignores_wall_clock_fields() {
        // The determinism suite compares EpochRecords across thread
        // counts; only the counters may participate.
        let a = rec(0, 1, 1);
        let mut b = a;
        b.timings.diff_ns = 999_999;
        b.timings.audit_ns = 0;
        assert_eq!(a, b);
        let mut c = a;
        c.timings.cache_misses += 1;
        assert_ne!(a, c);
        let mut d = a;
        d.timings.audit_scope += 1;
        assert_ne!(a, d);
        let mut e = a;
        e.timings.knowledge_patches += 1;
        assert_ne!(a, e, "patch counters are simulation state");
    }

    #[test]
    fn summed_timings_accumulate_all_fields() {
        let mut report = MobilityReport::default();
        report.epochs.push(rec(0, 1, 1));
        report.epochs.push(rec(1, 1, 1));
        let total = report.summed_timings();
        assert_eq!(total.audit_scope, 12);
        assert_eq!(total.cache_hits, 2);
        assert_eq!(total.diff_ns, 200);
        assert_eq!(total.repair_ns, 400);
        assert_eq!(total.slots_ns, 100);
        assert_eq!(total.audit_ns, 150);
    }
}
