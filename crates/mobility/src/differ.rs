//! Incremental unit-disk topology differencing.
//!
//! Rebuilding the communication graph from scratch every epoch costs
//! O(n²) pair checks (or O(n·density) with a fresh spatial hash), even
//! when only a handful of nodes moved. [`TopologyDiffer`] instead keeps a
//! persistent [`GridIndex`] and, for each moved node, compares its
//! neighbourhood before and after the relocation — an epoch therefore
//! costs O(moved × local density) and yields exactly the set of edges
//! whose endpoint-distance crossed the radio range.
//!
//! The event stream is *minimal*: a node that leaves and re-enters a
//! neighbour's range within the same batch produces no event for that
//! pair, because per-move ±1 deltas telescope to the net
//! final-state-minus-initial-state difference.

use dsnet_geom::{GridIndex, Point2, Region};

/// A single communication-edge change between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeEvent {
    /// Lower endpoint index.
    pub a: usize,
    /// Higher endpoint index.
    pub b: usize,
    /// `true` if the edge appeared, `false` if it disappeared.
    pub up: bool,
}

/// Maintains unit-disk adjacency under point motion and reports the
/// minimal set of edge changes per batch of moves.
#[derive(Debug, Clone)]
pub struct TopologyDiffer {
    index: GridIndex,
    range: f64,
    /// Reusable per-batch scratch of raw `(a, b, ±1)` edge deltas.
    deltas: Vec<(usize, usize, i32)>,
}

impl TopologyDiffer {
    /// An index over `positions` in `region`, with radio range `range`.
    pub fn new(region: Region, range: f64, positions: &[Point2]) -> Self {
        let mut index = GridIndex::new(region.width(), region.height(), range);
        for &p in positions {
            index.insert(p);
        }
        Self {
            index,
            range,
            deltas: Vec::new(),
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the differ tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current position of node `i`.
    pub fn position(&self, i: usize) -> Point2 {
        self.index.point(i)
    }

    /// All current positions, indexed by node.
    pub fn positions(&self) -> &[Point2] {
        self.index.points()
    }

    /// The radio range edges are defined by.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Indices currently within radio range of node `i`, excluding `i`
    /// itself, in ascending order.
    pub fn neighbors_within(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_within_into(i, &mut out);
        out
    }

    /// Write the indices within radio range of node `i` (excluding `i`,
    /// ascending) into `out`, clearing it first. Allocation-free once
    /// `out` has grown to the local-density high-water mark.
    pub fn neighbors_within_into(&self, i: usize, out: &mut Vec<usize>) {
        out.clear();
        self.index
            .for_each_within(self.index.point(i), self.range, |j| {
                if j != i {
                    out.push(j);
                }
            });
        out.sort_unstable();
    }

    /// Apply a batch of moves and return the net edge changes, ordered by
    /// `(a, b)` endpoint pair. Allocating wrapper over
    /// [`apply_into`](TopologyDiffer::apply_into).
    pub fn apply(&mut self, moves: &[(usize, Point2)]) -> Vec<EdgeEvent> {
        let mut out = Vec::new();
        self.apply_into(moves, &mut out);
        out
    }

    /// Apply a batch of moves, writing the net edge changes into `out`
    /// (cleared first), ordered by `(a, b)` endpoint pair.
    ///
    /// Moves are applied in slice order; a node may appear more than once.
    /// Intermediate edge flickers within the batch cancel out: each event
    /// reflects the edge's final state differing from its pre-batch state.
    /// Both the internal delta scratch and `out` are reused buffers — a
    /// steady-state epoch allocates nothing.
    pub fn apply_into(&mut self, moves: &[(usize, Point2)], out: &mut Vec<EdgeEvent>) {
        out.clear();
        // Net delta per edge: +1 appear, -1 disappear. Per-move deltas
        // telescope, so after the whole batch every edge's summed delta is
        // in {-1, 0, +1} and the nonzero ones are exactly the changed
        // edges. Raw deltas go into a flat scratch; sort-and-sum replaces
        // the former per-batch `BTreeMap`.
        let Self {
            index,
            range,
            deltas,
        } = self;
        deltas.clear();
        for &(i, to) in moves {
            let from = index.point(i);
            index.for_each_within(from, *range, |j| {
                if j != i {
                    let (a, b) = edge_key(i, j);
                    deltas.push((a, b, -1));
                }
            });
            index.relocate(i, to);
            index.for_each_within(to, *range, |j| {
                if j != i {
                    let (a, b) = edge_key(i, j);
                    deltas.push((a, b, 1));
                }
            });
        }
        deltas.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let mut i = 0;
        while i < deltas.len() {
            let (a, b, _) = deltas[i];
            let mut sum = 0i32;
            while i < deltas.len() && (deltas[i].0, deltas[i].1) == (a, b) {
                sum += deltas[i].2;
                i += 1;
            }
            if sum != 0 {
                debug_assert!(
                    sum.abs() == 1,
                    "edge delta for ({a},{b}) must telescope to ±1, got {sum}"
                );
                out.push(EdgeEvent { a, b, up: sum > 0 });
            }
        }
    }
}

fn edge_key(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_geom::rng::rng_from_seed;
    use rand::Rng as _;
    use std::collections::BTreeSet;

    fn brute_edges(pts: &[Point2], range: f64) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist_sq(pts[j]) <= range * range {
                    out.insert((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn single_move_emits_crossing_edges_only() {
        let region = Region::square(10.0);
        let pts = vec![
            Point2::new(1.0, 1.0),
            Point2::new(1.3, 1.0), // in range of 0
            Point2::new(5.0, 5.0), // far away
        ];
        let mut d = TopologyDiffer::new(region, 0.5, &pts);
        // Move node 0 next to node 2: edge (0,1) drops, edge (0,2) appears.
        let events = d.apply(&[(0, Point2::new(5.2, 5.0))]);
        assert_eq!(
            events,
            vec![
                EdgeEvent {
                    a: 0,
                    b: 1,
                    up: false
                },
                EdgeEvent {
                    a: 0,
                    b: 2,
                    up: true
                },
            ]
        );
    }

    #[test]
    fn round_trip_within_one_batch_cancels() {
        let region = Region::square(10.0);
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(1.3, 1.0)];
        let mut d = TopologyDiffer::new(region, 0.5, &pts);
        // Leave range and come back in the same batch: no net event.
        let events = d.apply(&[(0, Point2::new(4.0, 4.0)), (0, Point2::new(1.0, 1.0))]);
        assert!(events.is_empty(), "flicker must cancel, got {events:?}");
    }

    #[test]
    fn event_stream_tracks_full_rebuild_over_random_motion() {
        let region = Region::square(6.0);
        let range = 0.5;
        let mut rng = rng_from_seed(23);
        let mut pts: Vec<Point2> = (0..80)
            .map(|_| {
                Point2::new(
                    rng.random_range(0.0..region.width()),
                    rng.random_range(0.0..region.height()),
                )
            })
            .collect();
        let mut d = TopologyDiffer::new(region, range, &pts);
        let mut edges = brute_edges(&pts, range);
        for _ in 0..60 {
            // Random subset of nodes takes a random small hop.
            let mut moves = Vec::new();
            for (i, p) in pts.iter_mut().enumerate() {
                if rng.random_bool(0.3) {
                    let q = region.clamp(Point2::new(
                        p.x + rng.random_range(-0.4..0.4),
                        p.y + rng.random_range(-0.4..0.4),
                    ));
                    *p = q;
                    moves.push((i, q));
                }
            }
            for ev in d.apply(&moves) {
                if ev.up {
                    assert!(edges.insert((ev.a, ev.b)), "appear event for present edge");
                } else {
                    assert!(
                        edges.remove(&(ev.a, ev.b)),
                        "disappear event for absent edge"
                    );
                }
            }
            assert_eq!(
                edges,
                brute_edges(&pts, range),
                "differ diverged from rebuild"
            );
        }
    }

    #[test]
    fn neighbors_within_is_sorted_and_excludes_self() {
        let region = Region::square(4.0);
        let pts = vec![
            Point2::new(1.0, 1.0),
            Point2::new(1.2, 1.0),
            Point2::new(0.8, 1.0),
            Point2::new(3.0, 3.0),
        ];
        let d = TopologyDiffer::new(region, 0.5, &pts);
        assert_eq!(d.neighbors_within(0), vec![1, 2]);
        assert_eq!(d.neighbors_within(3), Vec::<usize>::new());
    }
}
