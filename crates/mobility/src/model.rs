//! Seedable trajectory models stepped in discrete epochs.
//!
//! Time is quantised into *epochs* — the granularity at which the
//! maintenance driver observes positions and repairs the structure — so a
//! model's only job is to advance every node by one epoch and say which
//! nodes moved. Speeds are therefore expressed in **field units per
//! epoch** (the paper's radio range is 0.5 units).
//!
//! Both models are pure functions of their seed: equal seeds replay equal
//! trajectories, node by node, epoch by epoch. All randomness comes from
//! one [`rng_from_seed`] stream consumed in node-index order.

use dsnet_geom::rng::{rng_from_seed, Rng};
use dsnet_geom::{Point2, Region};
use rand::Rng as _;

/// A trajectory model: owns every node's position and advances them all
/// by one epoch at a time.
pub trait MobilityModel {
    /// Current positions, indexed by node (stable across epochs).
    fn positions(&self) -> &[Point2];

    /// Advance one epoch, writing the indices of the nodes whose position
    /// changed into `moved` (cleared first, ascending order). This is the
    /// hot-path entry point: the caller owns the buffer, so steady-state
    /// epochs allocate nothing.
    fn step_into(&mut self, moved: &mut Vec<usize>);

    /// Advance one epoch. Returns the indices of the nodes whose position
    /// changed, in ascending order. Convenience wrapper over
    /// [`step_into`](MobilityModel::step_into).
    fn step(&mut self) -> Vec<usize> {
        let mut moved = Vec::new();
        self.step_into(&mut moved);
        moved
    }

    /// The bounded field the nodes roam.
    fn region(&self) -> Region;
}

/// Parameters of the [`RandomWaypoint`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointParams {
    /// Minimum trip speed in units/epoch. Must be positive: a zero lower
    /// bound makes the stationary speed distribution degenerate (the
    /// classic random-waypoint speed-decay pathology).
    pub v_min: f64,
    /// Maximum trip speed in units/epoch.
    pub v_max: f64,
    /// Epochs a node rests after reaching its waypoint.
    pub pause_epochs: u32,
}

impl Default for WaypointParams {
    fn default() -> Self {
        Self {
            v_min: 0.02,
            v_max: 0.08,
            pause_epochs: 2,
        }
    }
}

/// The random-waypoint model: each node picks a uniform destination in
/// the field and a uniform trip speed, walks straight to it, pauses, and
/// repeats.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    region: Region,
    params: WaypointParams,
    positions: Vec<Point2>,
    waypoints: Vec<Point2>,
    speeds: Vec<f64>,
    pause_left: Vec<u32>,
    rng: Rng,
}

impl RandomWaypoint {
    /// A model starting from `initial` positions inside `region`.
    pub fn new(initial: Vec<Point2>, region: Region, params: WaypointParams, seed: u64) -> Self {
        assert!(params.v_min > 0.0, "v_min must be positive");
        assert!(params.v_max >= params.v_min, "v_max must be ≥ v_min");
        let mut rng = rng_from_seed(seed);
        let n = initial.len();
        let mut waypoints = Vec::with_capacity(n);
        let mut speeds = Vec::with_capacity(n);
        for _ in 0..n {
            waypoints.push(uniform_point(region, &mut rng));
            speeds.push(rng.random_range(params.v_min..=params.v_max));
        }
        Self {
            region,
            params,
            positions: initial,
            waypoints,
            speeds,
            pause_left: vec![0; n],
            rng,
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn positions(&self) -> &[Point2] {
        &self.positions
    }

    fn region(&self) -> Region {
        self.region
    }

    fn step_into(&mut self, moved: &mut Vec<usize>) {
        moved.clear();
        for i in 0..self.positions.len() {
            if self.pause_left[i] > 0 {
                self.pause_left[i] -= 1;
                continue;
            }
            let p = self.positions[i];
            let to = self.waypoints[i];
            let dist = p.dist(to);
            if dist <= self.speeds[i] {
                // Arrive exactly on the waypoint, rest, plan the next trip.
                if dist > 1e-12 {
                    self.positions[i] = to;
                    moved.push(i);
                }
                self.pause_left[i] = self.params.pause_epochs;
                self.waypoints[i] = uniform_point(self.region, &mut self.rng);
                self.speeds[i] = self.rng.random_range(self.params.v_min..=self.params.v_max);
            } else {
                let f = self.speeds[i] / dist;
                self.positions[i] = Point2::new(p.x + (to.x - p.x) * f, p.y + (to.y - p.y) * f);
                moved.push(i);
            }
        }
    }
}

/// Parameters of the [`GaussMarkov`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussMarkovParams {
    /// RMS per-axis velocity in units/epoch (the long-run speed scale).
    pub mean_speed: f64,
    /// Temporal correlation `α ∈ [0, 1)`: 0 is a memoryless random walk,
    /// values near 1 give smooth, inertia-heavy trajectories.
    pub memory: f64,
}

impl Default for GaussMarkovParams {
    fn default() -> Self {
        Self {
            mean_speed: 0.05,
            memory: 0.75,
        }
    }
}

/// The Gauss-Markov model: each velocity component follows the AR(1)
/// process `v ← α·v + σ·√(1−α²)·w` with unit-variance innovations `w`
/// (uniform, not Gaussian — the build has no normal sampler, and only the
/// first two moments matter here), reflecting off the field boundary.
#[derive(Debug, Clone)]
pub struct GaussMarkov {
    region: Region,
    params: GaussMarkovParams,
    positions: Vec<Point2>,
    velocities: Vec<(f64, f64)>,
    rng: Rng,
}

impl GaussMarkov {
    /// A model starting from `initial` positions inside `region`, with
    /// velocities drawn from the stationary distribution.
    pub fn new(initial: Vec<Point2>, region: Region, params: GaussMarkovParams, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&params.memory),
            "memory must be in [0, 1)"
        );
        assert!(params.mean_speed >= 0.0, "mean_speed must be non-negative");
        let mut rng = rng_from_seed(seed);
        let velocities = (0..initial.len())
            .map(|_| {
                (
                    params.mean_speed * unit_innovation(&mut rng),
                    params.mean_speed * unit_innovation(&mut rng),
                )
            })
            .collect();
        Self {
            region,
            params,
            positions: initial,
            velocities,
            rng,
        }
    }
}

impl MobilityModel for GaussMarkov {
    fn positions(&self) -> &[Point2] {
        &self.positions
    }

    fn region(&self) -> Region {
        self.region
    }

    fn step_into(&mut self, moved: &mut Vec<usize>) {
        moved.clear();
        let a = self.params.memory;
        let sigma = self.params.mean_speed * (1.0 - a * a).sqrt();
        let (w, h) = (self.region.width(), self.region.height());
        for i in 0..self.positions.len() {
            let (mut vx, mut vy) = self.velocities[i];
            vx = a * vx + sigma * unit_innovation(&mut self.rng);
            vy = a * vy + sigma * unit_innovation(&mut self.rng);
            let p = self.positions[i];
            let (mut x, mut y) = (p.x + vx, p.y + vy);
            if x < 0.0 {
                x = -x;
                vx = -vx;
            } else if x > w {
                x = 2.0 * w - x;
                vx = -vx;
            }
            if y < 0.0 {
                y = -y;
                vy = -vy;
            } else if y > h {
                y = 2.0 * h - y;
                vy = -vy;
            }
            let q = self.region.clamp(Point2::new(x, y));
            self.velocities[i] = (vx, vy);
            if q.dist_sq(p) > 0.0 {
                self.positions[i] = q;
                moved.push(i);
            }
        }
    }
}

/// Restricts an inner model to an explicit set of mobile nodes; everyone
/// else is pinned at their initial position.
///
/// This models the common sensor-field split between a *static backbone*
/// (mains-powered relays, anchors) and a *mobile minority* (hand-held or
/// vehicle-mounted units): the inner model still advances every node —
/// so a given seed replays the same trajectories regardless of which
/// subset is mobile — but only the selected nodes' positions are ever
/// published.
#[derive(Debug, Clone)]
pub struct SparseMotion<M> {
    inner: M,
    mobile: Vec<bool>,
    positions: Vec<Point2>,
    scratch: Vec<usize>,
}

impl<M: MobilityModel> SparseMotion<M> {
    /// Wraps `inner`, letting only the nodes in `mobile_ids` move.
    ///
    /// Indices in `mobile_ids` must address nodes of the inner model;
    /// duplicates are harmless.
    pub fn new(inner: M, mobile_ids: &[usize]) -> Self {
        let positions = inner.positions().to_vec();
        let mut mobile = vec![false; positions.len()];
        for &i in mobile_ids {
            assert!(i < mobile.len(), "mobile id {i} out of range");
            mobile[i] = true;
        }
        Self {
            inner,
            mobile,
            positions,
            scratch: Vec::new(),
        }
    }

    /// How many nodes are allowed to move.
    pub fn mobile_count(&self) -> usize {
        self.mobile.iter().filter(|&&m| m).count()
    }
}

impl<M: MobilityModel> MobilityModel for SparseMotion<M> {
    fn positions(&self) -> &[Point2] {
        &self.positions
    }

    fn region(&self) -> Region {
        self.inner.region()
    }

    fn step_into(&mut self, moved: &mut Vec<usize>) {
        self.inner.step_into(&mut self.scratch);
        moved.clear();
        for &i in &self.scratch {
            if self.mobile[i] {
                self.positions[i] = self.inner.positions()[i];
                moved.push(i);
            }
        }
    }
}

fn uniform_point(region: Region, rng: &mut Rng) -> Point2 {
    Point2::new(
        rng.random_range(0.0..=region.width()),
        rng.random_range(0.0..=region.height()),
    )
}

/// A zero-mean, unit-variance innovation: uniform on `[-√3, √3]`.
fn unit_innovation(rng: &mut Rng) -> f64 {
    const SQRT3: f64 = 1.732_050_807_568_877_2;
    rng.random_range(-SQRT3..=SQRT3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(1.0 + 0.1 * i as f64, 2.0))
            .collect()
    }

    #[test]
    fn waypoint_walks_are_deterministic_and_bounded() {
        let region = Region::square(6.0);
        let mut a = RandomWaypoint::new(start(20), region, WaypointParams::default(), 9);
        let mut b = RandomWaypoint::new(start(20), region, WaypointParams::default(), 9);
        for _ in 0..50 {
            assert_eq!(a.step(), b.step());
            assert_eq!(a.positions(), b.positions());
            assert!(a.positions().iter().all(|&p| region.contains(p)));
        }
    }

    #[test]
    fn waypoint_step_displacement_is_speed_limited() {
        let region = Region::square(6.0);
        let params = WaypointParams {
            v_min: 0.03,
            v_max: 0.07,
            pause_epochs: 1,
        };
        let mut m = RandomWaypoint::new(start(15), region, params, 4);
        for _ in 0..80 {
            let before = m.positions().to_vec();
            let moved = m.step();
            for (i, (&p, &q)) in before.iter().zip(m.positions()).enumerate() {
                assert!(p.dist(q) <= params.v_max + 1e-9, "node {i} overshot");
                if !moved.contains(&i) {
                    assert_eq!(p, q, "unmoved node {i} drifted");
                }
            }
            // Moved list is ascending and exactly the changed nodes.
            assert!(moved.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn waypoint_nodes_pause_on_arrival() {
        let region = Region::square(4.0);
        let params = WaypointParams {
            v_min: 1.0,
            v_max: 1.0,
            pause_epochs: 3,
        };
        // Speed 1 on a 4×4 field: every trip ends within a few epochs, so
        // pauses must show up as epochs where some node doesn't move.
        let mut m = RandomWaypoint::new(start(5), region, params, 7);
        let mut paused_epochs = 0;
        for _ in 0..40 {
            if m.step().len() < 5 {
                paused_epochs += 1;
            }
        }
        assert!(paused_epochs > 0, "no node ever paused");
    }

    #[test]
    fn gauss_markov_is_deterministic_and_bounded() {
        let region = Region::square(5.0);
        let mut a = GaussMarkov::new(start(20), region, GaussMarkovParams::default(), 3);
        let mut b = GaussMarkov::new(start(20), region, GaussMarkovParams::default(), 3);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
            assert_eq!(a.positions(), b.positions());
            assert!(a.positions().iter().all(|&p| region.contains(p)));
        }
    }

    #[test]
    fn gauss_markov_memory_smooths_direction() {
        // With high memory, consecutive displacements correlate: the mean
        // dot product of successive steps is positive.
        let region = Region::square(20.0);
        let params = GaussMarkovParams {
            mean_speed: 0.05,
            memory: 0.9,
        };
        let init: Vec<Point2> = (0..10).map(|i| Point2::new(10.0, 5.0 + i as f64)).collect();
        let mut m = GaussMarkov::new(init, region, params, 11);
        let mut prev = m.positions().to_vec();
        let mut prev_step: Vec<(f64, f64)> = vec![(0.0, 0.0); 10];
        let mut dot_sum = 0.0;
        let mut count = 0;
        for epoch in 0..200 {
            m.step();
            for i in 0..10 {
                let d = (
                    m.positions()[i].x - prev[i].x,
                    m.positions()[i].y - prev[i].y,
                );
                if epoch > 0 {
                    dot_sum += d.0 * prev_step[i].0 + d.1 * prev_step[i].1;
                    count += 1;
                }
                prev_step[i] = d;
            }
            prev = m.positions().to_vec();
        }
        assert!(
            dot_sum / count as f64 > 0.0,
            "high-memory walk should keep its heading on average"
        );
    }

    #[test]
    fn sparse_motion_moves_only_the_selected_nodes() {
        let region = Region::square(6.0);
        let inner = RandomWaypoint::new(start(20), region, WaypointParams::default(), 9);
        let init = inner.positions().to_vec();
        let mut m = SparseMotion::new(inner, &[3, 7, 7, 11]);
        assert_eq!(m.mobile_count(), 3);
        for _ in 0..50 {
            let moved = m.step();
            assert!(moved.iter().all(|i| [3, 7, 11].contains(i)));
            assert!(moved.windows(2).all(|w| w[0] < w[1]));
            for (i, (&p0, &p)) in init.iter().zip(m.positions()).enumerate() {
                if ![3, 7, 11].contains(&i) {
                    assert_eq!(p0, p, "pinned node {i} drifted");
                }
            }
            assert!(m.positions().iter().all(|&p| region.contains(p)));
        }
    }

    #[test]
    fn sparse_motion_mobile_nodes_track_the_inner_model() {
        let region = Region::square(6.0);
        let mut inner = RandomWaypoint::new(start(20), region, WaypointParams::default(), 9);
        let wrapped = RandomWaypoint::new(start(20), region, WaypointParams::default(), 9);
        let mut m = SparseMotion::new(wrapped, &[5]);
        for _ in 0..50 {
            inner.step();
            m.step();
            assert_eq!(m.positions()[5], inner.positions()[5]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_motion_rejects_out_of_range_ids() {
        let inner =
            RandomWaypoint::new(start(4), Region::square(6.0), WaypointParams::default(), 9);
        let _ = SparseMotion::new(inner, &[4]);
    }

    #[test]
    #[should_panic(expected = "v_min must be positive")]
    fn zero_v_min_is_rejected() {
        let _ = RandomWaypoint::new(
            start(2),
            Region::square(4.0),
            WaypointParams {
                v_min: 0.0,
                v_max: 0.1,
                pause_epochs: 0,
            },
            1,
        );
    }
}
