//! The maintenance driver: keeps a live MCNet(G) valid while nodes move.
//!
//! Each epoch the driver (1) steps the trajectory model, (2) feeds the
//! position deltas to the [`TopologyDiffer`] and collects the minimal
//! edge-event stream, (3) marks both endpoints of every changed edge
//! *dirty*, and (4) repairs each dirty node whose recorded radio
//! neighbourhood no longer matches the geometric truth with the paper's
//! own primitives: one `node-move-out` (Algorithm `node-move-out`,
//! Section 5.2) followed by one `node-move-in` (Definition 1 /
//! Algorithm 3) under the node's current neighbours.
//!
//! The structure is therefore *always* a valid CNet(G) of the graph it
//! records — the paper's invariants are checked after every epoch — while
//! the recorded graph chases the geometric topology. Repairs that the
//! paper's operations refuse are deferred, not forced:
//!
//! * the **root** (sink) never moves out; an edge between the root and a
//!   mobile neighbour is repaired from the neighbour's side;
//! * a node that is momentarily a **cut vertex** of the recorded graph
//!   (`move_out` would disconnect it) stays put until motion opens an
//!   alternative path;
//! * a node with **no in-range neighbour** cannot re-attach and waits
//!   until it drifts back into contact.
//!
//! Determinism: dirty nodes are processed in ascending logical order and
//! every data structure iterates in a fixed order, so a run is a pure
//! function of the deployment, the model and its seed.

use crate::differ::TopologyDiffer;
use crate::model::MobilityModel;
use crate::report::{BroadcastSample, EpochRecord, MobilityReport};
use dsnet_cluster::invariants::check_core;
use dsnet_cluster::{GroupId, McNet, MoveInReport};
use dsnet_geom::{Deployment, Point2};
use dsnet_graph::NodeId;
use dsnet_protocols::runner::run_improved;
use dsnet_protocols::RunConfig;
use std::collections::BTreeSet;
use std::fmt;

/// Errors from building or running a [`MobileNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum MobilityError {
    /// Arrival `index` hears no earlier node, so the initial structure
    /// cannot be grown (the deployment is not incrementally connected at
    /// the radio range).
    DisconnectedArrival(usize),
    /// The model's node count or field does not match the deployment.
    ModelMismatch(String),
    /// An invariant of the paper failed after an epoch (only produced
    /// when [`MobilityConfig::check_invariants`] is on).
    InvariantViolated {
        /// Epoch after which the check failed.
        epoch: u64,
        /// Human-readable violation detail.
        detail: String,
    },
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::DisconnectedArrival(i) => {
                write!(f, "arrival {i} hears no earlier node at the radio range")
            }
            MobilityError::ModelMismatch(why) => write!(f, "model mismatch: {why}"),
            MobilityError::InvariantViolated { epoch, detail } => {
                write!(f, "invariant violated after epoch {epoch}: {detail}")
            }
        }
    }
}

impl std::error::Error for MobilityError {}

/// Knobs of a mobile run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobilityConfig {
    /// Check the full Definition-1 / Time-Slot-Condition invariant suite
    /// (plus relay-list consistency) after every epoch.
    pub check_invariants: bool,
    /// Sample a broadcast from the sink every this many epochs
    /// (0 = never).
    pub broadcast_every: u64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self {
            check_invariants: true,
            broadcast_every: 0,
        }
    }
}

/// A live MCNet(G) whose nodes move: trajectory model + topology differ +
/// structure maintenance, stepped one epoch at a time.
pub struct MobileNetwork {
    mc: McNet,
    differ: TopologyDiffer,
    model: Box<dyn MobilityModel>,
    /// Logical node (trajectory index) → current structure id. Move-outs
    /// tombstone ids, so a reconfigured node gets a fresh id each time.
    node_of: Vec<NodeId>,
    groups_of: Vec<Vec<GroupId>>,
    /// Logical nodes whose recorded neighbourhood may disagree with the
    /// geometric one (deferred repairs carry over between epochs).
    dirty: BTreeSet<usize>,
    epoch: u64,
    build_reports: Vec<MoveInReport>,
}

impl fmt::Debug for MobileNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MobileNetwork")
            .field("nodes", &self.node_of.len())
            .field("epoch", &self.epoch)
            .field("dirty", &self.dirty.len())
            .finish()
    }
}

impl MobileNetwork {
    /// Grow the initial structure by replaying the deployment's arrival
    /// order (node `i` joins hearing the earlier in-range nodes), with no
    /// multicast group memberships.
    pub fn new(
        deployment: &Deployment,
        model: Box<dyn MobilityModel>,
    ) -> Result<Self, MobilityError> {
        Self::with_groups(deployment, model, Vec::new())
    }

    /// Like [`MobileNetwork::new`], with per-node multicast groups
    /// (`groups_of[i]` for logical node `i`; an empty vector means no
    /// memberships everywhere).
    pub fn with_groups(
        deployment: &Deployment,
        model: Box<dyn MobilityModel>,
        mut groups_of: Vec<Vec<GroupId>>,
    ) -> Result<Self, MobilityError> {
        let n = deployment.positions.len();
        if model.positions().len() != n {
            return Err(MobilityError::ModelMismatch(format!(
                "model tracks {} nodes, deployment has {n}",
                model.positions().len()
            )));
        }
        if model.positions() != &deployment.positions[..] {
            return Err(MobilityError::ModelMismatch(
                "model must start from the deployment's positions".into(),
            ));
        }
        let region = deployment.config.region;
        if model.region() != region {
            return Err(MobilityError::ModelMismatch(
                "model region differs from the deployment field".into(),
            ));
        }
        if groups_of.is_empty() {
            groups_of = vec![Vec::new(); n];
        }
        assert_eq!(groups_of.len(), n, "one group list per node");

        let range = deployment.config.range;
        let differ = TopologyDiffer::new(region, range, &deployment.positions);
        let mut mc = McNet::with_defaults();
        let mut node_of = Vec::with_capacity(n);
        let mut build_reports = Vec::with_capacity(n);
        for (i, groups) in groups_of.iter().enumerate() {
            let earlier: Vec<NodeId> = differ
                .neighbors_within(i)
                .into_iter()
                .filter(|&j| j < i)
                .map(|j| node_of[j])
                .collect();
            if i > 0 && earlier.is_empty() {
                return Err(MobilityError::DisconnectedArrival(i));
            }
            let rep = mc
                .move_in(&earlier, groups)
                .expect("replayed arrival hears only live nodes");
            node_of.push(rep.node);
            build_reports.push(rep);
        }
        Ok(Self {
            mc,
            differ,
            model,
            node_of,
            groups_of,
            dirty: BTreeSet::new(),
            epoch: 0,
            build_reports,
        })
    }

    // ----- accessors ------------------------------------------------------

    /// The live multicast structure.
    pub fn mc(&self) -> &McNet {
        &self.mc
    }

    /// The underlying cluster structure.
    pub fn net(&self) -> &dsnet_cluster::ClusterNet {
        self.mc.net()
    }

    /// Current structure id of logical node `u`.
    pub fn node_of(&self, u: usize) -> NodeId {
        self.node_of[u]
    }

    /// Number of (logical) nodes.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current geometric positions, by logical node.
    pub fn positions(&self) -> &[Point2] {
        self.differ.positions()
    }

    /// Logical nodes whose repair is currently deferred.
    pub fn deferred(&self) -> Vec<usize> {
        self.dirty.iter().copied().collect()
    }

    /// Move-in reports of the initial growth (one per arrival).
    pub fn build_reports(&self) -> &[MoveInReport] {
        &self.build_reports
    }

    /// Current positions indexed by **structure id** (`NodeId::index`),
    /// sized to the graph's id capacity; tombstoned ids hold their last
    /// owner's position and are never read by live-node consumers.
    pub fn positions_by_node_id(&self) -> Vec<Point2> {
        let mut out = vec![Point2::ORIGIN; self.mc.net().graph().capacity()];
        for (u, &id) in self.node_of.iter().enumerate() {
            out[id.index()] = self.differ.position(u);
        }
        out
    }

    /// Tear down into the structure and its id-indexed positions.
    pub fn into_parts(self) -> (McNet, Vec<Point2>) {
        let positions = self.positions_by_node_id();
        (self.mc, positions)
    }

    // ----- the epoch loop -------------------------------------------------

    /// Advance one epoch: move, diff, repair, measure.
    pub fn step(&mut self, cfg: &MobilityConfig) -> Result<EpochRecord, MobilityError> {
        let slots_before = self.slot_snapshot();

        // (1) motion and (2) minimal edge events.
        let moved = self.model.step();
        let moves: Vec<(usize, Point2)> = moved
            .iter()
            .map(|&i| (i, self.model.positions()[i]))
            .collect();
        let events = self.differ.apply(&moves);
        let (mut appeared, mut disappeared) = (0usize, 0usize);
        for ev in &events {
            if ev.up {
                appeared += 1;
            } else {
                disappeared += 1;
            }
            self.dirty.insert(ev.a);
            self.dirty.insert(ev.b);
        }

        // (3) repair pass over the dirty set, ascending logical order. A
        // reconfiguration of `u` re-records *all* of `u`'s edges, so it
        // also cleans the shared edge of any other dirty node.
        let root_logical = 0usize;
        let mut reconfigs = 0usize;
        let mut rehomed = 0usize;
        let mut move_out_rounds = 0u64;
        let mut move_in_rounds = 0u64;
        let mut still_dirty = BTreeSet::new();
        for u in std::mem::take(&mut self.dirty) {
            if u == root_logical {
                // The sink never moves out; its edges are repaired from
                // the other endpoint. Re-checked below.
                still_dirty.insert(u);
                continue;
            }
            let desired = self.desired_neighbors(u);
            if desired == self.actual_neighbors(u) {
                continue; // a peer's reconfiguration already fixed it
            }
            if desired.is_empty() {
                still_dirty.insert(u); // isolated: nothing to re-attach to
                continue;
            }
            if self.mc.net().can_move_out(self.node_of[u]).is_err() {
                still_dirty.insert(u); // momentarily a cut vertex
                continue;
            }
            let out = self
                .mc
                .move_out(self.node_of[u])
                .expect("preconditions were previewed");
            move_out_rounds += out.cost.total();
            rehomed += out.rehomed.len();
            // `desired` ids are still valid: re-homing preserves ids and
            // only `u`'s own id was tombstoned.
            let rep = self
                .mc
                .move_in(&desired, &self.groups_of[u])
                .expect("desired neighbours are live attached nodes");
            move_in_rounds += rep.cost.total();
            self.node_of[u] = rep.node;
            reconfigs += 1;
        }
        // Keep only the nodes that are genuinely still stale (a later
        // peer's reconfiguration may have cleaned an earlier deferral).
        for u in still_dirty {
            if self.desired_neighbors(u) != self.actual_neighbors(u) {
                self.dirty.insert(u);
            }
        }
        let deferred = self.dirty.len();

        self.epoch += 1;

        // (4) measurements and invariant checks.
        let slots_after = self.slot_snapshot();
        let slot_churn = slots_before
            .iter()
            .zip(&slots_after)
            .filter(|(a, b)| a != b)
            .count();

        if cfg.check_invariants {
            if let Err(violations) = check_core(self.mc.net()) {
                return Err(MobilityError::InvariantViolated {
                    epoch: self.epoch - 1,
                    detail: format!("{violations:?}"),
                });
            }
            if let Err(detail) = self.mc.check_relay_consistency() {
                return Err(MobilityError::InvariantViolated {
                    epoch: self.epoch - 1,
                    detail,
                });
            }
        }

        let broadcast = if cfg.broadcast_every > 0 && self.epoch.is_multiple_of(cfg.broadcast_every)
        {
            let outcome = run_improved(self.mc.net(), self.mc.net().root(), &RunConfig::default());
            Some(BroadcastSample {
                rounds: outcome.rounds as usize,
                delivered: outcome.delivered,
                targets: outcome.targets,
            })
        } else {
            None
        };

        let net = self.mc.net();
        Ok(EpochRecord {
            epoch: self.epoch - 1,
            moved: moves.len(),
            edges_appeared: appeared,
            edges_disappeared: disappeared,
            reconfigs,
            rehomed,
            deferred,
            move_out_rounds,
            move_in_rounds,
            slot_churn,
            backbone: net.backbone_nodes().len(),
            height: net.height() as usize,
            delta_b: net.delta_b() as usize,
            delta_l: net.delta_l() as usize,
            broadcast,
        })
    }

    /// Run `epochs` epochs and collect the full time series.
    pub fn run(
        &mut self,
        epochs: u64,
        cfg: &MobilityConfig,
    ) -> Result<MobilityReport, MobilityError> {
        let mut report = MobilityReport::default();
        for _ in 0..epochs {
            report.epochs.push(self.step(cfg)?);
        }
        Ok(report)
    }

    // ----- helpers --------------------------------------------------------

    /// Structure ids geometrically in range of logical node `u`, sorted.
    fn desired_neighbors(&self, u: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .differ
            .neighbors_within(u)
            .into_iter()
            .map(|j| self.node_of[j])
            .collect();
        out.sort_unstable();
        out
    }

    /// Structure ids the recorded graph links to logical node `u`, sorted.
    fn actual_neighbors(&self, u: usize) -> Vec<NodeId> {
        let mut out = self.mc.net().graph().neighbors(self.node_of[u]).to_vec();
        out.sort_unstable();
        out
    }

    /// Per-logical-node (b, l) slots, for churn accounting.
    fn slot_snapshot(&self) -> Vec<(Option<u32>, Option<u32>)> {
        let slots = self.mc.net().slots();
        self.node_of
            .iter()
            .map(|&id| (slots.b(id), slots.l(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RandomWaypoint, WaypointParams};
    use dsnet_geom::{Deployment, DeploymentConfig};

    fn deploy(n: usize, seed: u64) -> Deployment {
        Deployment::generate(DeploymentConfig::paper_field(6.0, n, seed))
    }

    fn waypoint_net(n: usize, seed: u64) -> MobileNetwork {
        let d = deploy(n, seed);
        let model = RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams::default(),
            seed ^ 0xABCD,
        );
        MobileNetwork::new(&d, Box::new(model)).unwrap()
    }

    #[test]
    fn initial_structure_matches_deployment() {
        let net = waypoint_net(60, 5);
        assert_eq!(net.len(), 60);
        assert_eq!(net.net().len(), 60);
        check_core(net.net()).unwrap();
        assert!(net.deferred().is_empty());
        // Recorded graph matches the geometric graph exactly at epoch 0.
        for u in 0..net.len() {
            let desired = net.desired_neighbors(u);
            let actual = net.actual_neighbors(u);
            assert_eq!(desired, actual, "node {u} starts stale");
        }
    }

    #[test]
    fn epochs_are_deterministic() {
        let mut a = waypoint_net(50, 8);
        let mut b = waypoint_net(50, 8);
        let cfg = MobilityConfig::default();
        for _ in 0..30 {
            assert_eq!(a.step(&cfg).unwrap(), b.step(&cfg).unwrap());
        }
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.node_of, b.node_of);
    }

    #[test]
    fn invariants_hold_throughout_motion() {
        let mut net = waypoint_net(70, 3);
        let cfg = MobilityConfig {
            check_invariants: true,
            broadcast_every: 10,
        };
        let report = net.run(60, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 60);
        assert!(report.total_reconfigs() > 0, "motion caused no maintenance");
        for sample in report.broadcast_samples() {
            assert!(sample.targets > 0);
        }
    }

    #[test]
    fn structure_tracks_geometry_when_not_deferred() {
        let mut net = waypoint_net(60, 14);
        let cfg = MobilityConfig::default();
        for _ in 0..40 {
            net.step(&cfg).unwrap();
            let deferred = net.deferred();
            for u in 0..net.len() {
                if deferred.contains(&u) || u == 0 {
                    continue;
                }
                // Every non-deferred, non-root node's recorded edges can
                // only disagree with geometry via an edge shared with a
                // deferred node or the root.
                let desired = net.desired_neighbors(u);
                let actual = net.actual_neighbors(u);
                let blamable: Vec<NodeId> = deferred
                    .iter()
                    .map(|&v| net.node_of(v))
                    .chain(std::iter::once(net.node_of(0)))
                    .collect();
                for id in desired.iter().filter(|id| !actual.contains(id)) {
                    assert!(blamable.contains(id), "unexplained missing edge at {u}");
                }
                for id in actual.iter().filter(|id| !desired.contains(id)) {
                    assert!(blamable.contains(id), "unexplained stale edge at {u}");
                }
            }
        }
    }

    #[test]
    fn groups_survive_reconfiguration() {
        let d = deploy(40, 21);
        let groups: Vec<Vec<GroupId>> = (0..40).map(|i| vec![(i % 3) as GroupId]).collect();
        let model = RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams::default(),
            99,
        );
        let mut net = MobileNetwork::with_groups(&d, Box::new(model), groups).unwrap();
        let cfg = MobilityConfig::default();
        let report = net.run(30, &cfg).unwrap();
        assert!(report.total_reconfigs() > 0);
        for u in 0..net.len() {
            assert_eq!(
                net.mc().group_list(net.node_of(u)),
                &[(u % 3) as GroupId],
                "node {u} lost its groups"
            );
        }
        net.mc().check_relay_consistency().unwrap();
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let d = deploy(10, 2);
        let model = RandomWaypoint::new(
            d.positions[..5].to_vec(),
            d.config.region,
            WaypointParams::default(),
            1,
        );
        assert!(matches!(
            MobileNetwork::new(&d, Box::new(model)),
            Err(MobilityError::ModelMismatch(_))
        ));
    }
}
