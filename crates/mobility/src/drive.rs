//! The maintenance driver: keeps a live MCNet(G) valid while nodes move.
//!
//! Each epoch the driver (1) steps the trajectory model, (2) feeds the
//! position deltas to the [`TopologyDiffer`] and collects the minimal
//! edge-event stream, (3) marks both endpoints of every changed edge
//! *dirty*, and (4) repairs each dirty node whose recorded radio
//! neighbourhood no longer matches the geometric truth with the paper's
//! own primitives: one `node-move-out` (Algorithm `node-move-out`,
//! Section 5.2) followed by one `node-move-in` (Definition 1 /
//! Algorithm 3) under the node's current neighbours.
//!
//! The structure is therefore *always* a valid CNet(G) of the graph it
//! records — the paper's invariants are checked after every epoch — while
//! the recorded graph chases the geometric topology. Repairs that the
//! paper's operations refuse are deferred, not forced:
//!
//! * the **root** (sink) never moves out; an edge between the root and a
//!   mobile neighbour is repaired from the neighbour's side;
//! * a node that is momentarily a **cut vertex** of the recorded graph
//!   (`move_out` would disconnect it) stays put until motion opens an
//!   alternative path;
//! * a node with **no in-range neighbour** cannot re-attach and waits
//!   until it drifts back into contact.
//!
//! Determinism: dirty nodes are processed in ascending logical order and
//! every data structure iterates in a fixed order, so a run is a pure
//! function of the deployment, the model and its seed.
//!
//! # Cost model
//!
//! The epoch loop is **allocation-free in steady state**: every
//! per-epoch buffer (moved indices, move batch, edge events, repair
//! queue, neighbour scratch, per-node state snapshots) lives in a
//! reusable [`EpochScratch`] that grows to a high-water mark and is then
//! recycled. Invariant checking defaults to [`AuditMode::Dirty`]: the
//! driver hands [`DirtyAudit`] exactly the nodes whose recorded tuple
//! (status, parent, depth, slots) changed this epoch plus the surviving
//! endpoints of every recorded-graph edge it inserted or removed, and
//! the audit re-verifies Definition 1 and the Time-Slot Conditions only
//! over that set's closed neighbourhood instead of sweeping the whole
//! network. [`AuditMode::Full`] retains the global `check_core` oracle.
//! Where each epoch's time went is reported in
//! [`EpochRecord::timings`](crate::report::MaintenanceTimings).

use crate::differ::{EdgeEvent, TopologyDiffer};
use crate::model::MobilityModel;
use crate::report::{BroadcastSample, EpochRecord, MaintenanceTimings, MobilityReport};
use dsnet_cluster::invariants::{check_core, DirtyAudit};
use dsnet_cluster::{GroupId, McNet, MoveInReport, NodeStatus};
use dsnet_geom::{Deployment, Point2};
use dsnet_graph::NodeId;
use dsnet_protocols::runner::run_improved_with;
use dsnet_protocols::{KnowledgeCache, RunConfig};
use std::fmt;
use std::time::Instant;

/// Errors from building or running a [`MobileNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum MobilityError {
    /// Arrival `index` hears no earlier node, so the initial structure
    /// cannot be grown (the deployment is not incrementally connected at
    /// the radio range).
    DisconnectedArrival(usize),
    /// The model's node count or field does not match the deployment.
    ModelMismatch(String),
    /// An invariant of the paper failed after an epoch (only produced
    /// when [`MobilityConfig::check_invariants`] is on).
    InvariantViolated {
        /// Epoch after which the check failed.
        epoch: u64,
        /// Human-readable violation detail.
        detail: String,
    },
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::DisconnectedArrival(i) => {
                write!(f, "arrival {i} hears no earlier node at the radio range")
            }
            MobilityError::ModelMismatch(why) => write!(f, "model mismatch: {why}"),
            MobilityError::InvariantViolated { epoch, detail } => {
                write!(f, "invariant violated after epoch {epoch}: {detail}")
            }
        }
    }
}

impl std::error::Error for MobilityError {}

/// How per-epoch invariant checking scopes its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Re-verify only the dirty nodes' closed neighbourhoods with
    /// [`DirtyAudit`] (plus the cheap global checks it always runs).
    #[default]
    Dirty,
    /// Sweep the whole structure with the global `check_core` oracle,
    /// exactly as before the incremental audit existed.
    Full,
}

/// Knobs of a mobile run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobilityConfig {
    /// Check the Definition-1 / Time-Slot-Condition invariant suite
    /// (plus relay-list consistency) after every epoch.
    pub check_invariants: bool,
    /// Sample a broadcast from the sink every this many epochs
    /// (0 = never).
    pub broadcast_every: u64,
    /// Channels (`k` of the paper's CFF schedule) the broadcast probe
    /// transmits on. Probe outcomes stay deterministic for any value;
    /// more channels trade schedule width for fewer rounds.
    pub probe_channels: u8,
    /// Scope of the per-epoch invariant check (ignored when
    /// `check_invariants` is off).
    pub audit: AuditMode,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self {
            check_invariants: true,
            broadcast_every: 0,
            probe_channels: 1,
            audit: AuditMode::Dirty,
        }
    }
}

/// Recorded per-node facts the dirty audit keys invalidation on:
/// (status, parent, depth, b-slot, l-slot).
type NodeState = (NodeStatus, Option<NodeId>, u32, Option<u32>, Option<u32>);

/// Reusable per-epoch buffers; all grow to a high-water mark once and
/// are then recycled, so a steady-state epoch allocates nothing.
#[derive(Debug, Default)]
struct EpochScratch {
    /// Logical indices moved by the model this epoch.
    moved: Vec<usize>,
    /// The differ's move batch built from `moved`.
    moves: Vec<(usize, Point2)>,
    /// Net edge events of this epoch's motion.
    events: Vec<EdgeEvent>,
    /// Dirty logical nodes being repaired this epoch.
    queue: Vec<usize>,
    /// Nodes the repair pass deferred, pending the re-check.
    still_dirty: Vec<usize>,
    /// Geometric neighbour indices of one node.
    nbr: Vec<usize>,
    /// Desired (geometric) structure ids of one node, sorted.
    desired: Vec<NodeId>,
    /// Recorded structure ids of one node, sorted.
    actual: Vec<NodeId>,
    /// Structure ids handed to the dirty audit.
    dirty_ids: Vec<NodeId>,
    /// This epoch's per-node state, double-buffered with `prev_state`.
    cur_state: Vec<NodeState>,
}

/// A live MCNet(G) whose nodes move: trajectory model + topology differ +
/// structure maintenance, stepped one epoch at a time.
pub struct MobileNetwork {
    mc: McNet,
    differ: TopologyDiffer,
    model: Box<dyn MobilityModel>,
    /// Logical node (trajectory index) → current structure id. Move-outs
    /// tombstone ids, so a reconfigured node gets a fresh id each time.
    node_of: Vec<NodeId>,
    groups_of: Vec<Vec<GroupId>>,
    has_groups: bool,
    /// Logical nodes whose recorded neighbourhood may disagree with the
    /// geometric one (deferred repairs carry over between epochs).
    /// Sorted ascending, no duplicates.
    dirty: Vec<usize>,
    epoch: u64,
    build_reports: Vec<MoveInReport>,
    /// Per-logical-node recorded state at the end of the last epoch
    /// (initially: after the initial growth).
    prev_state: Vec<NodeState>,
    audit: DirtyAudit,
    knowledge: KnowledgeCache,
    scratch: EpochScratch,
}

impl fmt::Debug for MobileNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MobileNetwork")
            .field("nodes", &self.node_of.len())
            .field("epoch", &self.epoch)
            .field("dirty", &self.dirty.len())
            .finish()
    }
}

impl MobileNetwork {
    /// Grow the initial structure by replaying the deployment's arrival
    /// order (node `i` joins hearing the earlier in-range nodes), with no
    /// multicast group memberships.
    pub fn new(
        deployment: &Deployment,
        model: Box<dyn MobilityModel>,
    ) -> Result<Self, MobilityError> {
        Self::with_groups(deployment, model, Vec::new())
    }

    /// Like [`MobileNetwork::new`], with per-node multicast groups
    /// (`groups_of[i]` for logical node `i`; an empty vector means no
    /// memberships everywhere).
    pub fn with_groups(
        deployment: &Deployment,
        model: Box<dyn MobilityModel>,
        mut groups_of: Vec<Vec<GroupId>>,
    ) -> Result<Self, MobilityError> {
        let n = deployment.positions.len();
        if model.positions().len() != n {
            return Err(MobilityError::ModelMismatch(format!(
                "model tracks {} nodes, deployment has {n}",
                model.positions().len()
            )));
        }
        if model.positions() != &deployment.positions[..] {
            return Err(MobilityError::ModelMismatch(
                "model must start from the deployment's positions".into(),
            ));
        }
        let region = deployment.config.region;
        if model.region() != region {
            return Err(MobilityError::ModelMismatch(
                "model region differs from the deployment field".into(),
            ));
        }
        if groups_of.is_empty() {
            groups_of = vec![Vec::new(); n];
        }
        assert_eq!(groups_of.len(), n, "one group list per node");

        let range = deployment.config.range;
        let differ = TopologyDiffer::new(region, range, &deployment.positions);
        let mut mc = McNet::with_defaults();
        let mut node_of = Vec::with_capacity(n);
        let mut build_reports = Vec::with_capacity(n);
        for (i, groups) in groups_of.iter().enumerate() {
            let earlier: Vec<NodeId> = differ
                .neighbors_within(i)
                .into_iter()
                .filter(|&j| j < i)
                .map(|j| node_of[j])
                .collect();
            if i > 0 && earlier.is_empty() {
                return Err(MobilityError::DisconnectedArrival(i));
            }
            let rep = mc
                .move_in(&earlier, groups)
                .expect("replayed arrival hears only live nodes");
            node_of.push(rep.node);
            build_reports.push(rep);
        }
        let has_groups = groups_of.iter().any(|g| !g.is_empty());
        let mut net = Self {
            mc,
            differ,
            model,
            node_of,
            groups_of,
            has_groups,
            dirty: Vec::new(),
            epoch: 0,
            build_reports,
            prev_state: Vec::new(),
            audit: DirtyAudit::default(),
            knowledge: KnowledgeCache::new(),
            scratch: EpochScratch::default(),
        };
        let mut initial = Vec::new();
        net.capture_state_into(&mut initial);
        net.prev_state = initial;
        Ok(net)
    }

    // ----- accessors ------------------------------------------------------

    /// The live multicast structure.
    pub fn mc(&self) -> &McNet {
        &self.mc
    }

    /// The underlying cluster structure.
    pub fn net(&self) -> &dsnet_cluster::ClusterNet {
        self.mc.net()
    }

    /// Current structure id of logical node `u`.
    pub fn node_of(&self, u: usize) -> NodeId {
        self.node_of[u]
    }

    /// Number of (logical) nodes.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current geometric positions, by logical node.
    pub fn positions(&self) -> &[Point2] {
        self.differ.positions()
    }

    /// Logical nodes whose repair is currently deferred, ascending.
    pub fn deferred(&self) -> Vec<usize> {
        self.dirty.clone()
    }

    /// Move-in reports of the initial growth (one per arrival).
    pub fn build_reports(&self) -> &[MoveInReport] {
        &self.build_reports
    }

    /// Lifetime `(hits, misses, patched)` of the broadcast-probe
    /// knowledge cache; `patched` is the subset of misses served by the
    /// dirty-scoped patch path.
    pub fn knowledge_stats(&self) -> (u64, u64, u64) {
        self.knowledge.stats()
    }

    /// Current positions indexed by **structure id** (`NodeId::index`),
    /// sized to the graph's id capacity; tombstoned ids hold their last
    /// owner's position and are never read by live-node consumers.
    pub fn positions_by_node_id(&self) -> Vec<Point2> {
        let mut out = vec![Point2::ORIGIN; self.mc.net().graph().capacity()];
        for (u, &id) in self.node_of.iter().enumerate() {
            out[id.index()] = self.differ.position(u);
        }
        out
    }

    /// Tear down into the structure and its id-indexed positions.
    pub fn into_parts(self) -> (McNet, Vec<Point2>) {
        let positions = self.positions_by_node_id();
        (self.mc, positions)
    }

    // ----- the epoch loop -------------------------------------------------

    /// Advance one epoch: move, diff, repair, measure.
    pub fn step(&mut self, cfg: &MobilityConfig) -> Result<EpochRecord, MobilityError> {
        let mut s = std::mem::take(&mut self.scratch);
        let mut timings = MaintenanceTimings::default();

        // (1) motion and (2) minimal edge events.
        let t_diff = Instant::now();
        self.model.step_into(&mut s.moved);
        s.moves.clear();
        for &i in &s.moved {
            s.moves.push((i, self.model.positions()[i]));
        }
        self.differ.apply_into(&s.moves, &mut s.events);
        let (mut appeared, mut disappeared) = (0usize, 0usize);
        for ev in &s.events {
            if ev.up {
                appeared += 1;
            } else {
                disappeared += 1;
            }
            self.dirty.push(ev.a);
            self.dirty.push(ev.b);
        }
        self.dirty.sort_unstable();
        self.dirty.dedup();
        timings.diff_ns = t_diff.elapsed().as_nanos() as u64;

        // (3) repair pass over the dirty set, ascending logical order. A
        // reconfiguration of `u` re-records *all* of `u`'s edges, so it
        // also cleans the shared edge of any other dirty node. Structure
        // ids whose recorded edges change are marked for the dirty audit
        // as the repairs happen.
        let t_repair = Instant::now();
        s.dirty_ids.clear();
        std::mem::swap(&mut self.dirty, &mut s.queue);
        self.dirty.clear();
        let root_logical = 0usize;
        let mut reconfigs = 0usize;
        let mut rehomed = 0usize;
        let mut move_out_rounds = 0u64;
        let mut move_in_rounds = 0u64;
        s.still_dirty.clear();
        for k in 0..s.queue.len() {
            let u = s.queue[k];
            if u == root_logical {
                // The sink never moves out; its edges are repaired from
                // the other endpoint. Re-checked below.
                s.still_dirty.push(u);
                continue;
            }
            self.desired_into(u, &mut s.nbr, &mut s.desired);
            self.actual_into(u, &mut s.actual);
            if s.desired == s.actual {
                continue; // a peer's reconfiguration already fixed it
            }
            if s.desired.is_empty() {
                s.still_dirty.push(u); // isolated: nothing to re-attach to
                continue;
            }
            if self.mc.net().can_move_out(self.node_of[u]).is_err() {
                s.still_dirty.push(u); // momentarily a cut vertex
                continue;
            }
            // Surviving endpoints of the removed (old recorded) and
            // inserted (new desired) edges — the audit's dirty set.
            s.dirty_ids.extend_from_slice(&s.actual);
            s.dirty_ids.extend_from_slice(&s.desired);
            let out = self.mc.move_out_previewed(self.node_of[u]);
            move_out_rounds += out.cost.total();
            rehomed += out.rehomed.len();
            s.dirty_ids.extend_from_slice(&out.rehomed);
            // `desired` ids are still valid: re-homing preserves ids and
            // only `u`'s own id was tombstoned.
            let rep = self
                .mc
                .move_in(&s.desired, &self.groups_of[u])
                .expect("desired neighbours are live attached nodes");
            move_in_rounds += rep.cost.total();
            self.node_of[u] = rep.node;
            s.dirty_ids.push(rep.node);
            reconfigs += 1;
        }
        // Keep only the nodes that are genuinely still stale (a later
        // peer's reconfiguration may have cleaned an earlier deferral).
        // Deferred nodes leave the recorded graph untouched, so they add
        // nothing to the audit's dirty set.
        for k in 0..s.still_dirty.len() {
            let u = s.still_dirty[k];
            self.desired_into(u, &mut s.nbr, &mut s.desired);
            self.actual_into(u, &mut s.actual);
            if s.desired != s.actual {
                self.dirty.push(u);
            }
        }
        s.queue.clear();
        let deferred = self.dirty.len();
        timings.repair_ns = t_repair.elapsed().as_nanos() as u64;

        self.epoch += 1;

        // (4a) slot churn + recorded-tuple diff. Any node whose recorded
        // (status, parent, depth, slots) tuple changed — including slot
        // rewrites far from the reconfigured nodes — joins the audit's
        // dirty set.
        let t_slots = Instant::now();
        self.capture_state_into(&mut s.cur_state);
        let mut slot_churn = 0usize;
        for u in 0..self.node_of.len() {
            let prev = self.prev_state[u];
            let cur = s.cur_state[u];
            if (prev.3, prev.4) != (cur.3, cur.4) {
                slot_churn += 1;
            }
            if prev != cur {
                s.dirty_ids.push(self.node_of[u]);
            }
        }
        std::mem::swap(&mut self.prev_state, &mut s.cur_state);
        timings.slots_ns = t_slots.elapsed().as_nanos() as u64;

        // (4b) invariant checks, scoped per the configured audit mode.
        let t_audit = Instant::now();
        if cfg.check_invariants {
            match cfg.audit {
                AuditMode::Full => {
                    timings.full_audits = 1;
                    timings.audit_scope = self.mc.net().len();
                    if let Err(violations) = check_core(self.mc.net()) {
                        return Err(MobilityError::InvariantViolated {
                            epoch: self.epoch - 1,
                            detail: format!("{violations:?}"),
                        });
                    }
                    if let Err(detail) = self.mc.check_relay_consistency() {
                        return Err(MobilityError::InvariantViolated {
                            epoch: self.epoch - 1,
                            detail,
                        });
                    }
                }
                AuditMode::Dirty => {
                    match self.audit.audit(self.mc.net(), &s.dirty_ids) {
                        Ok(scope) => timings.audit_scope = scope,
                        Err(violations) => {
                            return Err(MobilityError::InvariantViolated {
                                epoch: self.epoch - 1,
                                detail: format!("{violations:?}"),
                            });
                        }
                    }
                    // Relay lists only exist under multicast groups;
                    // skip the structure-wide sweep without them.
                    if self.has_groups {
                        if let Err(detail) = self.mc.check_relay_consistency() {
                            return Err(MobilityError::InvariantViolated {
                                epoch: self.epoch - 1,
                                detail,
                            });
                        }
                    }
                }
            }
        }
        timings.audit_ns = t_audit.elapsed().as_nanos() as u64;

        let broadcast = if cfg.broadcast_every > 0 && self.epoch.is_multiple_of(cfg.broadcast_every)
        {
            let before = self.knowledge.full_stats();
            let t_probe = Instant::now();
            let k = self.knowledge.get(self.mc.net());
            // The probe measures protocol rounds, not the trace artifact,
            // so tracing stays off: outcome counters are identical either
            // way and the probe wall isolates knowledge + engine cost.
            let probe_cfg = RunConfig {
                channels: cfg.probe_channels,
                record_trace: false,
                ..RunConfig::default()
            };
            let outcome = run_improved_with(self.mc.net(), &k, self.mc.net().root(), &probe_cfg);
            timings.probe_ns = t_probe.elapsed().as_nanos() as u64;
            let after = self.knowledge.full_stats();
            timings.cache_hits = after.hits - before.hits;
            timings.cache_misses = after.misses - before.misses;
            timings.knowledge_patches = after.patched - before.patched;
            timings.knowledge_scope = after.patched_scope - before.patched_scope;
            timings.knowledge_fallbacks = after.fallbacks - before.fallbacks;
            Some(BroadcastSample {
                rounds: outcome.rounds as usize,
                delivered: outcome.delivered,
                targets: outcome.targets,
            })
        } else {
            None
        };

        let net = self.mc.net();
        let (heads, gateways, _) = net.status_counts();
        let record = EpochRecord {
            epoch: self.epoch - 1,
            moved: s.moves.len(),
            edges_appeared: appeared,
            edges_disappeared: disappeared,
            reconfigs,
            rehomed,
            deferred,
            move_out_rounds,
            move_in_rounds,
            slot_churn,
            backbone: heads + gateways,
            height: net.height() as usize,
            delta_b: net.delta_b() as usize,
            delta_l: net.delta_l() as usize,
            broadcast,
            timings,
        };
        self.scratch = s;
        Ok(record)
    }

    /// Run `epochs` epochs and collect the full time series.
    pub fn run(
        &mut self,
        epochs: u64,
        cfg: &MobilityConfig,
    ) -> Result<MobilityReport, MobilityError> {
        let mut report = MobilityReport::default();
        for _ in 0..epochs {
            report.epochs.push(self.step(cfg)?);
        }
        Ok(report)
    }

    // ----- helpers --------------------------------------------------------

    /// Structure ids geometrically in range of logical node `u`, sorted.
    #[cfg(test)]
    fn desired_neighbors(&self, u: usize) -> Vec<NodeId> {
        let mut nbr = Vec::new();
        let mut out = Vec::new();
        self.desired_into(u, &mut nbr, &mut out);
        out
    }

    /// Structure ids the recorded graph links to logical node `u`, sorted.
    #[cfg(test)]
    fn actual_neighbors(&self, u: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.actual_into(u, &mut out);
        out
    }

    /// Allocation-free [`MobileNetwork::desired_neighbors`], via caller
    /// scratch (`tmp` holds the geometric indices).
    fn desired_into(&self, u: usize, tmp: &mut Vec<usize>, out: &mut Vec<NodeId>) {
        self.differ.neighbors_within_into(u, tmp);
        out.clear();
        out.extend(tmp.iter().map(|&j| self.node_of[j]));
        out.sort_unstable();
    }

    /// Allocation-free [`MobileNetwork::actual_neighbors`].
    fn actual_into(&self, u: usize, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.mc.net().graph().neighbors(self.node_of[u]));
        out.sort_unstable();
    }

    /// Write each logical node's recorded (status, parent, depth, b, l)
    /// tuple into `out`, clearing it first.
    fn capture_state_into(&self, out: &mut Vec<NodeState>) {
        out.clear();
        let net = self.mc.net();
        let tree = net.tree();
        let slots = net.slots();
        for &id in &self.node_of {
            out.push((
                net.status(id),
                tree.parent(id),
                tree.depth(id),
                slots.b(id),
                slots.l(id),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RandomWaypoint, WaypointParams};
    use dsnet_geom::{Deployment, DeploymentConfig};

    fn deploy(n: usize, seed: u64) -> Deployment {
        Deployment::generate(DeploymentConfig::paper_field(6.0, n, seed))
    }

    fn waypoint_net(n: usize, seed: u64) -> MobileNetwork {
        let d = deploy(n, seed);
        let model = RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams::default(),
            seed ^ 0xABCD,
        );
        MobileNetwork::new(&d, Box::new(model)).unwrap()
    }

    #[test]
    fn initial_structure_matches_deployment() {
        let net = waypoint_net(60, 5);
        assert_eq!(net.len(), 60);
        assert_eq!(net.net().len(), 60);
        check_core(net.net()).unwrap();
        assert!(net.deferred().is_empty());
        // Recorded graph matches the geometric graph exactly at epoch 0.
        for u in 0..net.len() {
            let desired = net.desired_neighbors(u);
            let actual = net.actual_neighbors(u);
            assert_eq!(desired, actual, "node {u} starts stale");
        }
    }

    #[test]
    fn epochs_are_deterministic() {
        let mut a = waypoint_net(50, 8);
        let mut b = waypoint_net(50, 8);
        let cfg = MobilityConfig::default();
        for _ in 0..30 {
            assert_eq!(a.step(&cfg).unwrap(), b.step(&cfg).unwrap());
        }
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.node_of, b.node_of);
    }

    #[test]
    fn invariants_hold_throughout_motion() {
        let mut net = waypoint_net(70, 3);
        let cfg = MobilityConfig {
            check_invariants: true,
            broadcast_every: 10,
            ..MobilityConfig::default()
        };
        let report = net.run(60, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 60);
        assert!(report.total_reconfigs() > 0, "motion caused no maintenance");
        for sample in report.broadcast_samples() {
            assert!(sample.targets > 0);
        }
    }

    #[test]
    fn dirty_audit_agrees_with_full_oracle_epoch_by_epoch() {
        // Two identical runs, one audited incrementally and one with the
        // global oracle: both must accept every epoch, and every counter
        // except the audit-bookkeeping itself must agree.
        let mut dirty = waypoint_net(60, 11);
        let mut full = waypoint_net(60, 11);
        let dirty_cfg = MobilityConfig::default();
        let full_cfg = MobilityConfig {
            audit: AuditMode::Full,
            ..MobilityConfig::default()
        };
        for _ in 0..40 {
            let a = dirty.step(&dirty_cfg).unwrap();
            let b = full.step(&full_cfg).unwrap();
            assert_eq!(a.timings.full_audits, 0);
            assert_eq!(b.timings.full_audits, 1);
            assert!(
                a.timings.audit_scope <= b.timings.audit_scope,
                "dirty scope {} exceeds the full sweep {}",
                a.timings.audit_scope,
                b.timings.audit_scope
            );
            let mut a_cmp = a;
            a_cmp.timings = b.timings;
            assert_eq!(a_cmp, b, "audit mode changed simulation state");
        }
        assert_eq!(dirty.node_of, full.node_of);
    }

    #[test]
    fn broadcast_probes_drive_the_knowledge_cache() {
        let mut net = waypoint_net(50, 17);
        let cfg = MobilityConfig {
            broadcast_every: 5,
            ..MobilityConfig::default()
        };
        let report = net.run(40, &cfg).unwrap();
        let totals = report.summed_timings();
        let (hits, misses, patched) = net.knowledge_stats();
        assert_eq!(totals.cache_hits, hits);
        assert_eq!(totals.cache_misses, misses);
        assert_eq!(totals.knowledge_patches, patched);
        assert_eq!(hits + misses, report.broadcast_samples().len() as u64);
        assert!(misses >= 1, "first probe must build knowledge");
        assert!(patched <= misses, "patches are a subset of misses");
    }

    #[test]
    fn probes_under_churn_take_the_patch_path() {
        // Probing every epoch under motion: after the first full build,
        // stale snapshots should be patched, not rebuilt, and each probe
        // must deliver exactly what a from-scratch snapshot delivers
        // (the patched==rebuilt equality is pinned crate-side; here we
        // check the counters actually engage through the driver).
        let mut net = waypoint_net(60, 23);
        let cfg = MobilityConfig {
            broadcast_every: 1,
            ..MobilityConfig::default()
        };
        let report = net.run(30, &cfg).unwrap();
        let totals = report.summed_timings();
        assert!(
            totals.knowledge_patches >= 1,
            "churned probes never patched: {totals:?}"
        );
        assert!(totals.knowledge_scope >= totals.knowledge_patches);
        for sample in report.broadcast_samples() {
            assert_eq!(sample.delivered, sample.targets, "probe lost nodes");
        }
    }

    #[test]
    fn structure_tracks_geometry_when_not_deferred() {
        let mut net = waypoint_net(60, 14);
        let cfg = MobilityConfig::default();
        for _ in 0..40 {
            net.step(&cfg).unwrap();
            let deferred = net.deferred();
            for u in 0..net.len() {
                if deferred.contains(&u) || u == 0 {
                    continue;
                }
                // Every non-deferred, non-root node's recorded edges can
                // only disagree with geometry via an edge shared with a
                // deferred node or the root.
                let desired = net.desired_neighbors(u);
                let actual = net.actual_neighbors(u);
                let blamable: Vec<NodeId> = deferred
                    .iter()
                    .map(|&v| net.node_of(v))
                    .chain(std::iter::once(net.node_of(0)))
                    .collect();
                for id in desired.iter().filter(|id| !actual.contains(id)) {
                    assert!(blamable.contains(id), "unexplained missing edge at {u}");
                }
                for id in actual.iter().filter(|id| !desired.contains(id)) {
                    assert!(blamable.contains(id), "unexplained stale edge at {u}");
                }
            }
        }
    }

    #[test]
    fn groups_survive_reconfiguration() {
        let d = deploy(40, 21);
        let groups: Vec<Vec<GroupId>> = (0..40).map(|i| vec![(i % 3) as GroupId]).collect();
        let model = RandomWaypoint::new(
            d.positions.clone(),
            d.config.region,
            WaypointParams::default(),
            99,
        );
        let mut net = MobileNetwork::with_groups(&d, Box::new(model), groups).unwrap();
        let cfg = MobilityConfig::default();
        let report = net.run(30, &cfg).unwrap();
        assert!(report.total_reconfigs() > 0);
        for u in 0..net.len() {
            assert_eq!(
                net.mc().group_list(net.node_of(u)),
                &[(u % 3) as GroupId],
                "node {u} lost its groups"
            );
        }
        net.mc().check_relay_consistency().unwrap();
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let d = deploy(10, 2);
        let model = RandomWaypoint::new(
            d.positions[..5].to_vec(),
            d.config.region,
            WaypointParams::default(),
            1,
        );
        assert!(matches!(
            MobileNetwork::new(&d, Box::new(model)),
            Err(MobilityError::ModelMismatch(_))
        ));
    }
}
