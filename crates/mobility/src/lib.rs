#![warn(missing_docs)]

//! Trajectory-driven mobility for the dynamic sensor network.
//!
//! The paper's whole premise is a *dynamic* network: CNet(G) is maintained
//! incrementally under `node-move-in` / `node-move-out` (Algorithms 1–3)
//! precisely so the structure survives motion. This crate closes the loop
//! by actually moving the nodes:
//!
//! 1. **Trajectory models** ([`model`]) — deterministic, seedable
//!    random-waypoint and Gauss-Markov walks, stepped in discrete epochs
//!    over a bounded field, behind the [`MobilityModel`] trait.
//! 2. **Topology differ** ([`differ`]) — turns per-epoch position updates
//!    into a minimal stream of edge-appear / edge-disappear events using
//!    the [`dsnet_geom::GridIndex`] spatial hash with point relocation, so
//!    an epoch costs O(moved × local density) instead of an O(n²) rebuild.
//! 3. **Maintenance driver** ([`drive`]) — translates edge events into
//!    `move_out` + `move_in` reconfigurations of the live
//!    [`dsnet_cluster::McNet`], asserts the Definition-1 / Time-Slot-
//!    Condition invariants after every epoch, and records a
//!    [`MobilityReport`] (reconfiguration count, slot churn, move-out
//!    cost, backbone size over time, broadcast latency sampled
//!    mid-motion).
//!
//! Everything is a pure function of its seeds: the same deployment, model
//! parameters and seed replay the same epochs, which is what lets the
//! campaign engine run mobility trials on any number of threads with
//! byte-identical artifacts.

pub mod differ;
pub mod drive;
pub mod model;
pub mod report;

pub use differ::{EdgeEvent, TopologyDiffer};
pub use drive::{AuditMode, MobileNetwork, MobilityConfig, MobilityError};
pub use model::{
    GaussMarkov, GaussMarkovParams, MobilityModel, RandomWaypoint, SparseMotion, WaypointParams,
};
pub use report::{BroadcastSample, EpochRecord, MaintenanceTimings, MobilityReport};
