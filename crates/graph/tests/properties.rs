//! Property-based tests of the graph substrate against brute-force
//! oracles.

use dsnet_graph::{
    components, degree, domset, euler, metrics, traversal, Graph, NodeId, RootedTree,
};
use proptest::prelude::*;

/// Build a graph from an edge-candidate list over `n` nodes.
fn graph_from(n: u8, edges: &[(u8, u8)]) -> Graph {
    let n = n.max(1) as usize;
    let mut g = Graph::with_nodes(n);
    for &(a, b) in edges {
        let (a, b) = (a as usize % n, b as usize % n);
        if a != b {
            g.add_edge(NodeId(a as u32), NodeId(b as u32));
        }
    }
    g
}

/// Build a random rooted tree over `picks.len() + 1` nodes: node i+1
/// attaches under a uniformly chosen earlier node.
fn tree_from(picks: &[u16]) -> RootedTree {
    let mut t = RootedTree::new(NodeId(0));
    for (i, &p) in picks.iter().enumerate() {
        let parent = NodeId((p as usize % (i + 1)) as u32);
        t.attach(NodeId(i as u32 + 1), parent);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn graph_invariants_survive_edits(
        n in 1u8..20,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 0..60),
        removals in prop::collection::vec(any::<u8>(), 0..6),
    ) {
        let mut g = graph_from(n, &edges);
        g.check_invariants();
        for &r in &removals {
            let live: Vec<NodeId> = g.nodes().collect();
            if live.len() <= 1 {
                break;
            }
            g.remove_node(live[r as usize % live.len()]);
            g.check_invariants();
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_property(
        n in 2u8..16,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
    ) {
        let g = graph_from(n, &edges);
        let src = NodeId(0);
        let b = traversal::bfs(&g, src);
        // Every edge (u,v): |dist(u) − dist(v)| ≤ 1 when both reached.
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (b.dist(u), b.dist(v)) {
                prop_assert!(du.abs_diff(dv) <= 1, "edge {u}-{v}: {du} vs {dv}");
            }
        }
        // Parents are one step closer.
        for u in g.nodes() {
            if let Some(p) = b.parent(u) {
                prop_assert_eq!(b.dist(p).unwrap() + 1, b.dist(u).unwrap());
            }
        }
    }

    #[test]
    fn components_partition_the_graph(
        n in 1u8..20,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
    ) {
        let g = graph_from(n, &edges);
        let comps = components::components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.node_count());
        // No node appears twice and no edge crosses components.
        let mut comp_of = vec![usize::MAX; g.capacity()];
        for (i, c) in comps.iter().enumerate() {
            for &u in c {
                prop_assert_eq!(comp_of[u.index()], usize::MAX);
                comp_of[u.index()] = i;
            }
        }
        for (u, v) in g.edges() {
            prop_assert_eq!(comp_of[u.index()], comp_of[v.index()]);
        }
    }

    #[test]
    fn greedy_sets_are_always_valid(
        n in 1u8..20,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 0..50),
    ) {
        let g = graph_from(n, &edges);
        let ds = domset::greedy_dominating_set(&g);
        prop_assert!(domset::is_dominating(&g, &ds));
        let mis = domset::greedy_mis(&g);
        prop_assert!(domset::is_independent(&g, &mis));
        prop_assert!(domset::is_dominating(&g, &mis));
        // A dominating set can never be larger than V or smaller than
        // n / (Δ+1).
        let max_deg = degree::max_degree(&g);
        prop_assert!(ds.len() * (max_deg + 1) >= g.node_count());
    }

    #[test]
    fn euler_tours_of_random_trees_verify(
        picks in prop::collection::vec(any::<u16>(), 0..40),
        start_pick in any::<u16>(),
    ) {
        let t = tree_from(&picks);
        let nodes: Vec<NodeId> = t.nodes().collect();
        let start = nodes[start_pick as usize % nodes.len()];
        let tour = euler::euler_tour(&t, start);
        prop_assert!(euler::verify_tour(&t, start, &tour));
        // Everyone is reached.
        let first = euler::first_arrival_hops(&t, start, &tour);
        for u in t.nodes() {
            prop_assert!(first[u.index()].is_some(), "{u} unreached");
        }
    }

    #[test]
    fn double_sweep_never_exceeds_true_diameter(
        n in 2u8..12,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..40),
    ) {
        let g = graph_from(n, &edges);
        if let Some(d) = metrics::diameter(&g) {
            let seed = g.nodes().next().unwrap();
            let sweep = metrics::diameter_double_sweep(&g, seed);
            prop_assert!(sweep <= d);
            // The sweep is a valid eccentricity, hence ≥ d/2.
            prop_assert!(2 * sweep >= d);
        }
    }

    #[test]
    fn detach_subtree_then_counts_add_up(
        picks in prop::collection::vec(any::<u16>(), 1..40),
        victim_pick in any::<u16>(),
    ) {
        let mut t = tree_from(&picks);
        let nodes: Vec<NodeId> = t.nodes().collect();
        let victim = nodes[victim_pick as usize % (nodes.len() - 1) + 1]; // never root
        let before = t.len();
        let removed = t.detach_subtree(victim);
        prop_assert_eq!(t.len() + removed.len(), before);
        t.check_invariants();
        for &r in &removed {
            prop_assert!(!t.contains(r));
        }
    }
}
