//! Breadth-first search with distances and parent links.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Result of a BFS from a single source.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// `dist[u] == u32::MAX` means unreachable (or tombstoned).
    dist: Vec<u32>,
    /// Parent on a shortest-path tree; `parent[source] == None`.
    parent: Vec<Option<NodeId>>,
    /// Visited nodes in dequeue order (source first).
    pub order: Vec<NodeId>,
    /// The BFS source.
    pub source: NodeId,
}

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

impl Bfs {
    /// Hop distance from the source, if reachable.
    pub fn dist(&self, u: NodeId) -> Option<u32> {
        match self.dist.get(u.index()) {
            Some(&d) if d != UNREACHABLE => Some(d),
            _ => None,
        }
    }

    /// Shortest-path-tree parent, if any.
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent.get(u.index()).copied().flatten()
    }

    /// Whether the source reaches `u`.
    pub fn reached(&self, u: NodeId) -> bool {
        self.dist(u).is_some()
    }

    /// Number of reachable nodes, including the source.
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// Maximum finite distance (the eccentricity of the source within its
    /// component).
    pub fn eccentricity(&self) -> u32 {
        self.order
            .iter()
            .map(|&u| self.dist[u.index()])
            .max()
            .unwrap_or(0)
    }

    /// Shortest path from source to `u` (inclusive), if reachable.
    pub fn path_to(&self, u: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(u) {
            return None;
        }
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// BFS over the live nodes of `g` from `source`.
pub fn bfs(g: &Graph, source: NodeId) -> Bfs {
    assert!(g.is_live(source), "BFS source {source} is not live");
    let cap = g.capacity();
    let mut dist = vec![UNREACHABLE; cap];
    let mut parent = vec![None; cap];
    let mut order = Vec::with_capacity(g.node_count());
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    Bfs {
        dist,
        parent,
        order,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
        g
    }

    #[test]
    fn distances_on_a_cycle() {
        let g = cycle(6);
        let b = bfs(&g, NodeId(0));
        assert_eq!(b.dist(NodeId(0)), Some(0));
        assert_eq!(b.dist(NodeId(1)), Some(1));
        assert_eq!(b.dist(NodeId(3)), Some(3));
        assert_eq!(b.dist(NodeId(5)), Some(1));
        assert_eq!(b.eccentricity(), 3);
        assert_eq!(b.reached_count(), 6);
    }

    #[test]
    fn unreachable_nodes_report_none() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        let b = bfs(&g, NodeId(0));
        assert_eq!(b.dist(NodeId(2)), None);
        assert!(!b.reached(NodeId(2)));
        assert_eq!(b.reached_count(), 2);
        assert_eq!(b.path_to(NodeId(2)), None);
    }

    #[test]
    fn path_to_follows_parents() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let b = bfs(&g, NodeId(0));
        assert_eq!(
            b.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn order_starts_at_source_and_is_monotone_in_dist() {
        let g = cycle(8);
        let b = bfs(&g, NodeId(2));
        assert_eq!(b.order[0], NodeId(2));
        let dists: Vec<_> = b.order.iter().map(|&u| b.dist(u).unwrap()).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bfs_skips_tombstones() {
        let mut g = cycle(5);
        g.remove_node(NodeId(1));
        let b = bfs(&g, NodeId(0));
        // 0-4-3-2 remains a path.
        assert_eq!(b.dist(NodeId(2)), Some(3));
    }
}
