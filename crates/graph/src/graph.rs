//! A dynamic undirected graph with stable node identities.
//!
//! Node ids are dense `u32` indices assigned in insertion order and *never
//! recycled*: removing a node leaves a tombstone so that later layers
//! (cluster structures, radio engines, traces) can keep referring to nodes
//! by id across churn without aliasing. This matches the paper's model where
//! each sensor has a permanent distinct ID.

use std::fmt;

/// Identity of a node. Dense per-graph index, never recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Dynamic undirected simple graph.
///
/// ```
/// use dsnet_graph::{Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// assert_eq!(g.degree(NodeId(1)), 2);
///
/// // Removal tombstones the id — it is never reused.
/// g.remove_node(NodeId(1));
/// assert_eq!(g.add_node(), NodeId(3));
/// assert_eq!(g.node_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Sorted adjacency lists; `adj[u]` is meaningful only while `alive[u]`.
    adj: Vec<Vec<NodeId>>,
    alive: Vec<bool>,
    live_count: usize,
    edge_count: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a graph with `n` isolated live nodes (ids `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            live_count: n,
            edge_count: 0,
        }
    }

    /// Add a new isolated node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adj.len() as u32);
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.live_count += 1;
        id
    }

    /// Add a node already connected to `neighbors` (each must be live).
    pub fn add_node_with_neighbors(&mut self, neighbors: &[NodeId]) -> NodeId {
        let id = self.add_node();
        for &v in neighbors {
            self.add_edge(id, v);
        }
        id
    }

    /// Total id space size (live + tombstoned).
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Number of undirected edges between live nodes.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether `u` is a valid live node.
    pub fn is_live(&self, u: NodeId) -> bool {
        self.alive.get(u.index()).copied().unwrap_or(false)
    }

    fn assert_live(&self, u: NodeId) {
        assert!(self.is_live(u), "node {u} is not live in this graph");
    }

    /// Insert the undirected edge `{u, v}`. Idempotent; self-loops rejected.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self-loops are not allowed");
        self.assert_live(u);
        self.assert_live(v);
        let inserted = insert_sorted(&mut self.adj[u.index()], v);
        if inserted {
            insert_sorted(&mut self.adj[v.index()], u);
            self.edge_count += 1;
        }
    }

    /// Remove the undirected edge `{u, v}` if present; returns whether it
    /// existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        let removed = remove_sorted(&mut self.adj[u.index()], v);
        if removed {
            remove_sorted(&mut self.adj[v.index()], u);
            self.edge_count -= 1;
        }
        removed
    }

    /// Remove a node and all incident edges. The id becomes a tombstone and
    /// is never reused. Returns the node's former neighbours.
    pub fn remove_node(&mut self, u: NodeId) -> Vec<NodeId> {
        self.assert_live(u);
        let neighbors = std::mem::take(&mut self.adj[u.index()]);
        for &v in &neighbors {
            remove_sorted(&mut self.adj[v.index()], u);
        }
        self.edge_count -= neighbors.len();
        self.alive[u.index()] = false;
        self.live_count -= 1;
        neighbors
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.is_live(u) && self.is_live(v) && self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Sorted neighbours of a live node.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.assert_live(u);
        &self.adj[u.index()]
    }

    /// Degree of a live node.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Iterator over live node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterator over undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.adj[u.index()]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The subgraph of `self` induced by `keep` (live nodes only). Returned
    /// as a new graph whose ids are *the same* as in `self`; nodes outside
    /// `keep` exist as tombstones so ids stay aligned across both graphs.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> Graph {
        let mut in_set = vec![false; self.capacity()];
        for &u in keep {
            if self.is_live(u) {
                in_set[u.index()] = true;
            }
        }
        let mut g = Graph {
            adj: vec![Vec::new(); self.capacity()],
            alive: in_set.clone(),
            live_count: in_set.iter().filter(|&&b| b).count(),
            edge_count: 0,
        };
        for (u, v) in self.edges() {
            if in_set[u.index()] && in_set[v.index()] {
                g.adj[u.index()].push(v);
                g.adj[v.index()].push(u);
                g.edge_count += 1;
            }
        }
        for a in &mut g.adj {
            a.sort_unstable();
        }
        g
    }

    /// Verify internal symmetry/sortedness invariants. Used by tests.
    pub fn check_invariants(&self) {
        let mut edges = 0;
        for u in self.nodes() {
            let a = &self.adj[u.index()];
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "adjacency not sorted/unique"
            );
            for &v in a {
                assert!(self.is_live(v), "edge to dead node");
                assert!(
                    self.adj[v.index()].binary_search(&u).is_ok(),
                    "asymmetric edge {u}-{v}"
                );
            }
            edges += a.len();
        }
        assert_eq!(edges % 2, 0);
        assert_eq!(edges / 2, self.edge_count, "edge_count out of sync");
    }
}

fn insert_sorted(v: &mut Vec<NodeId>, x: NodeId) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(pos) => {
            v.insert(pos, x);
            true
        }
    }
}

fn remove_sorted(v: &mut Vec<NodeId>, x: NodeId) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        g
    }

    #[test]
    fn add_edge_is_idempotent_and_symmetric() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        g.check_invariants();
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0));
    }

    #[test]
    fn remove_node_leaves_tombstone() {
        let mut g = path(4);
        let nbrs = g.remove_node(NodeId(1));
        assert_eq!(nbrs, vec![NodeId(0), NodeId(2)]);
        assert!(!g.is_live(NodeId(1)));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        // Id 1 is not reused.
        let id = g.add_node();
        assert_eq!(id, NodeId(4));
        g.check_invariants();
    }

    #[test]
    fn remove_edge_reports_presence() {
        let mut g = path(3);
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        g.check_invariants();
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let mut g = path(5);
        g.add_edge(NodeId(0), NodeId(4));
        let sub = g.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(4)]);
        assert_eq!(sub.node_count(), 3);
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert!(sub.has_edge(NodeId(0), NodeId(4)));
        assert!(!sub.has_edge(NodeId(1), NodeId(2)));
        assert!(!sub.is_live(NodeId(2)));
        sub.check_invariants();
    }

    #[test]
    fn add_node_with_neighbors_wires_all_edges() {
        let mut g = path(3);
        let id = g.add_node_with_neighbors(&[NodeId(0), NodeId(2)]);
        assert_eq!(g.degree(id), 2);
        assert!(g.has_edge(id, NodeId(0)));
        g.check_invariants();
    }

    #[test]
    fn nodes_skips_tombstones() {
        let mut g = path(3);
        g.remove_node(NodeId(0));
        let live: Vec<_> = g.nodes().collect();
        assert_eq!(live, vec![NodeId(1), NodeId(2)]);
    }
}
