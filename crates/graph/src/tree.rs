//! Rooted trees over graph node ids.
//!
//! CNet(G) — the paper's cluster-net — is a rooted spanning tree of `G`
//! that grows by attaching new leaves (`node-move-in`) and shrinks by
//! detaching whole subtrees (`node-move-out`). [`RootedTree`] provides that
//! dynamic rooted-tree substrate with maintained depths, plus the queries
//! (children, subtree enumeration, height) the protocols need.
//!
//! Children are stored in a left-child/right-sibling slab: four dense
//! `u32` arrays indexed by node id (`first_child`, `last_child`,
//! `next_sib`, `prev_sib`) instead of one `Vec<NodeId>` per node. At the
//! 100k-node scale this removes ~n separate heap allocations from every
//! tree build and keeps sibling walks on contiguous memory; attachment
//! order is preserved (new children append at the tail) and both attach
//! and unlink are O(1).

use crate::graph::NodeId;

/// Sentinel for "no node" in the sibling-slab arrays.
const NONE: u32 = u32::MAX;

/// A dynamic rooted tree over node ids (ids index into dense vectors; the
/// tree may cover any subset of the id space).
///
/// ```
/// use dsnet_graph::{NodeId, RootedTree};
///
/// let mut t = RootedTree::new(NodeId(0));
/// t.attach(NodeId(1), NodeId(0));
/// t.attach(NodeId(2), NodeId(1));
/// assert_eq!(t.depth(NodeId(2)), 2);
/// assert_eq!(t.height(), 2);
/// assert_eq!(t.path_to_root(NodeId(2)), vec![NodeId(2), NodeId(1), NodeId(0)]);
/// ```
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    /// Head of each node's child list (`NONE` for leaves).
    first_child: Vec<u32>,
    /// Tail of each node's child list; lets attach append in O(1) while
    /// preserving attachment order.
    last_child: Vec<u32>,
    /// Next younger sibling of each node (`NONE` at the tail).
    next_sib: Vec<u32>,
    /// Next older sibling of each node (`NONE` at the head); makes unlink
    /// O(1) and reverse sibling walks allocation-free.
    prev_sib: Vec<u32>,
    depth: Vec<u32>,
    in_tree: Vec<bool>,
    count: usize,
    /// `depth_counts[d]` = number of tree nodes at depth `d`; keeps
    /// [`RootedTree::height`] O(1) instead of an id-space sweep (the
    /// mobility repair loop reads the height once per re-homed node).
    depth_counts: Vec<usize>,
    max_depth: u32,
}

/// Iterator over a node's children in attachment order (a walk down the
/// sibling slab). Returned by [`RootedTree::children`].
#[derive(Debug, Clone)]
pub struct ChildIter<'a> {
    next_sib: &'a [u32],
    cur: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NONE {
            return None;
        }
        let id = NodeId(self.cur);
        self.cur = self.next_sib[self.cur as usize];
        Some(id)
    }
}

impl RootedTree {
    /// A tree containing only `root`.
    pub fn new(root: NodeId) -> Self {
        let mut t = Self {
            root,
            parent: Vec::new(),
            first_child: Vec::new(),
            last_child: Vec::new(),
            next_sib: Vec::new(),
            prev_sib: Vec::new(),
            depth: Vec::new(),
            in_tree: Vec::new(),
            count: 0,
            depth_counts: vec![1],
            max_depth: 0,
        };
        t.ensure_capacity(root.index() + 1);
        t.in_tree[root.index()] = true;
        t.count = 1;
        t
    }

    fn count_depth(&mut self, d: u32) {
        let d = d as usize;
        if self.depth_counts.len() <= d {
            self.depth_counts.resize(d + 1, 0);
        }
        self.depth_counts[d] += 1;
        self.max_depth = self.max_depth.max(d as u32);
    }

    fn uncount_depth(&mut self, d: u32) {
        self.depth_counts[d as usize] -= 1;
        while self.max_depth > 0 && self.depth_counts[self.max_depth as usize] == 0 {
            self.max_depth -= 1;
        }
    }

    fn ensure_capacity(&mut self, cap: usize) {
        if self.parent.len() < cap {
            self.parent.resize(cap, None);
            self.first_child.resize(cap, NONE);
            self.last_child.resize(cap, NONE);
            self.next_sib.resize(cap, NONE);
            self.prev_sib.resize(cap, NONE);
            self.depth.resize(cap, 0);
            self.in_tree.resize(cap, false);
        }
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the tree has no nodes (only after detaching the root).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `u` is currently in the tree.
    pub fn contains(&self, u: NodeId) -> bool {
        self.in_tree.get(u.index()).copied().unwrap_or(false)
    }

    fn assert_contains(&self, u: NodeId) {
        assert!(self.contains(u), "node {u} is not in the tree");
    }

    /// Parent of `u` (`None` for the root).
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.assert_contains(u);
        self.parent[u.index()]
    }

    /// Children of `u`, in attachment order.
    pub fn children(&self, u: NodeId) -> ChildIter<'_> {
        self.assert_contains(u);
        ChildIter {
            next_sib: &self.next_sib,
            cur: self.first_child[u.index()],
        }
    }

    /// Number of children of `u` (a sibling-list walk: O(degree)).
    pub fn child_count(&self, u: NodeId) -> usize {
        self.children(u).count()
    }

    /// Depth of `u` (root has depth 0).
    pub fn depth(&self, u: NodeId) -> u32 {
        self.assert_contains(u);
        self.depth[u.index()]
    }

    /// Whether `u` has no children.
    pub fn is_leaf(&self, u: NodeId) -> bool {
        self.assert_contains(u);
        self.first_child[u.index()] == NONE
    }

    /// Whether `u` has at least one child. The paper calls these the
    /// *internal* nodes of CNet(G); only they carry time slots.
    pub fn is_internal(&self, u: NodeId) -> bool {
        !self.is_leaf(u)
    }

    /// Attach `child` (not yet in the tree) under `parent` (in the tree).
    pub fn attach(&mut self, child: NodeId, parent: NodeId) {
        self.assert_contains(parent);
        assert!(!self.contains(child), "node {child} is already in the tree");
        self.ensure_capacity(child.index() + 1);
        let (ci, pi) = (child.index(), parent.index());
        self.in_tree[ci] = true;
        self.parent[ci] = Some(parent);
        let d = self.depth[pi] + 1;
        self.depth[ci] = d;
        // Append at the tail of the sibling list: attachment order is part
        // of the API (preorder walks and slot assignment depend on it).
        let tail = self.last_child[pi];
        self.prev_sib[ci] = tail;
        self.next_sib[ci] = NONE;
        if tail == NONE {
            self.first_child[pi] = child.0;
        } else {
            self.next_sib[tail as usize] = child.0;
        }
        self.last_child[pi] = child.0;
        self.count += 1;
        self.count_depth(d);
    }

    /// Splice `u` out of its parent's sibling list (O(1)).
    fn unlink(&mut self, u: NodeId, parent: NodeId) {
        let (ui, pi) = (u.index(), parent.index());
        let (prev, next) = (self.prev_sib[ui], self.next_sib[ui]);
        if prev == NONE {
            self.first_child[pi] = next;
        } else {
            self.next_sib[prev as usize] = next;
        }
        if next == NONE {
            self.last_child[pi] = prev;
        } else {
            self.prev_sib[next as usize] = prev;
        }
        self.prev_sib[ui] = NONE;
        self.next_sib[ui] = NONE;
    }

    /// Detach the leaf `u` from the tree. Panics if `u` has children or is
    /// the root.
    pub fn detach_leaf(&mut self, u: NodeId) {
        self.assert_contains(u);
        assert!(self.is_leaf(u), "node {u} is not a leaf");
        let p = self.parent[u.index()].expect("cannot detach the root");
        self.unlink(u, p);
        self.parent[u.index()] = None;
        self.in_tree[u.index()] = false;
        self.count -= 1;
        self.uncount_depth(self.depth[u.index()]);
    }

    /// Remove the whole subtree rooted at `u` (which may be the root, in
    /// which case the tree becomes empty and unusable until rebuilt).
    /// Returns the removed nodes in preorder (`u` first).
    pub fn detach_subtree(&mut self, u: NodeId) -> Vec<NodeId> {
        let nodes = self.subtree_nodes(u);
        if let Some(p) = self.parent[u.index()] {
            self.unlink(u, p);
        }
        for &v in &nodes {
            let vi = v.index();
            self.parent[vi] = None;
            self.first_child[vi] = NONE;
            self.last_child[vi] = NONE;
            self.next_sib[vi] = NONE;
            self.prev_sib[vi] = NONE;
            self.in_tree[vi] = false;
            self.uncount_depth(self.depth[vi]);
        }
        self.count -= nodes.len();
        nodes
    }

    /// Nodes of the subtree rooted at `u`, in preorder.
    pub fn subtree_nodes(&self, u: NodeId) -> Vec<NodeId> {
        self.assert_contains(u);
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(v) = stack.pop() {
            out.push(v);
            // Walk siblings youngest-first so the stack pops children in
            // attachment order (preorder contract).
            let mut c = self.last_child[v.index()];
            while c != NONE {
                stack.push(NodeId(c));
                c = self.prev_sib[c as usize];
            }
        }
        out
    }

    /// All tree nodes, in increasing id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.in_tree
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Height of the tree: the maximum depth over all nodes (0 for a
    /// single-node tree). O(1) — maintained incrementally.
    pub fn height(&self) -> u32 {
        debug_assert_eq!(
            self.max_depth,
            self.nodes()
                .map(|u| self.depth[u.index()])
                .max()
                .unwrap_or(0),
            "maintained height diverged from the depth sweep"
        );
        self.max_depth
    }

    /// Height of the subtree rooted at `u`, measured from `u` (a leaf's
    /// subtree height is 0).
    pub fn subtree_height(&self, u: NodeId) -> u32 {
        let base = self.depth(u);
        self.subtree_nodes(u)
            .iter()
            .map(|&v| self.depth[v.index()] - base)
            .max()
            .unwrap_or(0)
    }

    /// Path from `u` up to the root (inclusive both ends).
    pub fn path_to_root(&self, u: NodeId) -> Vec<NodeId> {
        self.assert_contains(u);
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Nodes grouped by depth: `levels()[i]` holds the nodes at depth `i`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); self.height() as usize + 1];
        for u in self.nodes() {
            levels[self.depth[u.index()] as usize].push(u);
        }
        levels
    }

    /// Verify structural invariants (parent/children symmetry, sibling-slab
    /// link symmetry, depth correctness, acyclicity via node count). Used
    /// by tests.
    pub fn check_invariants(&self) {
        let mut visited = 0usize;
        let mut stack = vec![self.root];
        assert!(self.contains(self.root), "root missing");
        assert_eq!(self.depth[self.root.index()], 0);
        while let Some(u) = stack.pop() {
            visited += 1;
            let mut prev = NONE;
            for c in self.children(u) {
                assert!(self.contains(c));
                assert_eq!(
                    self.parent[c.index()],
                    Some(u),
                    "parent/child mismatch at {c}"
                );
                assert_eq!(
                    self.prev_sib[c.index()],
                    prev,
                    "sibling back-link mismatch at {c}"
                );
                assert_eq!(self.depth[c.index()], self.depth[u.index()] + 1);
                stack.push(c);
                prev = c.0;
            }
            assert_eq!(
                self.last_child[u.index()],
                prev,
                "child-list tail mismatch at {u}"
            );
        }
        assert_eq!(visited, self.count, "unreachable nodes or cycle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Root 0 with children 1, 2; 1 has children 3, 4.
    fn sample() -> RootedTree {
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(1));
        t.attach(NodeId(4), NodeId(1));
        t
    }

    fn kids(t: &RootedTree, u: NodeId) -> Vec<NodeId> {
        t.children(u).collect()
    }

    #[test]
    fn attach_maintains_depth_and_children() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.depth(NodeId(3)), 2);
        assert_eq!(kids(&t, NodeId(1)), vec![NodeId(3), NodeId(4)]);
        assert_eq!(t.child_count(NodeId(1)), 2);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.height(), 2);
        t.check_invariants();
    }

    #[test]
    fn detach_leaf_removes_single_node() {
        let mut t = sample();
        t.detach_leaf(NodeId(4));
        assert!(!t.contains(NodeId(4)));
        assert_eq!(kids(&t, NodeId(1)), vec![NodeId(3)]);
        assert_eq!(t.len(), 4);
        t.check_invariants();
    }

    #[test]
    fn detach_middle_sibling_preserves_order() {
        let mut t = RootedTree::new(NodeId(0));
        for i in 1..=4 {
            t.attach(NodeId(i), NodeId(0));
        }
        t.detach_leaf(NodeId(2));
        assert_eq!(kids(&t, NodeId(0)), vec![NodeId(1), NodeId(3), NodeId(4)]);
        t.detach_leaf(NodeId(4));
        assert_eq!(kids(&t, NodeId(0)), vec![NodeId(1), NodeId(3)]);
        t.attach(NodeId(2), NodeId(0));
        assert_eq!(kids(&t, NodeId(0)), vec![NodeId(1), NodeId(3), NodeId(2)]);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "is not a leaf")]
    fn detach_internal_as_leaf_panics() {
        let mut t = sample();
        t.detach_leaf(NodeId(1));
    }

    #[test]
    fn detach_subtree_returns_preorder() {
        let mut t = sample();
        let removed = t.detach_subtree(NodeId(1));
        assert_eq!(removed, vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(t.len(), 2);
        assert!(t.contains(NodeId(2)));
        assert!(!t.contains(NodeId(3)));
        t.check_invariants();
    }

    #[test]
    fn reattach_after_subtree_detach_is_clean() {
        let mut t = sample();
        t.detach_subtree(NodeId(1));
        t.attach(NodeId(1), NodeId(2));
        t.attach(NodeId(4), NodeId(1));
        assert_eq!(kids(&t, NodeId(1)), vec![NodeId(4)]);
        assert_eq!(t.depth(NodeId(4)), 3);
        t.check_invariants();
    }

    #[test]
    fn path_to_root_is_bottom_up() {
        let t = sample();
        assert_eq!(
            t.path_to_root(NodeId(3)),
            vec![NodeId(3), NodeId(1), NodeId(0)]
        );
        assert_eq!(t.path_to_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn levels_group_by_depth() {
        let t = sample();
        let levels = t.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![NodeId(0)]);
        assert_eq!(levels[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(levels[2], vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn subtree_height_is_relative() {
        let t = sample();
        assert_eq!(t.subtree_height(NodeId(1)), 1);
        assert_eq!(t.subtree_height(NodeId(3)), 0);
        assert_eq!(t.subtree_height(NodeId(0)), 2);
    }

    #[test]
    fn internal_and_leaf_classification() {
        let t = sample();
        assert!(t.is_internal(NodeId(0)));
        assert!(t.is_internal(NodeId(1)));
        assert!(t.is_leaf(NodeId(2)));
        assert!(t.is_leaf(NodeId(4)));
    }

    #[test]
    fn sparse_ids_work() {
        let mut t = RootedTree::new(NodeId(100));
        t.attach(NodeId(7), NodeId(100));
        assert_eq!(t.depth(NodeId(7)), 1);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }
}
