//! Connectivity queries.

use crate::graph::{Graph, NodeId};
use crate::traversal::bfs;

/// Whether the live part of `g` is connected (vacuously true when empty).
pub fn is_connected(g: &Graph) -> bool {
    let Some(start) = g.nodes().next() else {
        return true;
    };
    bfs(g, start).reached_count() == g.node_count()
}

/// Connected components of the live nodes, each sorted by id; components
/// are ordered by their smallest node id.
pub fn components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.capacity()];
    let mut out = Vec::new();
    for u in g.nodes() {
        if seen[u.index()] {
            continue;
        }
        let b = bfs(g, u);
        let mut comp = b.order;
        for &v in &comp {
            seen[v.index()] = true;
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Ids of the nodes in the same component as `u` (sorted).
pub fn component_of(g: &Graph, u: NodeId) -> Vec<NodeId> {
    let mut comp = bfs(g, u).order;
    comp.sort_unstable();
    comp
}

/// Whether removing `u` would disconnect the remaining live nodes — i.e.,
/// whether `u` is a cut vertex or the graph is already disconnected without
/// it. Returns `false` when `u` is the only node.
///
/// Runs a single traversal over the live graph with `u` barred — no
/// subgraph is materialised, so the hot mobility repair loop (which
/// previews every candidate departure) pays one bitvec and one stack,
/// not an edge-list rebuild.
pub fn disconnects_without(g: &Graph, u: NodeId) -> bool {
    if g.node_count() <= 1 {
        return false;
    }
    let Some(start) = g.nodes().find(|&v| v != u) else {
        return false;
    };
    let mut seen = vec![false; g.capacity()];
    seen[u.index()] = true; // barred: traversal must route around it
    seen[start.index()] = true;
    let mut stack = vec![start];
    let mut reached = 1usize;
    while let Some(x) = stack.pop() {
        for &v in g.neighbors(x) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                reached += 1;
                stack.push(v);
            }
        }
    }
    reached != g.node_count() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_and_disconnected() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert!(!is_connected(&g));
        g.add_edge(NodeId(1), NodeId(2));
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
    }

    #[test]
    fn components_partition_nodes() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(3), NodeId(4));
        let comps = components(&g);
        assert_eq!(
            comps,
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2)],
                vec![NodeId(3), NodeId(4)],
            ]
        );
    }

    #[test]
    fn cut_vertex_detection() {
        // 0-1-2: node 1 is a cut vertex, endpoints are not.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert!(disconnects_without(&g, NodeId(1)));
        assert!(!disconnects_without(&g, NodeId(0)));
        assert!(!disconnects_without(&g, NodeId(2)));
    }

    #[test]
    fn component_of_returns_reachable_set() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(component_of(&g, NodeId(0)), vec![NodeId(0), NodeId(2)]);
        assert_eq!(component_of(&g, NodeId(1)), vec![NodeId(1)]);
    }
}
