//! Eulerian tours of trees.
//!
//! The DFO baseline broadcast of reference \[19\] relays the message along an
//! Eulerian tour of the backbone tree: every undirected tree edge is
//! replaced by two directed edges and the token traverses each exactly
//! once, so a tree with `m` nodes yields a tour of `2(m−1)` token hops.
//! (Property 1(1): `m ≤ 2p−1`, hence the paper's `4p−2` round bound.)

use crate::graph::NodeId;
use crate::tree::RootedTree;

/// The Eulerian tour of `tree` starting (and ending) at `start`, as a
/// sequence of directed token hops `(from, to)`. Neighbours are visited
/// children-first in attachment order, then the parent — mirroring the
/// paper's rule that a node relays to unvisited neighbours before handing
/// the token back to the node it first received the message from.
///
/// A single-node tree yields an empty tour.
pub fn euler_tour(tree: &RootedTree, start: NodeId) -> Vec<(NodeId, NodeId)> {
    assert!(tree.contains(start), "tour start {start} not in tree");
    let mut tour = Vec::with_capacity(2 * tree.len().saturating_sub(1));
    // Recursive DFS, made iterative to survive deep (path-like) trees:
    // each stack frame is (node, entered-from, next-neighbour-cursor).
    let mut stack: Vec<(NodeId, Option<NodeId>, usize)> = vec![(start, None, 0)];
    while let Some(&mut (u, from, ref mut cursor)) = stack.last_mut() {
        let nbrs = tree_neighbors(tree, u);
        // Skip the edge we entered on; it is used last, on the way back.
        while *cursor < nbrs.len() && Some(nbrs[*cursor]) == from {
            *cursor += 1;
        }
        if *cursor < nbrs.len() {
            let v = nbrs[*cursor];
            *cursor += 1;
            tour.push((u, v));
            stack.push((v, Some(u), 0));
        } else {
            stack.pop();
            if let Some(p) = from {
                tour.push((u, p));
            }
        }
    }
    tour
}

/// Tree neighbours of `u`: its children followed by its parent, if any.
fn tree_neighbors(tree: &RootedTree, u: NodeId) -> Vec<NodeId> {
    let mut nbrs: Vec<NodeId> = tree.children(u).collect();
    if let Some(p) = tree.parent(u) {
        nbrs.push(p);
    }
    nbrs
}

/// For each node of the tree, the 0-based hop index at which the token
/// first *arrives* there (`None` entry means the id is outside the tree;
/// the start node gets `Some(0)` by convention, as it holds the message
/// from the beginning).
pub fn first_arrival_hops(
    tree: &RootedTree,
    start: NodeId,
    tour: &[(NodeId, NodeId)],
) -> Vec<Option<usize>> {
    let cap = tree.nodes().map(|u| u.index() + 1).max().unwrap_or(0);
    let mut first = vec![None; cap];
    first[start.index()] = Some(0);
    for (i, &(_, to)) in tour.iter().enumerate() {
        let slot = &mut first[to.index()];
        if slot.is_none() {
            *slot = Some(i + 1);
        }
    }
    first
}

/// Check that `tour` is a valid Eulerian tour of `tree` from `start`:
/// contiguous, covers every tree edge exactly once per direction, and
/// returns to `start`.
pub fn verify_tour(tree: &RootedTree, start: NodeId, tour: &[(NodeId, NodeId)]) -> bool {
    if tree.len() <= 1 {
        return tour.is_empty();
    }
    if tour.len() != 2 * (tree.len() - 1) {
        return false;
    }
    // Contiguity and endpoints.
    if tour[0].0 != start || tour[tour.len() - 1].1 != start {
        return false;
    }
    for w in tour.windows(2) {
        if w[0].1 != w[1].0 {
            return false;
        }
    }
    // Each directed tree edge exactly once.
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in tour {
        let edge_ok = tree.parent(a) == Some(b) || tree.parent(b) == Some(a);
        if !edge_ok || !seen.insert((a, b)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RootedTree {
        let mut t = RootedTree::new(NodeId(0));
        t.attach(NodeId(1), NodeId(0));
        t.attach(NodeId(2), NodeId(0));
        t.attach(NodeId(3), NodeId(1));
        t
    }

    #[test]
    fn tour_from_root_covers_all_edges_twice() {
        let t = sample();
        let tour = euler_tour(&t, NodeId(0));
        assert_eq!(tour.len(), 6);
        assert!(verify_tour(&t, NodeId(0), &tour));
        assert_eq!(
            tour,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(3)),
                (NodeId(3), NodeId(1)),
                (NodeId(1), NodeId(0)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0)),
            ]
        );
    }

    #[test]
    fn tour_from_non_root_is_valid() {
        let t = sample();
        for start in [NodeId(1), NodeId(2), NodeId(3)] {
            let tour = euler_tour(&t, start);
            assert!(verify_tour(&t, start, &tour), "bad tour from {start}");
        }
    }

    #[test]
    fn singleton_tree_has_empty_tour() {
        let t = RootedTree::new(NodeId(5));
        let tour = euler_tour(&t, NodeId(5));
        assert!(tour.is_empty());
        assert!(verify_tour(&t, NodeId(5), &tour));
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let mut t = RootedTree::new(NodeId(0));
        for i in 1..10_000u32 {
            t.attach(NodeId(i), NodeId(i - 1));
        }
        let tour = euler_tour(&t, NodeId(0));
        assert_eq!(tour.len(), 2 * 9_999);
        assert!(verify_tour(&t, NodeId(0), &tour));
    }

    #[test]
    fn first_arrival_is_monotone_along_tour() {
        let t = sample();
        let tour = euler_tour(&t, NodeId(3));
        let first = first_arrival_hops(&t, NodeId(3), &tour);
        assert_eq!(first[NodeId(3).index()], Some(0));
        // Every node is eventually reached.
        for u in t.nodes() {
            assert!(first[u.index()].is_some(), "{u} never reached");
        }
        // Node 1 is 3's parent, reached on the first hop.
        assert_eq!(first[NodeId(1).index()], Some(1));
    }

    #[test]
    fn verify_rejects_broken_tours() {
        let t = sample();
        let mut tour = euler_tour(&t, NodeId(0));
        tour.swap(0, 1);
        assert!(!verify_tour(&t, NodeId(0), &tour));
        let short = &euler_tour(&t, NodeId(0))[..4];
        assert!(!verify_tour(&t, NodeId(0), short));
    }
}
