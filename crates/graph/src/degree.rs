//! Degree statistics.
//!
//! The paper's bounds are stated in terms of `D` — the maximum degree of
//! the whole network `G` — and `d` — the maximum degree of `G(V_BT)`, the
//! subgraph of `G` induced by the backbone nodes. Figure 11 plots both.

use crate::graph::{Graph, NodeId};

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Largest degree.
    pub max: usize,
    /// Smallest degree.
    pub min: usize,
    /// Average degree.
    pub mean: f64,
}

/// Degree statistics over the live nodes of `g`. Returns zeros for an
/// empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut max = 0usize;
    let mut min = usize::MAX;
    let mut sum = 0usize;
    let mut n = 0usize;
    for u in g.nodes() {
        let d = g.degree(u);
        max = max.max(d);
        min = min.min(d);
        sum += d;
        n += 1;
    }
    if n == 0 {
        return DegreeStats {
            max: 0,
            min: 0,
            mean: 0.0,
        };
    }
    DegreeStats {
        max,
        min,
        mean: sum as f64 / n as f64,
    }
}

/// Maximum degree `D` of `g` (0 when empty).
pub fn max_degree(g: &Graph) -> usize {
    degree_stats(g).max
}

/// Maximum degree `d` of the subgraph of `g` induced by `nodes`
/// (`G(V_BT)` in the paper when `nodes` is the backbone).
pub fn induced_max_degree(g: &Graph, nodes: &[NodeId]) -> usize {
    let mut in_set = vec![false; g.capacity()];
    for &u in nodes {
        if g.is_live(u) {
            in_set[u.index()] = true;
        }
    }
    let mut max = 0usize;
    for &u in nodes {
        if !g.is_live(u) {
            continue;
        }
        let d = g
            .neighbors(u)
            .iter()
            .filter(|&&v| in_set[v.index()])
            .count();
        max = max.max(d);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_leaves: usize) -> Graph {
        let mut g = Graph::with_nodes(n_leaves + 1);
        for i in 1..=n_leaves {
            g.add_edge(NodeId(0), NodeId(i as u32));
        }
        g
    }

    #[test]
    fn star_degrees() {
        let g = star(5);
        let s = degree_stats(&g);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 1);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(max_degree(&g), 5);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let s = degree_stats(&Graph::new());
        assert_eq!((s.max, s.min), (0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn induced_degree_ignores_outside_edges() {
        let g = star(5);
        // Hub plus two leaves: hub's induced degree is 2, not 5.
        let d = induced_max_degree(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(d, 2);
        // Leaves only: no induced edges at all.
        assert_eq!(induced_max_degree(&g, &[NodeId(1), NodeId(2)]), 0);
    }

    #[test]
    fn induced_degree_of_full_set_is_plain_degree() {
        let g = star(4);
        let all: Vec<_> = g.nodes().collect();
        assert_eq!(induced_max_degree(&g, &all), max_degree(&g));
    }
}
