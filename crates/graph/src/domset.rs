//! Greedy dominating-set and maximal-independent-set approximations.
//!
//! Property 1(3) of the paper states that on a unit-disk graph the number
//! of clusters in CNet(G) is at most `5·|MDS|`. The exact minimum dominating
//! set is NP-hard, so the experiments compare the measured cluster count
//! against the classical greedy O(ln Δ)-approximation computed here, and the
//! MIS is used as a lower-bound witness (any MIS of a unit-disk graph has
//! size ≥ |MDS|... strictly: |MIS| ≤ 5·|MDS|, and |MDS| ≤ |MIS| since an MIS
//! is dominating — giving a bracket around the optimum).

use crate::graph::{Graph, NodeId};

/// Greedy dominating set: repeatedly pick the node covering the most
/// currently-uncovered nodes (ties broken by smallest id for determinism).
/// Returns a sorted set of node ids that dominates every live node.
pub fn greedy_dominating_set(g: &Graph) -> Vec<NodeId> {
    let cap = g.capacity();
    let mut covered = vec![false; cap];
    let mut uncovered = g.node_count();
    let mut chosen = Vec::new();
    // coverage(u) = #uncovered in N[u]; recomputed lazily per sweep. For the
    // network sizes in the paper (n ≤ 720) the simple O(n) argmax sweep per
    // pick is more than fast enough and keeps the code obviously correct.
    while uncovered > 0 {
        let mut best: Option<(usize, NodeId)> = None;
        for u in g.nodes() {
            let mut gain = usize::from(!covered[u.index()]);
            for &v in g.neighbors(u) {
                gain += usize::from(!covered[v.index()]);
            }
            match best {
                Some((bg, _)) if bg >= gain => {}
                _ if gain > 0 => best = Some((gain, u)),
                _ => {}
            }
        }
        let (gain, u) = best.expect("uncovered nodes remain but no node has gain");
        chosen.push(u);
        if !covered[u.index()] {
            covered[u.index()] = true;
            uncovered -= 1;
        }
        for &v in g.neighbors(u) {
            if !covered[v.index()] {
                covered[v.index()] = true;
                uncovered -= 1;
            }
        }
        debug_assert!(gain > 0);
    }
    chosen.sort_unstable();
    chosen
}

/// Greedy maximal independent set, smallest-id-first. The result is both
/// independent (no two chosen nodes adjacent) and dominating (every node is
/// chosen or adjacent to a chosen node).
pub fn greedy_mis(g: &Graph) -> Vec<NodeId> {
    let mut blocked = vec![false; g.capacity()];
    let mut out = Vec::new();
    for u in g.nodes() {
        if blocked[u.index()] {
            continue;
        }
        out.push(u);
        blocked[u.index()] = true;
        for &v in g.neighbors(u) {
            blocked[v.index()] = true;
        }
    }
    out
}

/// Whether `set` dominates every live node of `g`.
pub fn is_dominating(g: &Graph, set: &[NodeId]) -> bool {
    let mut covered = vec![false; g.capacity()];
    for &u in set {
        if !g.is_live(u) {
            return false;
        }
        covered[u.index()] = true;
        for &v in g.neighbors(u) {
            covered[v.index()] = true;
        }
    }
    g.nodes().all(|u| covered[u.index()])
}

/// Whether `set` is independent in `g`.
pub fn is_independent(g: &Graph, set: &[NodeId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_disk::unit_disk_graph;
    use dsnet_geom::{Deployment, DeploymentConfig};

    #[test]
    fn star_dominated_by_hub() {
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        assert_eq!(greedy_dominating_set(&g), vec![NodeId(0)]);
    }

    #[test]
    fn greedy_sets_are_valid_on_random_udgs() {
        let dep = Deployment::generate(DeploymentConfig::paper(150, 23));
        let g = unit_disk_graph(&dep.positions, dep.config.range);
        let ds = greedy_dominating_set(&g);
        assert!(is_dominating(&g, &ds));
        let mis = greedy_mis(&g);
        assert!(is_independent(&g, &mis));
        assert!(is_dominating(&g, &mis), "a maximal IS must dominate");
    }

    #[test]
    fn isolated_nodes_must_be_chosen() {
        let g = Graph::with_nodes(3);
        let ds = greedy_dominating_set(&g);
        assert_eq!(ds, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let mis = greedy_mis(&g);
        assert_eq!(mis.len(), 3);
    }

    #[test]
    fn empty_graph_yields_empty_sets() {
        let g = Graph::new();
        assert!(greedy_dominating_set(&g).is_empty());
        assert!(greedy_mis(&g).is_empty());
        assert!(is_dominating(&g, &[]));
    }

    #[test]
    fn is_dominating_rejects_incomplete_sets() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(!is_dominating(&g, &[NodeId(0)])); // node 2 uncovered
        assert!(is_dominating(&g, &[NodeId(0), NodeId(2)]));
    }

    #[test]
    fn is_independent_detects_adjacency() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(!is_independent(&g, &[NodeId(0), NodeId(1)]));
        assert!(is_independent(&g, &[NodeId(0), NodeId(2)]));
    }
}

/// Greedy connected dominating set: start from a greedy MIS (which
/// dominates), then connect its components through intermediate nodes
/// found by BFS inside `g`. The classical CDS papers the paper cites
/// (\[6\], \[20\], \[22\]) build backbones this way; the result is used as a
/// quality baseline for BT(G) in the experiments.
///
/// Requires `g` connected; returns a sorted node set that is connected in
/// the induced subgraph and dominates every live node.
pub fn greedy_connected_dominating_set(g: &Graph) -> Vec<NodeId> {
    use crate::traversal::bfs;

    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mis = greedy_mis(g);
    if mis.len() <= 1 {
        return mis;
    }
    let mut in_set = vec![false; g.capacity()];
    for &u in &mis {
        in_set[u.index()] = true;
    }
    // Connect greedily: grow a connected component from the first MIS node,
    // each time attaching the nearest not-yet-connected MIS node via a
    // shortest path through G (path interiors join the set).
    let mut connected = vec![false; g.capacity()];
    connected[mis[0].index()] = true;
    let mut connected_count = 1;
    while connected_count < mis.iter().filter(|u| in_set[u.index()]).count() {
        // BFS from the connected part of the set.
        let sources: Vec<NodeId> = g
            .nodes()
            .filter(|u| connected[u.index()] && in_set[u.index()])
            .collect();
        // Multi-source BFS emulated by BFS from one source over a graph
        // where connected set nodes are "free": simpler variant — BFS from
        // the first source and pick the closest unconnected MIS node, then
        // mark its whole path.
        let b = bfs(g, sources[0]);
        let target = mis
            .iter()
            .copied()
            .filter(|&u| !connected[u.index()])
            .min_by_key(|&u| b.dist(u).unwrap_or(u32::MAX))
            .expect("unconnected MIS node exists");
        let path = b.path_to(target).expect("graph is connected");
        for &p in &path {
            in_set[p.index()] = true;
            if !connected[p.index()] {
                connected[p.index()] = true;
                if mis.binary_search(&p).is_ok() {
                    connected_count += 1;
                }
            }
        }
        // Newly added path nodes may bridge other already-found MIS nodes.
        let members: Vec<NodeId> = g.nodes().filter(|u| in_set[u.index()]).collect();
        let sub = g.induced_subgraph(&members);
        let comp = crate::components::component_of(&sub, mis[0]);
        for &u in &comp {
            if !connected[u.index()] {
                connected[u.index()] = true;
                if mis.binary_search(&u).is_ok() {
                    connected_count += 1;
                }
            }
        }
    }
    let result: Vec<NodeId> = g.nodes().filter(|u| in_set[u.index()]).collect();
    debug_assert!(is_dominating(g, &result));
    result
}

/// Whether `set` induces a connected subgraph of `g` (vacuously true for
/// empty or singleton sets).
pub fn is_connected_in(g: &Graph, set: &[NodeId]) -> bool {
    if set.len() <= 1 {
        return true;
    }
    let sub = g.induced_subgraph(set);
    crate::components::is_connected(&sub)
}

#[cfg(test)]
mod cds_tests {
    use super::*;
    use crate::unit_disk::unit_disk_graph;
    use dsnet_geom::{Deployment, DeploymentConfig};

    #[test]
    fn cds_on_a_path_is_the_interior() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5u32 {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        let cds = greedy_connected_dominating_set(&g);
        assert!(is_dominating(&g, &cds));
        assert!(is_connected_in(&g, &cds));
    }

    #[test]
    fn cds_on_random_udgs_is_valid() {
        for seed in [31u64, 32, 33] {
            let dep = Deployment::generate(DeploymentConfig::paper(120, seed));
            let g = unit_disk_graph(&dep.positions, dep.config.range);
            let cds = greedy_connected_dominating_set(&g);
            assert!(is_dominating(&g, &cds), "seed {seed}");
            assert!(is_connected_in(&g, &cds), "seed {seed}");
            assert!(cds.len() < g.node_count());
        }
    }

    #[test]
    fn cds_of_star_is_hub() {
        let mut g = Graph::with_nodes(6);
        for i in 1..6u32 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let cds = greedy_connected_dominating_set(&g);
        assert_eq!(cds, vec![NodeId(0)]);
    }

    #[test]
    fn cds_of_singleton() {
        let g = Graph::with_nodes(1);
        assert_eq!(greedy_connected_dominating_set(&g), vec![NodeId(0)]);
    }

    #[test]
    fn is_connected_in_detects_disconnection() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        assert!(!is_connected_in(&g, &[NodeId(0), NodeId(2)]));
        assert!(is_connected_in(&g, &[NodeId(0), NodeId(1)]));
    }
}
