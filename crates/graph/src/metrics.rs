//! Global graph metrics: eccentricities and diameter.

use crate::graph::{Graph, NodeId};
use crate::traversal::bfs;

/// Eccentricity of `u` within its component: the maximum hop distance from
/// `u` to any reachable node.
pub fn eccentricity(g: &Graph, u: NodeId) -> u32 {
    bfs(g, u).eccentricity()
}

/// Exact hop diameter of a connected graph: max over all nodes of their
/// eccentricity. O(n·(n+m)); fine at the paper's scales. Returns `None`
/// for an empty or disconnected graph.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut max = 0;
    for u in g.nodes() {
        let b = bfs(g, u);
        if b.reached_count() != n {
            return None;
        }
        max = max.max(b.eccentricity());
    }
    Some(max)
}

/// Fast diameter lower bound by the classic double-sweep heuristic:
/// BFS from `seed`, then BFS from the farthest node found. Exact on trees.
pub fn diameter_double_sweep(g: &Graph, seed: NodeId) -> u32 {
    let b1 = bfs(g, seed);
    let far = b1
        .order
        .iter()
        .copied()
        .max_by_key(|&u| b1.dist(u).unwrap_or(0))
        .unwrap_or(seed);
    bfs(g, far).eccentricity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
        }
        g
    }

    #[test]
    fn path_diameter() {
        let g = path(7);
        assert_eq!(diameter(&g), Some(6));
        assert_eq!(eccentricity(&g, NodeId(3)), 3);
        assert_eq!(eccentricity(&g, NodeId(0)), 6);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = path(9);
        // Start from the middle: the sweep must still find the true diameter.
        assert_eq!(diameter_double_sweep(&g, NodeId(4)), 8);
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn singleton_diameter_is_zero() {
        let g = Graph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
    }
}
