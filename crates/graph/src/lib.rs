#![warn(missing_docs)]

//! Graph substrate for the dsnet reproduction.
//!
//! The paper models a wireless sensor network as an undirected graph
//! `G = (V, E)` where an edge connects two nodes iff they are within radio
//! range (a *unit-disk graph*). Every higher layer — the cluster
//! architecture, the radio simulator's collision rule, the protocols —
//! operates on this representation.
//!
//! Contents:
//! * [`Graph`] — a dynamic undirected graph with O(1) node-id stability
//!   under insertion and removal (ids are never recycled within a graph),
//! * [`unit_disk`] — building `G` from a geometric deployment,
//! * [`traversal`] — BFS with distances and parents,
//! * [`components`] — connectivity and connected components,
//! * [`degree`] — degree statistics for `G` and induced subgraphs,
//! * [`domset`] — greedy dominating-set / maximal-independent-set
//!   approximations (used to sanity-check Property 1(3) of the paper),
//! * [`tree`] — rooted trees over graph nodes (parents, children, depths,
//!   heights) with structural validation,
//! * [`euler`] — Eulerian tours of rooted trees (each edge traversed twice),
//!   the backbone of the DFO baseline broadcast,
//! * [`metrics`] — eccentricities and diameter.

pub mod components;
pub mod degree;
pub mod domset;
pub mod euler;
pub mod graph;
pub mod metrics;
pub mod traversal;
pub mod tree;
pub mod unit_disk;

pub use graph::{Graph, NodeId};
pub use tree::RootedTree;
