//! Building the connectivity graph from a geometric deployment.
//!
//! Two nodes share an edge iff they are within the radio range of each
//! other — the *unit-disk* model the paper assumes throughout (and relies
//! on for Property 1(3)).

use crate::graph::{Graph, NodeId};
use dsnet_geom::{Deployment, GridIndex, Point2};

/// Build the unit-disk graph of `positions` with communication `range`.
///
/// Node `i` of the result corresponds to `positions[i]`. Runs in
/// O(n + m) expected time via a grid spatial hash.
pub fn unit_disk_graph(positions: &[Point2], range: f64) -> Graph {
    let mut g = Graph::with_nodes(positions.len());
    if positions.is_empty() {
        return g;
    }
    let (w, h) = bounds(positions);
    let mut idx = GridIndex::new(w.max(range), h.max(range), range);
    for (i, &p) in positions.iter().enumerate() {
        // Connect to previously inserted points only: each edge found once.
        idx.for_each_within(p, range, |j| {
            g.add_edge(NodeId(i as u32), NodeId(j as u32));
        });
        idx.insert(p);
    }
    g
}

/// Build the unit-disk graph of a [`Deployment`] using its configured range.
pub fn graph_of_deployment(dep: &Deployment) -> Graph {
    unit_disk_graph(&dep.positions, dep.config.range)
}

fn bounds(positions: &[Point2]) -> (f64, f64) {
    let mut w = 0.0f64;
    let mut h = 0.0f64;
    for p in positions {
        w = w.max(p.x);
        h = h.max(p.y);
    }
    // GridIndex requires strictly positive dimensions.
    (w.max(1e-9), h.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsnet_geom::{DeploymentConfig, Region};

    #[test]
    fn matches_brute_force() {
        let dep = Deployment::generate(DeploymentConfig::paper(200, 17));
        let g = graph_of_deployment(&dep);
        let r2 = dep.config.range * dep.config.range;
        for i in 0..dep.len() {
            for j in (i + 1)..dep.len() {
                let expected = dep.positions[i].dist_sq(dep.positions[j]) <= r2;
                assert_eq!(
                    g.has_edge(NodeId(i as u32), NodeId(j as u32)),
                    expected,
                    "edge ({i},{j}) mismatch"
                );
            }
        }
        g.check_invariants();
    }

    #[test]
    fn range_boundary_is_inclusive() {
        let g = unit_disk_graph(
            &[
                Point2::new(0.0, 0.0),
                Point2::new(0.5, 0.0),
                Point2::new(1.01, 0.0),
            ],
            0.5,
        );
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(unit_disk_graph(&[], 0.5).node_count(), 0);
        let g = unit_disk_graph(&[Point2::new(3.0, 3.0)], 0.5);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn incremental_deployment_yields_connected_graph() {
        let dep = Deployment::generate(DeploymentConfig {
            region: Region::paper_8x8(),
            n: 150,
            range: 0.5,
            strategy: dsnet_geom::DeploymentStrategy::IncrementalConnected,
            seed: 4,
        });
        let g = graph_of_deployment(&dep);
        assert!(crate::components::is_connected(&g));
    }
}
