//! Regenerate the paper's evaluation tables.
//!
//! ```text
//! cargo run -p dsnet-bench --release --bin figures            # everything
//! cargo run -p dsnet-bench --release --bin figures -- fig8    # one figure
//! cargo run -p dsnet-bench --release --bin figures -- --quick # reduced sweep
//! cargo run -p dsnet-bench --release --bin figures -- --csv fig10
//! cargo run -p dsnet-bench --release --bin figures -- --threads 4 fig8
//! ```
//!
//! `--threads T` sets the campaign worker count for the figures that ride
//! the campaign engine (fig8, fig9); `0` (the default) uses every core.
//! Tables are byte-identical for any `T` — only wall-clock changes.
//!
//! Figure ids: fig8, fig9, fig10, fig11, multichannel, robustness,
//! multicast, reconfig, slotbounds, fields, discovery, modefidelity,
//! parentrule, multisink, floodbase, backbone, all.

use dsnet::experiments::{self, SweepConfig};
use dsnet_metrics::SweepTable;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--quick] [--csv] [--out DIR] [--threads T] \
         [fig8|fig9|fig10|fig11|multichannel|robustness|multicast|reconfig|slotbounds|fields|all]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut csv = false;
    let mut threads = 0usize;
    let mut out_dir: Option<String> = None;
    let mut which: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--out" => out_dir = Some(argv.next().unwrap_or_else(|| usage())),
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let cfg = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };

    let mut tables: Vec<SweepTable> = Vec::new();
    for name in &which {
        match name.as_str() {
            "fig8" => {
                let result = experiments::fig8::run_campaign(&cfg, threads);
                eprintln!(
                    "fig8: {} trials on {} threads in {:.2}s",
                    result.trials.len(),
                    result.threads,
                    result.elapsed.as_secs_f64()
                );
                tables.push(experiments::fig8::table_of(&result));
            }
            "fig9" => {
                let result = experiments::fig9::run_campaign(&cfg, threads);
                eprintln!(
                    "fig9: {} trials on {} threads in {:.2}s",
                    result.trials.len(),
                    result.threads,
                    result.elapsed.as_secs_f64()
                );
                tables.push(experiments::fig9::table_of(&result));
            }
            "fig10" => tables.push(experiments::fig10::run(&cfg)),
            "fig11" => tables.push(experiments::fig11::run(&cfg)),
            "multichannel" => tables.push(experiments::multichannel::run(&cfg)),
            "robustness" => tables.push(experiments::robustness::run(&cfg)),
            "multicast" => tables.push(experiments::multicast::run(&cfg)),
            "reconfig" => tables.push(experiments::reconfig::run(&cfg)),
            "slotbounds" => tables.push(experiments::slotbounds::run(&cfg)),
            "fields" => tables.push(experiments::fields::run(&cfg)),
            "discovery" => tables.push(experiments::discovery::run(&cfg)),
            "modefidelity" => tables.push(experiments::modefidelity::run(&cfg)),
            "parentrule" => tables.push(experiments::parentrule::run(&cfg)),
            "multisink" => tables.push(experiments::multisink::run(&cfg)),
            "floodbase" => tables.push(experiments::floodbase::run(&cfg)),
            "backbone" => tables.push(experiments::backbone_quality::run(&cfg)),
            "all" => tables.extend(experiments::all_tables(&cfg)),
            _ => usage(),
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    for t in &tables {
        let rendered = if csv { t.to_csv() } else { t.to_markdown() };
        if let Some(dir) = &out_dir {
            // File name: the experiment id at the front of the title
            // ("Fig. 10 — ..." → fig10, "E5 — ..." → e5).
            let id: String = t
                .title
                .chars()
                .take_while(|&c| c != '—')
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            let ext = if csv { "csv" } else { "md" };
            let path = format!("{dir}/{id}.{ext}");
            std::fs::write(&path, &rendered).expect("write table file");
            eprintln!("wrote {path}");
        }
        if csv {
            println!("# {}", t.title);
            print!("{rendered}");
            println!();
        } else {
            println!("{rendered}");
        }
    }
}
