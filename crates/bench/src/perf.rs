//! The `dsnet perf` suite, re-exported for benchmark consumers.
//!
//! The suite itself lives in [`dsnet::perf`] (the `dsnet` binary needs it
//! and this crate depends on `dsnet`, so it cannot live here without a
//! dependency cycle).  This module re-exports it so benchmark tooling has
//! a single import path, and hosts the ledger determinism pin: the
//! regression-gate contract only works if the deterministic counters are
//! invariant across worker-thread counts.

pub use dsnet::perf::{
    compare, peak_rss_kb, render_ledger, run_suite, today_utc, Comparison, Ledger, PerfOptions,
    ScenarioResult, SCHEMA,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(threads: usize) -> Ledger {
        run_suite(&PerfOptions {
            quick: true,
            threads,
            date: Some("2026-08-07".into()),
        })
    }

    /// Regression pin for ISSUE 4(e): two `dsnet perf --quick` runs on 1
    /// and 2 threads produce identical JSON modulo timing fields.
    #[test]
    fn quick_ledger_is_identical_across_thread_counts_modulo_timing() {
        let one = quick(1);
        let two = quick(2);
        assert_eq!(
            render_ledger(&one, false),
            render_ledger(&two, false),
            "deterministic ledger fields drifted with --threads"
        );
        // And the timing-free render really is timing-free.
        let doc = render_ledger(&one, false);
        for field in ["wall_ms", "rounds_per_sec", "peak_rss_kb", "threads"] {
            assert!(!doc.contains(field), "{field} in timing-free render");
        }
    }

    /// A fresh ledger always passes the gate against its own render.
    #[test]
    fn fresh_quick_ledger_passes_gate_against_itself() {
        let l = quick(2);
        let doc = render_ledger(&l, true);
        let cmp = compare(&doc, &l, 0.15);
        assert!(cmp.passed(), "failures: {:?}", cmp.failures);
        assert_eq!(cmp.notes.len(), l.scenarios.len());
    }

    /// The suite roster is fixed: names, order, and non-trivial work.
    #[test]
    fn suite_roster_is_stable() {
        let l = quick(1);
        assert_eq!(l.schema, SCHEMA);
        let names: Vec<&str> = l.scenarios.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "static_cff",
                "static_cff_10k",
                "static_cff_100k",
                "static_dfo",
                "lossy_rcff_repair",
                "mobility_100ep",
                "mobility_400ep",
                "mobility_bcast_10k"
            ]
        );
        for s in &l.scenarios {
            assert!(s.rounds > 0, "{} simulated no rounds", s.name);
            assert!(s.targets > 0, "{} had no targets", s.name);
            assert!(s.delivered <= s.targets, "{} over-delivered", s.name);
        }
    }
}
