//! Benchmark support for the dsnet reproduction.
//!
//! The Criterion benches (`benches/fig*_*.rs`) measure the wall-clock cost
//! of regenerating each figure at a reduced sweep, and the micro benches
//! time the individual protocol executions and cluster operations. The
//! `figures` binary (`cargo run -p dsnet-bench --release --bin figures`)
//! prints the actual paper tables.

pub mod perf;

use dsnet::experiments::SweepConfig;

/// The sweep used inside Criterion benches: small enough to iterate, large
/// enough to exercise every code path.
pub fn bench_sweep() -> SweepConfig {
    SweepConfig {
        ns: vec![100],
        reps: 1,
        ..SweepConfig::default()
    }
}

/// The full paper sweep used by the `figures` binary.
pub fn paper_sweep() -> SweepConfig {
    SweepConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sane() {
        assert!(!bench_sweep().ns.is_empty());
        assert_eq!(paper_sweep().ns, vec![100, 200, 300, 400, 500]);
    }
}
