//! Criterion bench for the Figure-11 experiment (degrees and slot maxima).

use criterion::{criterion_group, criterion_main, Criterion};
use dsnet::NetworkBuilder;
use dsnet_protocols::knowledge::build_knowledge;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let net = NetworkBuilder::paper(150, 45).build().unwrap();
    let mut g = c.benchmark_group("fig11_slots");
    g.bench_function("stats_n150", |b| b.iter(|| black_box(net.stats())));
    g.bench_function("knowledge_snapshot_n150", |b| {
        b.iter(|| black_box(build_knowledge(net.net()).delta_l))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
