//! Micro benchmarks of the extension machinery: the randomized
//! neighbour-discovery session, session-slot assignment for reliable
//! multicast, the flooding baseline, and the root hand-over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsnet::cluster::slots::session::assign_session_slots;
use dsnet::protocols::flooding::run_flooding;
use dsnet::protocols::join::simulate_join;
use dsnet::radio::FailurePlan;
use dsnet::{GroupPlan, NetworkBuilder};
use dsnet_graph::{Graph, NodeId};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");

    // Neighbour discovery across degrees.
    for d in [4usize, 16] {
        let mut star = Graph::with_nodes(d + 1);
        for i in 1..=d {
            star.add_edge(NodeId(0), NodeId(i as u32));
        }
        g.bench_with_input(BenchmarkId::new("join_discovery", d), &d, |b, &d| {
            b.iter(|| black_box(simulate_join(&star, NodeId(0), d, 42).rounds))
        });
    }

    // Session slots over a pruned multicast participant set.
    let net = NetworkBuilder::paper(200, 50)
        .groups(GroupPlan {
            groups: 1,
            membership: 0.1,
        })
        .build()
        .unwrap();
    let table = dsnet::protocols::multicast::participation_table(net.mcnet(), 0);
    g.bench_function("session_slot_assignment_n200", |b| {
        b.iter(|| {
            let tx = |u: NodeId| table[u.index()].tx;
            let rx = |u: NodeId| table[u.index()].rx;
            black_box(assign_session_slots(&net.net().view(), net.net().mode(), &tx, &rx).max_l())
        })
    });

    // Flooding baseline on the paper graph.
    g.bench_function("flooding_w4_n200", |b| {
        b.iter(|| {
            black_box(
                run_flooding(net.net().graph(), net.sink(), 4, 7, FailurePlan::new()).delivered,
            )
        })
    });

    // Root hand-over (full rebuild).
    g.bench_function("root_move_out_n150", |b| {
        b.iter_batched(
            || NetworkBuilder::paper(150, 51).build().unwrap(),
            |mut net| {
                let _ = black_box(net.leave_sink());
                net.len()
            },
            criterion::BatchSize::LargeInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
