//! Incremental topology diffing vs. a full per-epoch rebuild.
//!
//! One epoch of random-waypoint motion moves most nodes a small distance,
//! so the edge set barely changes. The differ relocates each mover inside
//! the spatial hash and touches only its neighbourhood, while the naive
//! alternative recomputes the whole unit-disk graph in O(n²) and compares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsnet::geom::{Deployment, DeploymentConfig, Point2};
use dsnet::mobility::{MobilityModel, RandomWaypoint, TopologyDiffer, WaypointParams};
use std::hint::black_box;

/// A prepared epoch: the differ synced to the pre-move positions plus the
/// batch of moves the model produced for the next step.
fn prepare(n: usize) -> (TopologyDiffer, Vec<(usize, Point2)>) {
    let d = Deployment::generate(DeploymentConfig::paper_field(10.0, n, 51));
    let mut model = RandomWaypoint::new(
        d.positions.clone(),
        d.config.region,
        WaypointParams::default(),
        0x8E9C,
    );
    // Warm the trajectories past the initial synchronised trip starts.
    for _ in 0..10 {
        model.step();
    }
    let differ = TopologyDiffer::new(d.config.region, d.config.range, model.positions());
    let moved = model.step();
    let moves: Vec<(usize, Point2)> = moved.iter().map(|&i| (i, model.positions()[i])).collect();
    (differ, moves)
}

fn full_rebuild_diff(pts: &[Point2], range: f64, moves: &[(usize, Point2)]) -> usize {
    let mut after = pts.to_vec();
    for &(i, p) in moves {
        after[i] = p;
    }
    let r2 = range * range;
    let mut changed = 0;
    for i in 0..after.len() {
        for j in (i + 1)..after.len() {
            let was = pts[i].dist_sq(pts[j]) <= r2;
            let now = after[i].dist_sq(after[j]) <= r2;
            changed += usize::from(was != now);
        }
    }
    changed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mobility_diff");
    for n in [200usize, 500] {
        g.bench_with_input(BenchmarkId::new("differ_epoch", n), &n, |b, &n| {
            b.iter_batched(
                || prepare(n),
                |(mut differ, moves)| black_box(differ.apply(&moves).len()),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("full_rebuild_epoch", n), &n, |b, &n| {
            b.iter_batched(
                || prepare(n),
                |(differ, moves)| {
                    black_box(full_rebuild_diff(
                        differ.positions(),
                        differ.range(),
                        &moves,
                    ))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
