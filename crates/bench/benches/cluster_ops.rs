//! Micro benchmarks of the reconfiguration operations: incremental builds
//! (node-move-in) and departures (node-move-out) with full slot repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsnet::NetworkBuilder;
use dsnet_graph::NodeId;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_ops");
    for n in [100usize, 300] {
        g.bench_with_input(BenchmarkId::new("build_by_move_in", n), &n, |b, &n| {
            b.iter(|| black_box(NetworkBuilder::paper(n, 48).build().unwrap().len()))
        });
    }
    g.bench_function("move_out_and_rehome", |b| {
        b.iter_batched(
            || NetworkBuilder::paper(150, 49).build().unwrap(),
            |mut net| {
                // Remove the first few removable interior nodes.
                let candidates: Vec<NodeId> = net
                    .net()
                    .tree()
                    .nodes()
                    .skip(1)
                    .step_by(11)
                    .take(8)
                    .collect();
                let mut removed = 0;
                for u in candidates {
                    if removed == 3 {
                        break;
                    }
                    if net.leave(u).is_ok() {
                        removed += 1;
                    }
                }
                black_box(net.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
