//! Criterion bench for the Figure-8 experiment (broadcast latency sweep).
//!
//! Times one full (n = 100, 1 rep) regeneration of each protocol's
//! latency measurement; the actual paper table comes from the `figures`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use dsnet::{NetworkBuilder, Protocol};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let net = NetworkBuilder::paper(100, 42).build().unwrap();
    let mut g = c.benchmark_group("fig8_latency_n100");
    g.bench_function("cff_improved", |b| {
        b.iter(|| black_box(net.broadcast(Protocol::ImprovedCff).rounds))
    });
    g.bench_function("cff_basic", |b| {
        b.iter(|| black_box(net.broadcast(Protocol::BasicCff).rounds))
    });
    g.bench_function("dfo_baseline", |b| {
        b.iter(|| black_box(net.broadcast(Protocol::Dfo).rounds))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
