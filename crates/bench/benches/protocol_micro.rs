//! Micro benchmarks of the protocol executions themselves (the simulated
//! rounds per wall-clock second), across sizes and channel counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsnet::{NetworkBuilder, Protocol};
use dsnet_protocols::runner::{run_improved, RunConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_micro");
    for n in [50usize, 200, 400] {
        let net = NetworkBuilder::paper(n, 46).build().unwrap();
        g.bench_with_input(BenchmarkId::new("improved_cff", n), &net, |b, net| {
            b.iter(|| black_box(net.broadcast(Protocol::ImprovedCff).rounds))
        });
    }
    let net = NetworkBuilder::paper(200, 47).build().unwrap();
    for k in [1u8, 2, 4] {
        g.bench_with_input(BenchmarkId::new("improved_cff_channels", k), &k, |b, &k| {
            let cfg = RunConfig {
                channels: k,
                ..Default::default()
            };
            b.iter(|| black_box(run_improved(net.net(), net.sink(), &cfg).rounds))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
