//! Criterion bench for the Figure-9 experiment (awake-round accounting).

use criterion::{criterion_group, criterion_main, Criterion};
use dsnet::{NetworkBuilder, Protocol};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let net = NetworkBuilder::paper(100, 43).build().unwrap();
    let mut g = c.benchmark_group("fig9_awake_n100");
    g.bench_function("cff_energy_report", |b| {
        b.iter(|| black_box(net.broadcast(Protocol::ImprovedCff).energy.max_awake))
    });
    g.bench_function("dfo_energy_report", |b| {
        b.iter(|| black_box(net.broadcast(Protocol::Dfo).energy.max_awake))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
