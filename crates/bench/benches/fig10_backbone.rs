//! Criterion bench for the Figure-10 experiment (backbone construction and
//! measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use dsnet::NetworkBuilder;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_backbone");
    for n in [100usize, 200] {
        g.bench_function(format!("build_and_measure_n{n}"), |b| {
            b.iter(|| {
                let net = NetworkBuilder::paper(n, 44).build().unwrap();
                let s = net.stats();
                black_box((s.backbone_size, s.backbone_height))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
