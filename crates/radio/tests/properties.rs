//! Property-based tests of the radio engine's collision semantics against
//! a brute-force oracle: nodes with *fixed* per-round action scripts are
//! executed by the engine, and every delivery/collision is recomputed
//! independently from the scripts.

use dsnet_graph::{Graph, NodeId};
use dsnet_radio::{Action, Channel, Engine, EngineConfig, NodeCtx, NodeProgram, TraceEvent};
use proptest::prelude::*;

/// A node that replays a fixed script of actions and records receptions.
struct Scripted {
    script: Vec<Action<u32>>,
    received: Vec<(u64, NodeId, u32)>,
}

impl NodeProgram for Scripted {
    type Msg = u32;
    fn act(&mut self, ctx: &NodeCtx) -> Action<u32> {
        self.script
            .get(ctx.round as usize - 1)
            .cloned()
            .unwrap_or(Action::Sleep)
    }
    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: &u32) {
        self.received.push((ctx.round, from, *msg));
    }
    fn done(&self) -> bool {
        false
    }
}

/// Raw script entry: 0 = sleep, 1..=2 transmit on channel a-1, 3..=4
/// listen on channel a-3.
fn decode(raw: u8, node: u32, round: usize, channels: u8) -> Action<u32> {
    match raw % 5 {
        0 => Action::Sleep,
        1 | 2 => Action::Transmit {
            channel: ((raw % 5 - 1) % channels) as Channel,
            msg: node * 1000 + round as u32,
        },
        _ => Action::Listen {
            channel: ((raw % 5 - 3) % channels) as Channel,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_brute_force_collision_rule(
        n in 2u8..10,
        edges in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
        scripts in prop::collection::vec(prop::collection::vec(any::<u8>(), 6), 2..10),
        channels in 1u8..3,
    ) {
        let n = n.max(2) as usize;
        let mut g = Graph::with_nodes(n);
        for &(a, b) in &edges {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                g.add_edge(NodeId(a as u32), NodeId(b as u32));
            }
        }
        let rounds = 6usize;
        // Materialise a full action table: node × round.
        let table: Vec<Vec<Action<u32>>> = (0..n)
            .map(|i| {
                let script = &scripts[i % scripts.len()];
                (0..rounds)
                    .map(|r| decode(script[r], i as u32, r, channels))
                    .collect()
            })
            .collect();

        let mut engine = Engine::new(
            &g,
            EngineConfig { channels, max_rounds: rounds as u64, record_trace: true },
            |u| Scripted { script: table[u.index()].clone(), received: Vec::new() },
        );
        engine.run();

        // Oracle: for every (node, round) where the node listens on c, it
        // receives iff exactly one neighbour transmits on c.
        let trace = engine.trace();
        for r in 1..=rounds {
            for i in 0..n {
                let id = NodeId(i as u32);
                if let Action::Listen { channel } = table[i][r - 1] {
                    let transmitters: Vec<NodeId> = g
                        .neighbors(id)
                        .iter()
                        .copied()
                        .filter(|v| matches!(
                            table[v.index()][r - 1],
                            Action::Transmit { channel: c, .. } if c == channel
                        ))
                        .collect();
                    let deliveries = trace
                        .events()
                        .iter()
                        .filter(|e| matches!(e,
                            TraceEvent::Deliver { round, to, .. }
                            if *round == r as u64 && *to == id))
                        .count();
                    let collisions = trace
                        .events()
                        .iter()
                        .filter(|e| matches!(e,
                            TraceEvent::Collision { round, node, .. }
                            if *round == r as u64 && *node == id))
                        .count();
                    match transmitters.len() {
                        0 => {
                            prop_assert_eq!(deliveries, 0);
                            prop_assert_eq!(collisions, 0);
                        }
                        1 => {
                            prop_assert_eq!(deliveries, 1, "round {} node {}", r, id);
                            prop_assert_eq!(collisions, 0);
                        }
                        _ => {
                            prop_assert_eq!(deliveries, 0, "round {} node {}", r, id);
                            prop_assert_eq!(collisions, 1);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn energy_meters_count_every_round(
        scripts in prop::collection::vec(prop::collection::vec(any::<u8>(), 8), 3..6),
    ) {
        let n = scripts.len();
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(0), NodeId(i as u32));
        }
        let rounds = 8u64;
        let table: Vec<Vec<Action<u32>>> = (0..n)
            .map(|i| (0..8).map(|r| decode(scripts[i][r], i as u32, r, 1)).collect())
            .collect();
        let mut engine = Engine::new(
            &g,
            EngineConfig { max_rounds: rounds, ..Default::default() },
            |u| Scripted { script: table[u.index()].clone(), received: Vec::new() },
        );
        engine.run();
        for (i, script) in table.iter().enumerate() {
            let m = engine.meter(NodeId(i as u32));
            prop_assert_eq!(m.tx_rounds + m.listen_rounds + m.sleep_rounds, rounds);
            let expected_tx = script.iter().filter(|a| a.is_transmit()).count() as u64;
            prop_assert_eq!(m.tx_rounds, expected_tx);
        }
    }
}
