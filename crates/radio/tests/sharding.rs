//! Property tests of the cell-sharded delivery path against the plain
//! sequential engine.
//!
//! The engine's contract is that the spatial partition and the worker
//! count are *invisible*: for the same graph, programs, loss model and
//! failure plan, a run sharded over any cell partition — executed
//! sequentially or on N threads — must produce the same event trace
//! (deliveries, collisions, link drops, in the same order), the same
//! per-node energy meters and the same outcome as the unsharded engine.
//! These tests generate random unit-disk graphs and random partitions —
//! including empty cells and the single-cell edge case — and require
//! exactly that.

use dsnet_graph::{Graph, NodeId};
use dsnet_radio::{
    Action, Channel, Engine, EngineConfig, FailurePlan, LossModel, NodeCtx, NodeProgram,
    RunOutcome, ShardPlan, TraceEvent,
};
use proptest::prelude::*;

/// A node that replays a fixed script of actions (`properties.rs` idiom).
struct Scripted {
    script: Vec<Action<u32>>,
}

impl NodeProgram for Scripted {
    type Msg = u32;
    fn act(&mut self, ctx: &NodeCtx) -> Action<u32> {
        self.script
            .get(ctx.round as usize - 1)
            .cloned()
            .unwrap_or(Action::Sleep)
    }
    fn on_receive(&mut self, _ctx: &NodeCtx, _from: NodeId, _msg: &u32) {}
    fn done(&self) -> bool {
        false
    }
}

/// Raw script entry: 0 = sleep, 1..=2 transmit, 3..=4 listen.
fn decode(raw: u8, node: u32, round: usize, channels: u8) -> Action<u32> {
    match raw % 5 {
        0 => Action::Sleep,
        1 | 2 => Action::Transmit {
            channel: ((raw % 5 - 1) % channels) as Channel,
            msg: node * 1000 + round as u32,
        },
        _ => Action::Listen {
            channel: ((raw % 5 - 3) % channels) as Channel,
        },
    }
}

const ROUNDS: usize = 8;
const SIDE: f64 = 10.0;
const RANGE: f64 = 3.5;

/// Build a unit-disk graph over the given positions (scaled to a
/// `SIDE × SIDE` field, radio range `RANGE`).
fn unit_disk(points: &[(f64, f64)]) -> Graph {
    let n = points.len();
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
            if (dx * dx + dy * dy).sqrt() <= RANGE {
                g.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    g
}

struct RunResult {
    outcome: RunOutcome,
    events: Vec<TraceEvent>,
    meters: Vec<(u64, u64, u64)>,
}

/// One full run: fresh engine over `graph`/`table`, with the given
/// loss/failure configuration and (optionally) a shard plan + thread
/// count. `plan: None` is the plain sequential baseline.
#[allow(clippy::too_many_arguments)]
fn run_once(
    g: &Graph,
    table: &[Vec<Action<u32>>],
    channels: u8,
    loss_ppm: u32,
    loss_seed: u64,
    kill: Option<NodeId>,
    plan: Option<ShardPlan>,
    threads: usize,
) -> RunResult {
    let mut engine = Engine::new(
        g,
        EngineConfig {
            channels,
            max_rounds: ROUNDS as u64,
            record_trace: true,
        },
        |u| Scripted {
            script: table[u.index()].clone(),
        },
    );
    if loss_ppm > 0 {
        engine.set_loss(LossModel::from_ppm(loss_ppm, loss_seed));
    }
    if let Some(victim) = kill {
        let mut fp = FailurePlan::new();
        fp.kill_node_for(victim, 3, 2);
        engine.set_failures(fp);
    }
    let sharded = plan.is_some();
    if let Some(plan) = plan {
        engine.set_shards(plan, threads);
    }
    let outcome = if sharded && threads > 1 {
        engine.run_parallel()
    } else {
        engine.run()
    };
    let n = g.capacity();
    RunResult {
        outcome,
        events: engine.trace().events().to_vec(),
        meters: (0..n)
            .map(|i| {
                let m = engine.meter(NodeId(i as u32));
                (m.tx_rounds, m.listen_rounds, m.sleep_rounds)
            })
            .collect(),
    }
}

fn assert_same(label: &str, base: &RunResult, other: &RunResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(base.outcome, other.outcome, "{}: outcome diverged", label);
    prop_assert_eq!(
        &base.events,
        &other.events,
        "{}: event stream diverged",
        label
    );
    prop_assert_eq!(
        &base.meters,
        &other.meters,
        "{}: energy meters diverged",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Sharded delivery (sequential and 2/3-threaded, over a random
    /// partition with guaranteed empty cells, and over one big cell)
    /// matches the plain engine on random unit-disk graphs with random
    /// scripts, channel loss and a transient node outage.
    #[test]
    fn sharded_delivery_matches_sequential(
        points in prop::collection::vec((0.0..SIDE, 0.0..SIDE), 3..20),
        scripts in prop::collection::vec(prop::collection::vec(any::<u8>(), ROUNDS), 3..20),
        channels in 1u8..3,
        cells in 1usize..5,
        assign in prop::collection::vec(any::<u8>(), 20),
        loss_sel in 0u8..3,
        loss_seed in any::<u64>(),
        kill_one in any::<bool>(),
    ) {
        let loss_ppm = [0u32, 150_000, 400_000][loss_sel as usize];
        let n = points.len();
        let g = unit_disk(&points);
        let table: Vec<Vec<Action<u32>>> = (0..n)
            .map(|i| {
                let script = &scripts[i % scripts.len()];
                (0..ROUNDS)
                    .map(|r| decode(script[r], i as u32, r, channels))
                    .collect()
            })
            .collect();
        let kill = kill_one.then_some(NodeId((assign[0] as u32) % n as u32));

        let base = run_once(&g, &table, channels, loss_ppm, loss_seed, kill, None, 1);

        // A random partition into `cells` cells, padded with two cells
        // that are empty by construction — the engine must treat them as
        // no-ops.
        let mut partition: Vec<Vec<NodeId>> = vec![Vec::new(); cells + 2];
        for i in 0..n {
            partition[assign[i] as usize % cells].push(NodeId(i as u32));
        }
        for threads in [1usize, 2, 3] {
            let sharded = run_once(
                &g, &table, channels, loss_ppm, loss_seed, kill,
                Some(ShardPlan::from_cells(partition.clone())), threads,
            );
            assert_same(&format!("random partition, {threads} thread(s)"), &base, &sharded)?;
        }

        // Single-cell edge case: every node in one cell, which makes the
        // "parallel" path a one-worker pipeline.
        let single = run_once(
            &g, &table, channels, loss_ppm, loss_seed, kill,
            Some(ShardPlan::single((0..n as u32).map(NodeId))), 2,
        );
        assert_same("single cell, 2 threads", &base, &single)?;
    }
}
