//! Spatial shard plans for cell-parallel delivery resolution.
//!
//! A [`ShardPlan`] partitions the program-bearing node ids of an engine
//! run into *cells*. The engine resolves each round cell-by-cell: every
//! cell gathers its own nodes' actions and receptions into private
//! scratch buffers, and the per-cell results are merged in canonical
//! (global node-id) order before anything observable — trace events,
//! energy totals, the done check — is produced.
//!
//! The contract that makes intra-run parallelism safe to offer at all:
//! **the cell structure is invisible in every output**. Delivery is a
//! pure function of the transmit table (who is on the air, on which
//! channel), the graph, the failure plan, and the stateless per-link
//! loss hash — none of which depend on which cell a node landed in or
//! which worker thread resolved it. The merge step then re-serialises
//! the buffered events in exactly the order the plain sequential scan
//! would have produced them, so one cell, many cells, one thread and N
//! threads all emit byte-identical event streams.
//!
//! Plans typically come from a spatial index (grid cells of a unit-disk
//! deployment, see `SensorNetwork::shard_plan` in `dsnet`), but any
//! partition works — including degenerate ones with empty cells, which
//! simply contribute nothing to the merge.

use dsnet_graph::NodeId;

/// A partition of node ids into delivery cells.
///
/// Cells may be empty; ids within a cell are kept in ascending order so
/// per-cell scans are deterministic regardless of how the plan was
/// assembled.
#[derive(Debug, Clone, Default)]
pub struct ShardPlan {
    cells: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Build a plan from explicit cells. Each cell is sorted; empty
    /// cells are preserved (they are a supported edge case, not an
    /// error). Panics if any id appears in more than one cell.
    pub fn from_cells(cells: Vec<Vec<NodeId>>) -> Self {
        let mut out: Vec<Vec<u32>> = cells
            .into_iter()
            .map(|c| c.into_iter().map(|id| id.0).collect())
            .collect();
        let mut seen: Vec<u32> = out.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert!(
            seen.windows(2).all(|w| w[0] != w[1]),
            "shard plan assigns a node id to more than one cell"
        );
        for cell in &mut out {
            cell.sort_unstable();
        }
        Self { cells: out }
    }

    /// The single-cell plan over the given ids — what every run uses
    /// unless a spatial plan is installed.
    pub fn single(ids: impl IntoIterator<Item = NodeId>) -> Self {
        Self::from_cells(vec![ids.into_iter().collect()])
    }

    /// Number of cells (including empty ones).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total number of node ids across all cells.
    pub fn node_count(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// The cells, ascending ids each, in deterministic plan order.
    pub(crate) fn cells(&self) -> &[Vec<u32>] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_sorted_and_empties_survive() {
        let plan = ShardPlan::from_cells(vec![vec![NodeId(5), NodeId(1)], vec![], vec![NodeId(3)]]);
        assert_eq!(plan.cell_count(), 3);
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.cells()[0], vec![1, 5]);
        assert!(plan.cells()[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "more than one cell")]
    fn duplicate_ids_rejected() {
        ShardPlan::from_cells(vec![vec![NodeId(1)], vec![NodeId(1)]]);
    }
}
