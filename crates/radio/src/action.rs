//! Per-round node actions.

/// Radio channel index, `0..k`.
pub type Channel = u8;

/// What a node does during one round. The model is half-duplex: a node is
/// a transmitter *or* a receiver in any given round, never both.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum Action<M> {
    /// Transmit `msg` on `channel`. Every live neighbour tuned to that
    /// channel *may* receive it (subject to the collision rule).
    Transmit { channel: Channel, msg: M },
    /// Listen on `channel`. Costs awake energy whether or not anything is
    /// received.
    Listen { channel: Channel },
    /// Power down the radio for this round. Nothing can be received.
    Sleep,
}

impl<M> Action<M> {
    /// Listen on the single channel of the base (k = 1) model.
    pub fn listen() -> Self {
        Action::Listen { channel: 0 }
    }

    /// Transmit on the single channel of the base (k = 1) model.
    pub fn transmit(msg: M) -> Self {
        Action::Transmit { channel: 0, msg }
    }

    /// Whether this is a transmission.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit { .. })
    }

    /// Whether this is a listen.
    pub fn is_listen(&self) -> bool {
        matches!(self, Action::Listen { .. })
    }

    /// Whether the radio is off this round.
    pub fn is_sleep(&self) -> bool {
        matches!(self, Action::Sleep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_use_channel_zero() {
        let t: Action<u8> = Action::transmit(7);
        assert_eq!(t, Action::Transmit { channel: 0, msg: 7 });
        let l: Action<u8> = Action::listen();
        assert_eq!(l, Action::Listen { channel: 0 });
    }

    #[test]
    fn predicates_are_exclusive() {
        let actions: [Action<u8>; 3] = [Action::transmit(1), Action::listen(), Action::Sleep];
        for a in &actions {
            let flags = [a.is_transmit(), a.is_listen(), a.is_sleep()];
            assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
        }
    }
}
