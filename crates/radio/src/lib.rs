#![warn(missing_docs)]

//! Round-synchronous radio network simulator.
//!
//! Implements exactly the sensor-network model of Section 3.1 of the paper:
//!
//! 1. nodes share `k ≥ 1` radio channels (`k = 1` in the base model);
//! 2. each node has a distinct ID and, a priori, no other network
//!    knowledge — whatever knowledge a protocol assumes (e.g. the CNet
//!    structure and time slots) is injected into its per-node program;
//! 3. time advances in fixed *rounds*; in each round a node acts as either
//!    a transmitter or a receiver (or sleeps);
//! 4. **no collision detection**: a receiver gets a message in a round iff
//!    *exactly one* of its graph neighbours transmits on the channel it is
//!    tuned to. Zero transmitters and two-or-more transmitters are
//!    indistinguishable silence.
//!
//! Protocols are written as per-node state machines implementing
//! [`NodeProgram`]; the [`Engine`] executes them lock-step against a
//! connectivity [`Graph`](dsnet_graph::Graph), meters per-node energy
//! ([`EnergyMeter`]), applies failure schedules ([`FailurePlan`]) and can
//! record a full event [`Trace`] for debugging and verification.

pub mod action;
pub mod energy;
pub mod engine;
pub mod failure;
pub mod loss;
pub mod shard;
pub mod trace;

pub use action::{Action, Channel};
pub use energy::{EnergyMeter, EnergyReport};
pub use engine::{Engine, EngineConfig, NodeCtx, NodeProgram, RunOutcome, StopReason};
pub use failure::FailurePlan;
pub use loss::LossModel;
pub use shard::ShardPlan;
pub use trace::{Trace, TraceEvent};

/// Rounds are numbered from 1, matching the paper's "transmits at round
/// *t*" convention for time slots numbered from 1.
pub type Round = u64;
